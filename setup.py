"""Legacy setup shim.

This offline environment has setuptools but no ``wheel`` package, so PEP 660
editable installs fail; ``setup.py develop`` (used via ``pip install -e .
--no-use-pep517``, configured globally in pip.conf) works without it.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Reproduction of BEAS: Bounded Evaluation of SQL Queries (SIGMOD 2017)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
