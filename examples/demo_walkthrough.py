#!/usr/bin/env python3
"""The SIGMOD demo, step by step (paper §4, "A walk through").

Mirrors the portal of Fig. 2 — (A) bounded evaluability checking with a
budget, (B) bounded planning with per-fetch bound annotations, (C)
execution + performance analysis, (D)/(E) access schema discovery and
management — over a database bootstrapped purely from a SQL script.

Run:  python examples/demo_walkthrough.py
"""

from repro import BEAS
from repro.access.io import schema_to_dict
from repro.discovery import discover
from repro.sql import run_script
from repro.storage.database import Database

SCHEMA_AND_DATA = """
CREATE TABLE call (
    pnum VARCHAR(16), recnum VARCHAR(16), date DATE, region TEXT
);
CREATE TABLE package (
    pnum VARCHAR(16), pid VARCHAR(8), start DATE, end DATE, year INT
);
CREATE TABLE business (
    pnum VARCHAR(16), type TEXT, region TEXT, PRIMARY KEY (pnum)
);

INSERT INTO business VALUES
    ('100', 'bank', 'east'), ('101', 'bank', 'east'), ('102', 'shop', 'east');
INSERT INTO package VALUES
    ('100', 'c0', '2016-01-01', '2016-12-31', 2016),
    ('101', 'c0', '2016-05-01', '2016-12-31', 2016),
    ('102', 'c1', '2016-01-01', '2016-12-31', 2016);
INSERT INTO call VALUES
    ('100', '555', '2016-06-01', 'north'),
    ('100', '556', '2016-06-01', 'south'),
    ('101', '557', '2016-06-01', 'east'),
    ('102', '558', '2016-06-01', 'west');
"""

QUERY = """
select call.region
from call, package, business
where business.type = 'bank' and business.region = 'east'
  and business.pnum = call.pnum and call.date = '2016-06-01'
  and call.pnum = package.pnum and package.year = 2016
  and package.start <= '2016-06-01' and package.end >= '2016-06-01'
  and package.pid = 'c0'
"""


def main() -> None:
    # ---- bootstrap the database from SQL -------------------------------
    db = Database(name="demo")
    loaded = run_script(db, SCHEMA_AND_DATA)
    print(
        f"loaded {len(loaded.tables_created)} tables, "
        f"{loaded.rows_inserted} rows from the SQL script"
    )

    # ---- (D) discovery: access schema from data + query patterns --------
    print("\n(D) discovering an access schema from the query pattern ...")
    result = discover(db, [QUERY], slack=50.0)  # generous headroom, demo-sized data
    print(result.describe())
    beas = BEAS(db, result.schema)

    # ---- (E) the registered schema, as the portal would render it -------
    print("\n(E) registered access schema (catalog metadata):")
    for row in beas.catalog.statistics():
        print(
            f"  {row.constraint_name} on {row.relation}: {row.key_count} keys, "
            f"{row.entry_count} entries, {row.storage_cells} cells"
        )
    print("  JSON form:", schema_to_dict(beas.catalog.schema)["constraints"][0])

    # ---- (A) bounded evaluability checking, with a budget ----------------
    print("\n(A) BE Checker:")
    session = beas.session()
    query = session.query(QUERY)
    decision = query.decide(budget=1_000_000)
    print(decision.coverage.describe())

    # ---- (B) the bounded plan, fetches annotated with bounds -------------
    print("\n(B) bounded plan:")
    print(decision.explain())

    # ---- (C) execution + performance analysis ----------------------------
    # the decision above is OVER its 1M budget, and decision.run() would
    # enforce that (BudgetExceededError); run without a budget instead
    print("\n(C) execution:")
    result = query.run()
    print(result.describe())
    print("answers:", sorted(result.to_set()))

    print("\n(C) performance analysis (Fig. 3 style):")
    print(beas.analyze_performance(QUERY).describe())


if __name__ == "__main__":
    main()
