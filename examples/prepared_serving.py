#!/usr/bin/env python3
"""Prepared serving — via the DEPRECATED pre-Session entry points.

This example deliberately keeps exercising the legacy shims
(``BEAS.serve``/``prepare``/``PreparedQuery.execute``) to document the
migration path: each call still works, delegating to the unified
Session/Query/Decision/Result model, and emits
``BEASDeprecationWarning``. See ``examples/session_lifecycle.py`` for
the replacement lifecycle and ``docs/api.md`` for the migration table.
(It is excluded from the warning-strict CI leg for exactly this
reason.)

Original walkthrough: prepare once, execute many, watch the caches
work.

Walks the serving layer (``repro.serving``) over the paper's Example 1
setting:

1. prepare the Example 2 query — parsed, fingerprinted, and its
   constant slots extracted exactly once;
2. execute it repeatedly: the first run pins the coverage decision and
   bounded plan, the second sighting admits the result to the cache
   (admit-on-second-hit keeps one-off queries from churning the LRU),
   later runs are result-cache hits;
3. rebind the template's parameter slots (``call.date``,
   ``business.type``) — one template, many bindings;
4. run a maintenance batch and observe per-table invalidation: the
   ``call`` results are recomputed, the ``package``-only results are
   retained;
5. print the per-cache hit/miss/eviction counters.

Run:  python examples/prepared_serving.py
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import BEAS

from tests.conftest import (
    EXAMPLE2_SQL,
    example1_access_schema,
    example1_database,
)

# ---- 1. build BEAS + the serving layer -----------------------------------
beas = BEAS(example1_database(), example1_access_schema())
server = beas.serve()

prepared = server.prepare(EXAMPLE2_SQL, name="example2")
print("== prepared template ==")
print(prepared.describe())

# ---- 2. prepare once, execute many ---------------------------------------
start = time.perf_counter()
first = prepared.execute()
cold_ms = (time.perf_counter() - start) * 1000

prepared.execute()  # second sighting: admitted to the result cache

start = time.perf_counter()
again = prepared.execute()
warm_ms = (time.perf_counter() - start) * 1000

print("\n== repeated execution ==")
print(f"cold: {sorted(first.rows)} via {first.mode.value} in {cold_ms:.2f} ms")
print(
    f"warm: served_from_cache={again.metrics.served_from_cache} "
    f"in {warm_ms:.3f} ms"
)

# ---- 3. one template, many bindings --------------------------------------
print("\n== parameter bindings ==")
for overrides in (
    {"call.date": "2016-06-02"},
    {"business.type": "shop"},
    {"business.region": "west", "business.type": "bank"},
):
    result = prepared.execute(overrides)
    print(f"{overrides} -> {sorted(result.rows)} ({result.mode.value})")

# ---- 4. maintenance-aware invalidation -----------------------------------
package_query = server.prepare(
    "SELECT pid FROM package WHERE pnum = '100' AND year = 2016",
    name="packages-of-100",
)
package_query.execute()
package_query.execute()  # second sighting: cached; depends only on `package`

server.insert("call", [(800, "100", "555", "2016-06-01", "harbor")])

refreshed = prepared.execute()
untouched = package_query.execute()
print("\n== after inserting into `call` ==")
print(
    f"example2 recomputed (cache hit: "
    f"{refreshed.metrics.served_from_cache}); "
    f"rows now {sorted(refreshed.rows)}"
)
print(
    f"packages-of-100 retained (cache hit: "
    f"{untouched.metrics.served_from_cache})"
)

# ---- 5. the counters ------------------------------------------------------
print("\n== serving stats ==")
print(server.stats().describe())
