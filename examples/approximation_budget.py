#!/usr/bin/env python3
"""Resource budgets: checking without executing, and bounded approximation.

The demo's Fig. 2(A) lets a user "enter a budget on the amount of data to
be accessed, and use BE Checker to find whether Q can be answered within
the budget under A, without executing Q". When the deduced bound exceeds
the budget, BEAS can either refuse or compute *approximate* answers with
a deterministic accuracy lower bound, never fetching more than the budget.

Run:  python examples/approximation_budget.py
"""

from repro import Session
from repro.bench.reporting import format_table
from repro.errors import BudgetExceededError
from repro.workloads.tlc import generate_tlc, tlc_access_schema, tlc_queries


def main() -> None:
    ds = generate_tlc(scale=4)
    session = Session(ds.database, tlc_access_schema())
    q1 = tlc_queries(ds.params)[0]
    query = session.query(q1.sql)

    # ---- budget checking, before execution --------------------------------
    print("== budget feasibility (no execution) ==")
    for budget in (13_000_000, 1_000_000, 10_000):
        decision = query.decide(budget=budget).coverage
        verdict = "within" if decision.within_budget else "OVER"
        print(
            f"budget {budget:>10}: deduced bound M = {decision.access_bound} "
            f"-> {verdict} budget"
        )

    # ---- exceeding the budget: refuse or approximate ------------------------
    print("\n== over-budget behaviour ==")
    try:
        query.run(budget=10_000)
    except BudgetExceededError as error:
        print(f"strict mode refuses: {error}")

    exact = query.run()
    print(
        f"\nexact answer: {len(exact.rows)} rows, "
        f"{exact.metrics.tuples_fetched} tuples fetched"
    )

    print("\napproximate answers under shrinking budgets:")
    rows = []
    for budget in (exact.metrics.tuples_fetched, 60, 30, 10, 0):
        result = query.run(
            budget=budget, approximate_over_budget=True
        )
        if result.approximation is None:
            status, guaranteed = "exact (bounded)", 1.0
            fetched = result.metrics.tuples_fetched
        else:
            approx = result.approximation
            status = "exact" if approx.complete else "approximate"
            guaranteed = approx.recall_lower_bound
            fetched = approx.tuples_fetched
        found = result.to_set()
        assert found <= exact.to_set()  # soundness
        rows.append(
            (
                budget,
                f"{len(found)}/{len(exact.rows)}",
                f"{guaranteed:.4f}",
                fetched,
                status,
            )
        )
    print(
        format_table(
            ("budget", "answers", "guaranteed recall", "fetched", "status"),
            rows,
        )
    )


if __name__ == "__main__":
    main()
