#!/usr/bin/env python3
"""Parallel bounded execution: the engine pool walkthrough.

``BEAS(parallelism=N)`` (or ``BEAS_PARALLELISM=N``) attaches a
multiprocessing engine pool to the bounded pipeline: whole covered
plans — and, for single large queries, individual ``rows_per_batch``
column batches — execute on worker processes instead of the GIL-bound
serving thread. Workers hold a *warm catalog snapshot* (the access
indices, keyed by the table version vector), so after the first query
only the plan and the answer cross the process boundary; maintenance
bumps the version vector and the next pooled query re-ships a fresh
snapshot — a worker can never serve stale rows.

This walkthrough:

1. builds a synthetic event table (30k rows) under one access
   constraint;
2. answers the same query in-process and pooled and shows the metrics:
   identical rows and ``tuples_fetched``, plus the pool counters
   (workers, dispatched batches, wait time);
3. drives four concurrent client threads through both configurations —
   on a multi-core host the pooled fleet finishes ~cores-times faster;
4. inserts rows and shows the snapshot refresh in the pool stats.

Run:  python examples/parallel_pool.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import os
import random
import threading
import time

from repro import (
    AccessConstraint,
    AccessSchema,
    BEAS,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
)

# ---- 1. a 30k-row event table under one (k, date) constraint -------------
rng = random.Random(23)
schema = DatabaseSchema(
    [
        TableSchema(
            "event",
            [
                ("k", DataType.STRING),
                ("date", DataType.STRING),
                ("recnum", DataType.STRING),
                ("region", DataType.STRING),
                ("amount", DataType.INT),
            ],
            keys=[("recnum",)],
        )
    ]
)
db = Database(schema)
table = db.table("event")
n = 0
for ki in range(150):
    for date in ("2016-06-01", "2016-06-02"):
        for _ in range(100):
            table.rows.append(
                (
                    f"k{ki:03d}", date, f"rec{n}",
                    f"r{rng.randrange(6)}", rng.randrange(500),
                )
            )
            n += 1
table.version = 1
access = AccessSchema(
    [
        AccessConstraint(
            "event",
            ["k", "date"],
            ["recnum", "region", "amount"],
            150,
            name="by_key",
        )
    ]
)


def query_for(client: int) -> str:
    start = client * 29 % 150
    key_list = ", ".join(f"'k{(start + i) % 150:03d}'" for i in range(80))
    return (
        f"SELECT region, COUNT(*) AS events, SUM(amount) AS total "
        f"FROM event WHERE k IN ({key_list}) AND date = '2016-06-01' "
        f"GROUP BY region"
    )


SQL = query_for(0)

# ---- 2. one query, both placements ---------------------------------------
print("== one bounded plan, in-process vs engine pool ==")
inproc = BEAS(db, access, executor="columnar", parallelism=1)
pooled = BEAS(db, access, executor="columnar", parallelism=4)
inproc_session = inproc.session()
pooled_session = pooled.session()

a = inproc_session.run(SQL, use_result_cache=False)
# first pooled run ships the warm snapshot
b = pooled_session.run(SQL, use_result_cache=False)
# steady state: only plan + answer cross processes
b = pooled_session.run(SQL, use_result_cache=False)
assert a.rows == b.rows
assert a.metrics.tuples_fetched == b.metrics.tuples_fetched
print(f"in-process: {len(a.rows)} groups, fetched {a.metrics.tuples_fetched}")
print(
    f"pooled    : {len(b.rows)} groups, fetched {b.metrics.tuples_fetched}, "
    f"workers={b.metrics.pool_workers}, "
    f"dispatched={b.metrics.pool_batches} batches, "
    f"pool wait {b.metrics.pool_wait_seconds * 1000:.2f} ms"
)
print("answers and tuple-access accounting are identical")

# ---- 3. four concurrent clients ------------------------------------------
print("\n== 4 concurrent client threads, 3 queries each ==")


def drive(session) -> float:
    barrier = threading.Barrier(4)

    def client(c: int) -> None:
        barrier.wait()
        for q in range(3):
            session.run(query_for(c * 3 + q), use_result_cache=False)

    threads = [threading.Thread(target=client, args=(c,)) for c in range(4)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


drive(pooled_session)  # warm every worker's snapshot
inproc_s = drive(inproc_session)
pooled_s = drive(pooled_session)
print(f"in-process fleet: {inproc_s * 1000:7.1f} ms (GIL-serialised)")
print(f"pooled fleet    : {pooled_s * 1000:7.1f} ms")
cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else 1
print(
    f"speedup {inproc_s / max(pooled_s, 1e-9):.2f}x on {cpus} CPUs "
    "(scales with cores; ~1x on a single-CPU host)"
)

# ---- 4. maintenance refreshes the warm snapshots -------------------------
print("\n== maintenance: version vector keys the worker snapshots ==")
before = pooled.pool_stats()
pooled_session.insert(
    "event",
    [("k000", "2016-06-01", "rec-new-1", "r0", 42)],
)
fresh = pooled_session.run(SQL, use_result_cache=False)
after = pooled.pool_stats()
assert len(fresh.rows) == len(b.rows)  # same groups, one more event in r0
print(
    f"snapshots sent: {before.snapshots_sent} -> {after.snapshots_sent} "
    "(the insert bumped event's version; the next pooled query re-shipped "
    "the indices)"
)
print(after.describe())

pooled.close()
print("\npool closed; workers shut down deterministically")
