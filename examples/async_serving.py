#!/usr/bin/env python3
"""Async serving: many concurrent asyncio clients over the sharded server.

Walks :class:`~repro.serving.async_server.AsyncBEASServer` over the
paper's Example 1 setting:

1. build BEAS and its **sharded** serving layer, then wrap it in the
   asyncio front end (bounded worker pool + admission control);
2. fire a burst of concurrent clients — different queries over
   different tables — with ``asyncio.gather``: disjoint-table requests
   hold different shard locks, so nothing serialises but the GIL;
3. queue maintenance for two tables at once: per-table FIFO queues mean
   updates to ``call`` and ``package`` drain in parallel, and a reader
   of ``business`` never waits for either;
4. print the per-shard stats: lock acquisitions, contention, wait time,
   cache slices, admission declines.

Run:  python examples/async_serving.py
"""

import asyncio
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import Session

from tests.conftest import example1_access_schema, example1_database

QUERIES = {
    "calls-of-100": (
        "SELECT DISTINCT recnum, region FROM call "
        "WHERE pnum = '100' AND date = '2016-06-01'"
    ),
    "packages-of-100": (
        "SELECT pid FROM package WHERE pnum = '100' AND year = 2016"
    ),
    "east-banks": (
        "SELECT business.pnum FROM business "
        "WHERE business.type = 'bank' AND business.region = 'east'"
    ),
}


async def main() -> None:
    session = Session(example1_database(), example1_access_schema())
    async with session.serve_async(max_workers=4) as aserver:
        # ---- 1. a burst of concurrent clients ---------------------------
        print("== concurrent clients ==")
        start = time.perf_counter()
        burst = await asyncio.gather(
            *(
                aserver.execute(sql)
                for _ in range(8)
                for sql in QUERIES.values()
            )
        )
        elapsed_ms = (time.perf_counter() - start) * 1000
        cached = sum(1 for r in burst if r.metrics.served_from_cache)
        print(
            f"{len(burst)} executes over {len(QUERIES)} tables in "
            f"{elapsed_ms:.1f} ms ({cached} served from cache)"
        )

        # ---- 2. parallel maintenance, isolated reads --------------------
        print("\n== queued maintenance on two tables ==")
        reader = aserver.execute(QUERIES["east-banks"])  # untouched table
        call_batch, package_batch, unaffected = await asyncio.gather(
            aserver.insert(
                "call", [(900, "100", "990", "2016-06-01", "lagoon")]
            ),
            aserver.insert(
                "package",
                [(901, "104", "c9", "2016-01-01", "2016-12-31", 2016)],
            ),
            reader,
        )
        print(
            f"call -> v{call_batch.table_version}, "
            f"package -> v{package_batch.table_version}; "
            f"business read finished with "
            f"{unaffected.metrics.lock_wait_seconds * 1000:.3f} ms lock wait"
        )

        refreshed = await aserver.execute(QUERIES["calls-of-100"])
        assert ("990", "lagoon") in refreshed.rows  # sees the new data

        # ---- 3. the per-shard counters ----------------------------------
        print("\n== per-shard stats ==")
        stats = await aserver.stats()
        print(stats.describe())


if __name__ == "__main__":
    asyncio.run(main())
