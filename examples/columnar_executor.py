#!/usr/bin/env python3
"""Columnar execution: the same bounded plans, batch-at-a-time.

The BE Plan Executor has two modes sharing identical plans, bounds, and
answers:

* ``executor="row"`` (default) — tuple-at-a-time intermediates;
* ``executor="columnar"`` — per-attribute column batches with a
  selection vector: fetches gather index postings for a whole key batch,
  selections only shrink the selection vector, and the tail operators
  stream batches of ``rows_per_batch`` rows (``engine.columnar``).

This walkthrough:

1. builds a synthetic event table (50k rows) under one access
   constraint;
2. runs a selective fetch/select/aggregate query in both modes and
   shows the metrics delta — same rows, same ``tuples_fetched``, but
   the columnar run reports ``rows_per_batch``/``batches`` and a lower
   wall-clock;
3. flips the mode per query through the serving layer
   (``server.execute(sql, executor="columnar")``) without rebuilding
   anything.

Run:  python examples/columnar_executor.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import random

from repro import (
    AccessConstraint,
    AccessSchema,
    Database,
    DatabaseSchema,
    DataType,
    ExecutionOptions,
    Session,
    TableSchema,
)

# ---- 1. a 50k-row event table under one (k, date) constraint -------------
rng = random.Random(11)
schema = DatabaseSchema(
    [
        TableSchema(
            "event",
            [
                ("k", DataType.STRING),
                ("date", DataType.STRING),
                ("recnum", DataType.STRING),
                ("region", DataType.STRING),
            ],
            keys=[("recnum",)],
        )
    ]
)
db = Database(schema)
table = db.table("event")
n = 0
for ki in range(250):
    for date in ("2016-06-01", "2016-06-02"):
        for _ in range(100):
            table.rows.append(
                (f"k{ki:03d}", date, f"rec{n}", f"r{rng.randrange(6)}")
            )
            n += 1
table.version = 1
access = AccessSchema(
    [
        AccessConstraint(
            "event", ["k", "date"], ["recnum", "region"], 150, name="by_key"
        )
    ]
)

key_list = ", ".join(f"'k{ki:03d}'" for ki in range(120))
SQL = (
    f"SELECT region, COUNT(*) AS events FROM event "
    f"WHERE k IN ({key_list}) AND date = '2016-06-01' "
    f"AND region IN ('r0', 'r1', 'r2') GROUP BY region"
)

# ---- 2. the same plan, both modes ----------------------------------------
print("== one bounded plan, two executors ==")
results = {}
for mode in ("row", "columnar"):
    session = Session(
        db, access,
        options=ExecutionOptions(executor=mode, rows_per_batch=4096),
    )
    result = session.run(SQL)
    results[mode] = result
    metrics = result.metrics
    print(
        f"{mode:>8}: {len(result.rows)} groups in {metrics.seconds * 1000:6.1f} ms"
        f" — fetched {metrics.tuples_fetched} partial tuples"
        + (
            f", {metrics.batches} batches of <= {metrics.rows_per_batch} rows"
            if mode == "columnar"
            else ""
        )
    )

assert results["row"].rows == results["columnar"].rows
assert (
    results["row"].metrics.tuples_fetched
    == results["columnar"].metrics.tuples_fetched
)
print("answers and tuple-access accounting are identical across modes")

speedup = results["row"].metrics.seconds / max(
    results["columnar"].metrics.seconds, 1e-9
)
print(f"columnar speedup on this run: {speedup:.2f}x")

# ---- 3. per-query mode selection through the serving layer ---------------
print("\n== per-query selection through the serving layer ==")
session = Session(db, access)  # default mode: row
query = session.query(SQL)
row_run = query.run(use_result_cache=False)
columnar_run = query.run(use_result_cache=False, executor="columnar")
assert row_run.rows == columnar_run.rows
print(
    "query.run()                          ->",
    f"row pipeline, {row_run.metrics.batches} batches",
)
print(
    'query.run(executor="columnar")      ->',
    f"columnar pipeline, {columnar_run.metrics.batches} batches",
)
print("\nmode switching is per query; caches and plans are shared")
