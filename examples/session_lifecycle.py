#!/usr/bin/env python3
"""The unified Session/Query/Decision/Result lifecycle, end to end.

One lifecycle replaces the four old entry paths (``BEAS.execute``,
``execute_decided``, ``prepare``, ``serve``):

1. ``Session`` — context-managed facade over the engine + the sharded
   serving backend;
2. ``session.query(sql)`` — parse/fingerprint/slot-extract once;
3. ``query.decide()`` — the BE Checker verdict, pinned: boundedness,
   plan, deduced bound, cache provenance;
4. ``decision.run()`` / ``query.bind(...).run()`` — execution within
   the bound, returning the unified ``Result``;
5. **plan rebinding** — equal-arity bindings of one template patch the
   pinned plan's constants directly: zero BE Checker re-runs, asserted
   here with the engine's own counter;
6. one validated ``ExecutionOptions`` chain (call > Query > Session >
   EngineProfile > environment) instead of per-call knob plumbing.

Run:  python examples/session_lifecycle.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import ExecutionOptions, Session

from tests.conftest import (
    EXAMPLE2_SQL,
    example1_access_schema,
    example1_database,
)

with Session(
    example1_database(),
    example1_access_schema(),
    options=ExecutionOptions(use_result_cache=True),
) as session:
    # ---- 1. prepare once ------------------------------------------------
    query = session.query(EXAMPLE2_SQL, name="example2")
    print("== prepared template ==")
    print("slots:", ", ".join(sorted(query.slots)))

    # ---- 2. decide once -------------------------------------------------
    decision = query.decide()
    print("\n== decision ==")
    print(f"verdict: {decision.verdict} ({decision.provenance})")
    print(f"access bound M = {decision.access_bound} tuples")
    print(decision.explain())

    # ---- 3. run many ----------------------------------------------------
    result = decision.run()
    print("\n== execution ==")
    print(result.describe())
    print("answers:", sorted(result.rows))
    assert result.metrics.tuples_scanned == 0  # no base table scanned

    # ---- 4. one template, many bindings: plan REBINDING -----------------
    print("\n== rebinding across bindings ==")
    checks_before = session.beas.checker_runs
    for day in ("2016-06-02", "2016-06-03", "2016-06-04", "2016-06-05"):
        bound = query.bind(date=day).run(use_result_cache=False)
        print(
            f"date={day}: {sorted(bound.rows)!s:<24} "
            f"decision={bound.decision.provenance}"
        )
    checker_runs = session.beas.checker_runs - checks_before
    print(f"checker runs for 4 new bindings: {checker_runs}")
    assert checker_runs == 1  # first binding of the signature only

    # ---- 5. per-call options beat the session layer ---------------------
    columnar = query.run(executor="columnar", use_result_cache=False)
    assert sorted(columnar.rows) == sorted(result.rows)
    print(
        f"\ncolumnar override: {columnar.metrics.batches} batches of "
        f"{columnar.metrics.rows_per_batch} rows, same answers"
    )

    # ---- 6. maintenance flows through the same session ------------------
    session.insert("call", [(800, "100", "555", "2016-06-01", "harbor")])
    refreshed = query.run()
    print("after insert:", sorted(refreshed.rows))

    stats = session.stats()
    print(
        f"\nserving: {stats.executions} executions, "
        f"{stats.rebinds} plan rebinds, "
        f"{stats.checker_runs} checker runs total"
    )
