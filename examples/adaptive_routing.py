#!/usr/bin/env python3
"""Learned adaptive executor routing through the Session lifecycle.

The engine ships four observationally-identical execution modes for a
covered bounded plan (row, columnar, pooled/plan, pooled/batch); which
one is fastest depends on the query template. With
``ExecutionOptions(routing="learned")`` (or ``BEAS_ROUTING=learned``)
the serving layer learns a per-template cost model online — features
from the deduced bound, binding constants and catalog statistics — and
routes each covered execution through the predicted-fastest mode,
falling back to epsilon-greedy exploration so a changed workload is
re-learned. Routing never changes answers: every route runs the same
bounded plan, so a wrong prediction costs latency only.

Run:  python examples/adaptive_routing.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import ExecutionOptions, Session

from tests.conftest import example1_access_schema, example1_database

SQL = (
    "SELECT DISTINCT recnum, region FROM call "
    "WHERE pnum = '2025550001' AND date = '2016-01-02'"
)
DAYS = ["2016-01-02", "2016-06-01", "2016-06-02", "2016-06-03"]

print("== learned routing over one serving mix ==")
with Session(
    example1_database(),
    example1_access_schema(),
    options=ExecutionOptions(routing="learned"),
) as session:
    query = session.query(SQL, name="by_caller_and_day")

    # one template, many bindings: every binding shares the template's
    # cost model, so observations from one binding route the next
    for pass_number in range(3):
        for day in DAYS:
            result = query.bind(date=day).run(use_result_cache=False)
            if pass_number == 0:
                flag = " (exploring)" if result.metrics.routing_explored else ""
                print(
                    f"date={day}: routed_mode="
                    f"{result.metrics.routed_mode}{flag}"
                )

    # the router's accounting rides on the serving stats
    stats = session.stats()
    print()
    print(stats.routing.describe())
    assert stats.routing.decisions == 3 * len(DAYS)
    assert stats.routing.observations == stats.routing.decisions

    # per-call options beat the session layer: this execution is pinned
    # to the engine's static shape and the router never sees it
    pinned = query.run(routing="static", use_result_cache=False)
    print(f"\nstatic override: routed_mode={pinned.metrics.routed_mode!r}")

    routed = query.run(use_result_cache=False)  # original constants

# routing is sound by construction: a static session answers the same
# (routing="static" at session level beats any ambient BEAS_ROUTING)
with Session(
    example1_database(),
    example1_access_schema(),
    options=ExecutionOptions(routing="static"),
) as static:
    expected = static.run(SQL, use_result_cache=False)
    assert sorted(expected.rows) == sorted(routed.rows)
    assert sorted(expected.rows) == sorted(pinned.rows)
    assert static.stats().routing.decisions == 0  # static never routes
print("\nanswers identical under learned and static routing")
