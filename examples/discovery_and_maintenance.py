#!/usr/bin/env python3
"""The offline AS Catalog services: discovery and maintenance (Fig. 2(D)).

1. **Discovery** — from a dataset and a historical query load, discover an
   access schema under a storage budget, for each objective function.
2. **Maintenance** — apply insert/delete batches through the maintenance
   manager (indices updated incrementally), watch a cardinality violation
   be rejected atomically vs adjusted, and let the drift monitor retune
   loose bounds.

Run:  python examples/discovery_and_maintenance.py
"""

from repro import BEAS
from repro.bench.reporting import format_table
from repro.discovery import DiscoveryObjective, discover
from repro.errors import MaintenanceError
from repro.maintenance import DriftMonitor, MaintenanceManager, ViolationPolicy
from repro.workloads.tlc import generate_tlc, tlc_queries


def main() -> None:
    ds = generate_tlc(scale=1)
    workload = [q.sql for q in tlc_queries(ds.params)]

    # ---- discovery under different budgets/objectives --------------------
    print("== access schema discovery ==")
    unlimited = discover(ds.database, workload, slack=1.5)
    print(f"\nunlimited budget ({unlimited.storage_used} cells):")
    print(unlimited.describe())

    rows = []
    for fraction in (1.0, 0.5, 0.25):
        budget = int(unlimited.storage_used * fraction)
        for objective in DiscoveryObjective:
            result = discover(
                ds.database, workload, storage_budget=budget,
                objective=objective, slack=1.5,
            )
            rows.append(
                (
                    objective.value,
                    budget,
                    len(result.selected),
                    f"{len(result.covered_queries)}/11",
                    result.storage_used,
                )
            )
    print("\nbudget sweep:")
    print(
        format_table(
            ("objective", "budget", "constraints", "covered", "used"), rows
        )
    )

    # ---- use the discovered schema ---------------------------------------
    beas = BEAS(ds.database, unlimited.schema)
    decision = beas.check(workload[1])  # Q2: direct CDR lookup
    print("\nQ2 under the *discovered* schema:")
    print(decision.describe())

    # ---- incremental maintenance ------------------------------------------
    # (on a catalog carrying the curated schema A0, which names psi1..psi10)
    from repro.workloads.tlc import tlc_access_schema

    print("\n== maintenance ==")
    beas = BEAS(ds.database, tlc_access_schema())
    manager = MaintenanceManager(beas.catalog)
    new_calls = [
        (
            700_000 + i, ds.params.p0, f"E{i:07d}", ds.params.d0, "east",
            "09:30", 45, 0.02, "voice", "out",
            False, False, "T0001", "4G", "normal",
            True, "PLAN01", 0.0, False, "west",
            120, 3, 0.001, "EVS", 0,
            4.5, 0.05, False, "online", "example insert",
        )
        for i in range(5)
    ]
    batch = manager.insert("call", new_calls)
    print(f"inserted {batch.inserted} calls; indices updated incrementally")
    result = beas.session().run(workload[1])
    print(f"Q2 now returns {len(result.rows)} rows "
          f"(fetched {result.metrics.tuples_fetched} tuples, scanned 0)")
    assert result.metrics.tuples_scanned == 0

    manager.delete("call", new_calls)
    print("deleted them again; indices follow")

    # a violating batch under REJECT is rolled back atomically
    psi10 = beas.catalog.schema.get("psi10")
    violating = [
        (
            800_000 + i, ds.params.p0, f"cat{i}", "active", ds.params.d0,
            ds.params.d0, 1, "phone", "AG001", "east",
            "mobile", "pending", False, False, True,
            1, 2, 5, 0.0, "billing",
            False, "violation demo",
        )
        for i in range(psi10.n + 1)  # one complaint category too many
    ]
    try:
        manager.insert("complaint", violating)
    except MaintenanceError as error:
        print(f"\nREJECT policy: {error}")

    adjusting = MaintenanceManager(beas.catalog, policy=ViolationPolicy.ADJUST)
    batch = adjusting.insert("complaint", violating)
    print(
        f"ADJUST policy: accepted; widened {batch.adjusted_constraints} "
        f"(psi10 N is now {beas.catalog.schema.get('psi10').n})"
    )

    # ---- drift monitoring ---------------------------------------------------
    print("\n== drift monitor ==")
    monitor = DriftMonitor(beas.catalog, slack=1.5, tighten_threshold=4.0)
    report = monitor.report()
    print(report.describe())
    changed = monitor.apply(report)
    print(f"applied {len(changed)} bound adjustments: {', '.join(changed) or '-'}")


if __name__ == "__main__":
    main()
