#!/usr/bin/env python3
"""Quickstart: bounded evaluation in ~60 lines.

Builds the paper's Example 1 setting — the ``call`` / ``package`` /
``business`` relations with access constraints ψ1, ψ2, ψ3 — and walks
the unified Session/Query/Decision/Result lifecycle on the Example 2
query: check coverage, inspect the bounded plan with its deduced
bounds, execute, and compare against the host engine.

Run:  python examples/quickstart.py
"""

from repro import (
    AccessConstraint,
    Database,
    DatabaseSchema,
    DataType,
    Session,
    TableSchema,
)

# ---- 1. declare the schema (Example 1 of the paper) ----------------------
schema = DatabaseSchema(
    [
        TableSchema(
            "call",
            [
                ("pnum", DataType.STRING),
                ("recnum", DataType.STRING),
                ("date", DataType.DATE),
                ("region", DataType.STRING),
            ],
        ),
        TableSchema(
            "package",
            [
                ("pnum", DataType.STRING),
                ("pid", DataType.STRING),
                ("start", DataType.DATE),
                ("end", DataType.DATE),
                ("year", DataType.INT),
            ],
        ),
        TableSchema(
            "business",
            [
                ("pnum", DataType.STRING),
                ("type", DataType.STRING),
                ("region", DataType.STRING),
            ],
        ),
    ]
)

# ---- 2. load some data ----------------------------------------------------
db = Database(schema)
db.insert("business", ("100", "bank", "east"))
db.insert("business", ("101", "bank", "east"))
db.insert("package", ("100", "c0", "2016-01-01", "2016-12-31", 2016))
db.insert("package", ("101", "c0", "2016-05-01", "2016-12-31", 2016))
db.insert("call", ("100", "555", "2016-06-01", "north"))
db.insert("call", ("100", "556", "2016-06-01", "south"))
db.insert("call", ("101", "557", "2016-06-01", "east"))

# ---- 3. register the access schema A0 (Example 1) -------------------------
session = Session(db)
session.register_all(
    [
        AccessConstraint("call", ["pnum", "date"], ["recnum", "region"], 500,
                         name="psi1"),
        AccessConstraint("package", ["pnum", "year"], ["pid", "start", "end"],
                         12, name="psi2"),
        AccessConstraint("business", ["type", "region"], ["pnum"], 2000,
                         name="psi3"),
    ]
)

# ---- 4. the Example 2 query ------------------------------------------------
QUERY = """
select call.region
from call, package, business
where business.type = 'bank' and business.region = 'east'
  and business.pnum = call.pnum and call.date = '2016-06-01'
  and call.pnum = package.pnum and package.year = 2016
  and package.start <= '2016-06-01' and package.end >= '2016-06-01'
  and package.pid = 'c0'
"""

# BE Checker: is the query covered? what will it cost, before running it?
query = session.query(QUERY)
decision = query.decide(budget=13_000_000)
print("== BE Checker ==")
print(decision.coverage.describe())
assert decision.covered
assert decision.access_bound == 2000 + 24_000 + 12_000_000  # the paper's M

# BE Plan Generator: the bounded plan, fetch by fetch
print("\n== Bounded plan ==")
print(decision.explain())

# BE Plan Executor: run it — no base table is ever scanned
result = decision.run()
print("\n== Execution ==")
print(result.describe())
print("answers:", sorted(result.to_set()))
assert result.metrics.tuples_scanned == 0

# Sanity: the host engine (scanning everything) agrees
host = session.beas.host_engine().execute(QUERY)
assert result.to_set() == set(host.rows)
print("\nhost engine agrees after scanning", host.metrics.tuples_scanned, "tuples")
session.close()
