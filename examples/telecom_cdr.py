#!/usr/bin/env python3
"""CDR analytics on the TLC benchmark — the paper's demo scenario.

Generates a TLC instance ("2 GB"), registers the access schema A0, runs
all 11 built-in analytical queries through BEAS, and prints the Fig.-3
style performance panel for Q1 (the paper's Example 2 query) against the
PostgreSQL / MySQL / MariaDB comparator profiles.

Run:  python examples/telecom_cdr.py [scale]
"""

import sys

from repro import BEAS
from repro.bench.reporting import format_table
from repro.workloads.tlc import generate_tlc, tlc_access_schema, tlc_queries


def main(scale: int = 2) -> None:
    print(f"generating TLC at scale {scale} ('{scale} GB') ...")
    ds = generate_tlc(scale=scale)
    db = ds.database
    print(
        f"  {len(db.schema)} relations, "
        f"{db.schema.total_attributes()} attributes, "
        f"{db.total_rows()} tuples"
    )

    beas = BEAS(db, tlc_access_schema())
    session = beas.session()
    print("\nregistered access schema A0:")
    print(beas.catalog.schema.describe())

    # ---- run the 11 built-in analytical queries -------------------------
    print("\n== the 11 built-in CDR analyses ==")
    rows = []
    host = beas.host_engine()
    host.statistics()  # warm the stats cache (offline ANALYZE)
    for query in tlc_queries(ds.params):
        result = session.run(query.sql)
        host_result = host.execute(query.sql)
        assert result.to_set() == set(host_result.rows), query.name
        rows.append(
            (
                query.name,
                result.mode.value,
                len(result.rows),
                result.metrics.tuples_accessed,
                host_result.metrics.tuples_scanned,
                query.description[:48],
            )
        )
    print(
        format_table(
            ("query", "mode", "rows", "BEAS access", "DBMS scan", "description"),
            rows,
        )
    )
    covered = sum(1 for r in rows if r[1] == "bounded")
    print(f"\ncovered: {covered}/11 = {covered / 11:.0%} "
          "(paper: 'more than 90% of their queries')")

    # ---- the Fig. 3 panel for Q1 ----------------------------------------
    q1 = tlc_queries(ds.params)[0]
    print("\n== performance analysis of Q1 (Fig. 3 style) ==")
    analysis = beas.analyze_performance(q1.sql)
    print(analysis.describe())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
