"""E9 — row vs columnar bounded execution on a selective fetch workload.

The columnar executor (``executor="columnar"``) replaces row-tuple
intermediates with per-attribute column batches: fetches gather index
postings for a whole key batch and materialise output column by column,
selections only shrink a selection vector, and the tail aggregates
stream batches with cross-batch accumulators. This bench measures both
modes on the same bounded plans over a >= 100k-row synthetic event
table — a selective fetch (IN-list key batch) + selection + GROUP BY
aggregate, in three aggregate shapes — and reports the per-query medians.

The acceptance bar asserted here: the columnar executor answers the
fetch/select/aggregate workload with a median latency at least 2x better
than the row executor, with identical rows and identical
``tuples_fetched`` accounting.

Runs under pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_columnar.py``) or standalone (``PYTHONPATH=src python
benchmarks/bench_columnar.py --quick``) — the latter is the CI smoke
(small dataset, crash detection, no perf assertion).
"""

from __future__ import annotations

import random
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # standalone invocation
    sys.path.insert(0, str(REPO_ROOT))

from repro import (
    AccessConstraint,
    AccessSchema,
    BEAS,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
)
from repro.bench.reporting import format_table

from benchmarks.conftest import once, write_report

KEYS = 300  # distinct k values
DATES = ("2016-06-01", "2016-06-02")
ROWS_PER_BUCKET = 200  # rows per (k, date) pair -> 120 000 base rows
SELECTED_KEYS = 150  # IN-list width of the fetch key batch
REGIONS = 8
TARGET_SPEEDUP = 2.0

QUICK_KEYS = 40
QUICK_ROWS_PER_BUCKET = 25


def build_event_db(keys: int, rows_per_bucket: int) -> Database:
    """A synthetic event table conforming to one (k, date) constraint.

    ``recnum`` is the table key and appears in Y, so plans are bag-exact
    and duplicate-sensitive aggregates (COUNT(*), SUM) stay covered.
    """
    rng = random.Random(90_125)
    schema = DatabaseSchema(
        [
            TableSchema(
                "event",
                [
                    ("k", DataType.STRING),
                    ("date", DataType.STRING),
                    ("recnum", DataType.STRING),
                    ("region", DataType.STRING),
                    ("amount", DataType.INT),
                ],
                keys=[("recnum",)],
            )
        ]
    )
    db = Database(schema)
    rows = []
    n = 0
    for ki in range(keys):
        for date in DATES:
            for _ in range(rows_per_bucket):
                rows.append(
                    (
                        f"k{ki:03d}",
                        date,
                        f"rec{n}",
                        f"r{rng.randrange(REGIONS)}",
                        rng.randrange(1000),
                    )
                )
                n += 1
    table = db.table("event")
    table.rows = rows  # bulk load: per-row insert() would dominate setup
    table.version = 1
    return db


def event_access(rows_per_bucket: int) -> AccessSchema:
    return AccessSchema(
        [
            AccessConstraint(
                "event",
                ["k", "date"],
                ["recnum", "region", "amount"],
                rows_per_bucket + 50,
                name="by_key",
            )
        ]
    )


def workload_queries(keys: int) -> list[tuple[str, str]]:
    selected = min(SELECTED_KEYS, keys)
    key_list = ", ".join(f"'k{ki:03d}'" for ki in range(selected))
    region_list = ", ".join(f"'r{i}'" for i in range(REGIONS // 2))
    shapes = [
        ("count", "COUNT(*)"),
        ("count-distinct", "COUNT(DISTINCT recnum)"),
        ("sum", "SUM(amount)"),
    ]
    return [
        (
            name,
            f"SELECT region, {agg} AS v FROM event "
            f"WHERE k IN ({key_list}) AND date = '{DATES[0]}' "
            f"AND region IN ({region_list}) GROUP BY region",
        )
        for name, agg in shapes
    ]


def _median_seconds(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def measure(keys: int, rows_per_bucket: int, repeats: int) -> dict:
    db = build_event_db(keys, rows_per_bucket)
    access = event_access(rows_per_bucket)
    row_beas = BEAS(db, access, executor="row")
    columnar_beas = BEAS(db, access, executor="columnar")

    results = []
    for name, sql in workload_queries(keys):
        row_answer = row_beas.execute(sql)  # warm (plans, statistics)
        columnar_answer = columnar_beas.execute(sql)
        assert row_answer.mode.value == "bounded", name
        assert columnar_answer.rows == row_answer.rows, name
        assert (
            columnar_answer.metrics.tuples_fetched
            == row_answer.metrics.tuples_fetched
        ), name
        row_seconds = _median_seconds(lambda: row_beas.execute(sql), repeats)
        columnar_seconds = _median_seconds(
            lambda: columnar_beas.execute(sql), repeats
        )
        results.append(
            {
                "name": name,
                "row": row_seconds,
                "columnar": columnar_seconds,
                "fetched": row_answer.metrics.tuples_fetched,
                "batches": columnar_answer.metrics.batches,
            }
        )
    return {
        "base_rows": len(db.table("event")),
        "results": results,
    }


def _report(measured: dict, repeats: int) -> str:
    rows = [
        (
            entry["name"],
            f"{entry['row'] * 1000:.2f}",
            f"{entry['columnar'] * 1000:.2f}",
            f"{entry['row'] / max(entry['columnar'], 1e-9):.2f}x",
            str(entry["fetched"]),
            str(entry["batches"]),
        )
        for entry in measured["results"]
    ]
    table = format_table(
        ["workload", "row ms", "columnar ms", "speedup", "fetched", "batches"],
        rows,
    )
    return (
        f"E9 columnar executor — {measured['base_rows']} base rows, "
        f"{repeats} repeats per mode\n\n" + table
    )


def run(keys: int = KEYS, rows_per_bucket: int = ROWS_PER_BUCKET, repeats: int = 7) -> float:
    """Measure, print, persist; returns the minimum per-query speedup."""
    measured = measure(keys, rows_per_bucket, repeats)
    text = _report(measured, repeats)
    print(text)
    write_report("bench_columnar.txt", text)
    return min(
        entry["row"] / max(entry["columnar"], 1e-9)
        for entry in measured["results"]
    )


def test_columnar_speedup(benchmark):
    speedup = once(benchmark, run)
    assert speedup >= TARGET_SPEEDUP, (
        f"columnar executor is only {speedup:.2f}x vs row "
        f"(target {TARGET_SPEEDUP}x)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset, crash smoke only — no perf assertion (CI)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        speedup = run(QUICK_KEYS, QUICK_ROWS_PER_BUCKET, repeats=3)
        print(f"OK (quick smoke): columnar/row agree; speedup {speedup:.2f}x")
        return 0
    speedup = run()
    if speedup < TARGET_SPEEDUP:
        print(
            f"FAIL: columnar speedup {speedup:.2f}x < {TARGET_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    print(f"OK: columnar speedup {speedup:.2f}x >= {TARGET_SPEEDUP}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
