"""E10 — binding-aware plan rebinding: the decision-path speedup.

A prepared template is *decided once* per arity signature; every later
equal-arity binding patches the pinned plan's constant key parts
directly (``repro.bounded.rebind``) instead of re-running the BE
Checker (normalize + bounded-plan search). Reported, for the paper's
Example 2 join template across ``BINDINGS`` distinct date bindings:

* per-binding re-check — the pre-rebinding serving behaviour: a full
  ``BoundedEvaluabilityChecker.check`` per distinct binding;
* rebinding — one full check for the first binding of the signature,
  then a constant patch per binding (zero checker runs, asserted).

The acceptance bar asserted here: the rebinding decision path is at
least 5x faster across the binding stream than per-binding re-checks.

Runs under pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_rebind.py``) or standalone (``PYTHONPATH=src python
benchmarks/bench_rebind.py --quick``) — the latter is the CI smoke.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # standalone invocation
    sys.path.insert(0, str(REPO_ROOT))

from repro import BEAS, Session
from repro.bench.reporting import format_table

from benchmarks.conftest import once, write_report
from tests.conftest import (
    EXAMPLE2_SQL,
    example1_access_schema,
    example1_database,
)

BINDINGS = 500
TARGET_SPEEDUP = 5.0

_rows: list[tuple] = []


def _bindings(count: int) -> list[dict]:
    return [
        {"call.date": f"2016-{1 + i % 12:02d}-{1 + i % 28:02d}#{i}"}
        for i in range(count)
    ]


def measure_rebinding(count: int) -> dict[str, float]:
    """Total decision-path seconds for ``count`` distinct bindings."""
    database = example1_database()
    schema = example1_access_schema()
    bindings = _bindings(count)

    # --- baseline: a full BE Checker run per binding (the pre-rebind
    # serving behaviour once the per-binding decision cache misses) ----
    oracle = BEAS(database, schema)
    with Session(beas=BEAS(database, schema)) as warmup:
        template = warmup.query(EXAMPLE2_SQL, name="warm")
        bound_statements = [
            template._prepared.binding(b).statement for b in bindings
        ]
    start = time.perf_counter()
    for statement in bound_statements:
        decision = oracle.check(statement)
        assert decision.covered
    recheck_seconds = time.perf_counter() - start
    assert oracle.checker_runs >= count

    # --- rebinding: decide once per signature, patch per binding ------
    session = Session(beas=BEAS(database, schema))
    query = session.query(EXAMPLE2_SQL, name="bench-rebind")
    start = time.perf_counter()
    for binding in bindings:
        decision = query.bind(binding).decide()
        assert decision.covered
    rebind_seconds = time.perf_counter() - start
    stats = session.stats()
    # the headline mechanic: one checker run for the whole stream
    assert session.beas.checker_runs == 1, session.beas.checker_runs
    assert stats.rebinds == count - 1
    session.close()

    return {
        "recheck": recheck_seconds,
        "rebind": rebind_seconds,
        "per_recheck_us": recheck_seconds / count * 1e6,
        "per_rebind_us": rebind_seconds / count * 1e6,
    }


def _report(measured: dict[str, float], count: int) -> str:
    speedup = measured["recheck"] / max(measured["rebind"], 1e-9)
    table = format_table(
        ["decision path", "total ms", "per binding µs", "speedup"],
        [
            (
                "re-check per binding",
                f"{measured['recheck'] * 1000:.1f}",
                f"{measured['per_recheck_us']:.1f}",
                "1.0x",
            ),
            (
                "rebind pinned plan",
                f"{measured['rebind'] * 1000:.1f}",
                f"{measured['per_rebind_us']:.1f}",
                f"{speedup:.1f}x",
            ),
        ],
    )
    return (
        f"E10 plan rebinding — Example 2 template, {count} distinct "
        f"bindings\n\n" + table
    )


def run(count: int = BINDINGS) -> float:
    measured = measure_rebinding(count)
    text = _report(measured, count)
    print(text)
    write_report("bench_rebind.txt", text)
    return measured["recheck"] / max(measured["rebind"], 1e-9)


def test_rebind_speedup(benchmark):
    speedup = once(benchmark, run)
    assert speedup >= TARGET_SPEEDUP, (
        f"rebinding decision path is only {speedup:.1f}x vs per-binding "
        f"re-check (target {TARGET_SPEEDUP}x)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer bindings (the CI smoke); the 5x bar still applies",
    )
    args = parser.parse_args(argv)
    count = 100 if args.quick else BINDINGS
    speedup = run(count)
    if speedup < TARGET_SPEEDUP:
        print(
            f"FAIL: rebinding speedup {speedup:.1f}x < {TARGET_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    print(f"OK: rebinding speedup {speedup:.1f}x >= {TARGET_SPEEDUP}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
