"""A1 — ablation: *reduced redundancy* (partial vs full tuples) and
fetch-key dedup.

Paper §1(2): BEAS "fetches only (distinct) partial tuples needed for
answering Q. This reduces duplicated and unnecessary attributes in tuples
fetched by traditional DBMS." We register an alternative access schema
whose constraints carry *entire* rows (every column in Y) and compare:
same bounded plans and bounds in tuple counts, but far more value cells
moved and more time spent.

Also ablated: ``dedup_keys`` — the paper's accounting presents every
intermediate row's key to the index ("it still accesses over 12 million
tuples"); deduplicating keys fetches each distinct key once.
"""

from __future__ import annotations

import time

from repro import AccessConstraint, AccessSchema, BEAS
from repro.bench.reporting import format_table
from repro.workloads.tlc import query_by_name, tlc_schema

from benchmarks.conftest import dataset, few, once, write_report

SCALE = 50

_rows: list[tuple] = []


def _full_tuple_schema() -> AccessSchema:
    """ψ1-ψ3 variants whose Y carries every remaining column of the relation."""
    schema = tlc_schema()

    def all_but(table: str, x: list[str]) -> list[str]:
        return [c for c in schema.table(table).column_names if c not in x]

    return AccessSchema(
        [
            AccessConstraint(
                "call", ["pnum", "date"], all_but("call", ["pnum", "date"]),
                500, name="psi1_full",
            ),
            AccessConstraint(
                "package", ["pnum", "year"], all_but("package", ["pnum", "year"]),
                12, name="psi2_full",
            ),
            AccessConstraint(
                "business", ["type", "region"],
                all_but("business", ["type", "region"]), 2000, name="psi3_full",
            ),
        ],
        name="A0_full",
    )


def _partial_tuple_schema() -> AccessSchema:
    return AccessSchema(
        [
            AccessConstraint(
                "call", ["pnum", "date"], ["recnum", "region"], 500, name="psi1"
            ),
            AccessConstraint(
                "package", ["pnum", "year"], ["pid", "start", "end"], 12,
                name="psi2",
            ),
            AccessConstraint(
                "business", ["type", "region"], ["pnum"], 2000, name="psi3"
            ),
        ],
        name="A0_partial",
    )


def _cells(result, beas: BEAS) -> int:
    """Value cells moved: fetched tuples x constraint width."""
    total = 0
    for op in result.metrics.operations:
        if not op.label.startswith("fetch["):
            continue
        name = op.label.split("[")[1].split("]")[0]
        constraint = beas.catalog.schema.get(name)
        total += op.tuples_out * (len(constraint.x) + len(constraint.y))
    return total


def _run(benchmark, access: AccessSchema, label: str, dedup: bool = False):
    ds = dataset(SCALE)
    beas = BEAS(ds.database, access, dedup_keys=dedup)
    sql = query_by_name(ds.params, "Q1").sql

    timings: list[float] = []

    def run():
        t0 = time.perf_counter()
        result = beas.execute(sql)
        timings.append(time.perf_counter() - t0)
        return result

    result = few(benchmark, run, rounds=5)
    _rows.append(
        (
            label,
            f"{min(timings) * 1000:.2f} ms",
            result.metrics.tuples_fetched,
            _cells(result, beas),
        )
    )
    return result


def test_partial_tuples(benchmark):
    _run(benchmark, _partial_tuple_schema(), "partial tuples (BEAS)")


def test_full_tuples(benchmark):
    _run(benchmark, _full_tuple_schema(), "full tuples (ablation)")


def test_dedup_keys(benchmark):
    _run(
        benchmark, _partial_tuple_schema(), "partial + key dedup", dedup=True
    )


def test_ablation_report(benchmark):
    once(benchmark, lambda: None)
    report = "\n".join(
        [
            f"A1 — reduced redundancy ablation on Q1 at scale {SCALE}",
            "partial-tuple fetches move far fewer value cells than full-row "
            "fetches at identical tuple bounds; key dedup reduces fetches "
            "below the paper's per-row accounting",
            "",
            format_table(("variant", "time", "tuples fetched", "value cells"), _rows),
        ]
    )
    write_report("ablation_partial_tuples.txt", report)

    by_label = {row[0]: row for row in _rows}
    partial_cells = by_label["partial tuples (BEAS)"][3]
    full_cells = by_label["full tuples (ablation)"][3]
    assert full_cells > 2 * partial_cells, (
        "full-tuple fetches must move substantially more data"
    )
    dedup_fetched = by_label["partial + key dedup"][2]
    plain_fetched = by_label["partial tuples (BEAS)"][2]
    assert dedup_fetched <= plain_fetched
