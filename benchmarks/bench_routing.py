"""E11 — learned adaptive executor routing on a bimodal serving mix.

No static engine shape wins a mixed workload: tuple-at-a-time execution
is fastest for micro point lookups (no per-query batch machinery),
vectorised columnar wins selective filters, batch fan-out pays on a
join whose chunks carry real per-chunk work but *loses* on one whose
chunks are trivial (the IPC outweighs the compute), and whole-plan
dispatch pays per-query IPC that only multi-client throughput can
amortise. The learned router (``repro.engine.router``) observes each
(template, route) pair's measured latency and converges to the
per-template winner, so one serving configuration tracks the best
static mode everywhere.

This bench drives four prepared templates through the serving layer
(result caching off, distinct bindings per execution):

* ``micro``  — point lookup fetching ~3 rows (row-friendly),
* ``med``    — join with a trivial-work multi-chunk second fetch
  (serial-friendly: fan-out ships more than it saves),
* ``filter`` — selective predicate over a ~600-row fetch (columnar),
* ``heavy``  — GROUP-BY aggregate join whose second fetch fans ~8 rows
  per input row (pooled-batch-friendly on real cores),

against four static servers (``routing="static"`` on engines pinned to
row, columnar, pooled/plan, pooled/batch) and one learned server
(``routing="learned"``, trained on untimed passes, then timed greedy).

The acceptance bars asserted here: the learned server is >= 1.0x every
static mode and >= 1.3x the worst static mode on the same mix. The
bars assume the two pool workers get real cores (CI runs this on
4-vCPU runners); below 2 CPUs the comparison still runs for
correctness but the perf assertion is skipped with a loud message.

Runs under pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_routing.py``) or standalone (``PYTHONPATH=src python
benchmarks/bench_routing.py --quick``) — the latter is the CI smoke
(small dataset, answer-equality + router-wiring checks, no perf bar).
"""

from __future__ import annotations

import os
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # standalone invocation
    sys.path.insert(0, str(REPO_ROOT))

from repro import (
    AccessConstraint,
    AccessSchema,
    BEAS,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
)
from repro.bench.reporting import format_table

from benchmarks.conftest import once, write_report

ROWS_PER_BATCH = 64  # chunk granularity: med fans out ~10 trivial chunks

MICRO_KEYS = 64
MICRO_FAN = 3
MED_KEYS = 8
MED_FAN = 600  # second-fetch input rows -> ~10 chunks of trivial work
FILTER_KEYS = 8
FILTER_ROWS = 600
DATES = [f"2016-01-{d:02d}" for d in range(1, 9)]
HEAVY_IN = 1200  # rids per date
HEAVY_FAN = 8  # f-rows per rid: real per-chunk compute for fan-out
REGIONS = 6

MICRO_PER_ROUND = 18
MED_PER_ROUND = 6
FILTER_PER_ROUND = 6
HEAVY_PER_ROUND = 1
ROUNDS = 12
REPEATS = 3

QUICK_SCALE = 10  # divides med/filter/heavy row counts
QUICK_ROUNDS = 2

MIN_SPEEDUP = 1.0  # learned vs the best static mode
WORST_SPEEDUP = 1.3  # learned vs the worst static mode

STATIC_SHAPES = {
    "row": dict(executor="row", parallelism=1),
    "columnar": dict(executor="columnar", parallelism=1),
    "pooled-plan": dict(
        executor="columnar", parallelism=2, parallel_dispatch="plan"
    ),
    "pooled-batch": dict(
        executor="columnar", parallelism=2, parallel_dispatch="batch"
    ),
}


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_db(scale_divisor: int = 1) -> tuple[Database, AccessSchema]:
    med_fan = max(MED_FAN // scale_divisor, 20)
    filter_rows = max(FILTER_ROWS // scale_divisor, 20)
    heavy_in = max(HEAVY_IN // scale_divisor, 20)
    schema = DatabaseSchema(
        [
            TableSchema(
                "t",
                [("k", DataType.STRING), ("u", DataType.STRING)],
                keys=[("u",)],
            ),
            TableSchema(
                "m",
                [("k", DataType.STRING), ("u", DataType.STRING)],
                keys=[("u",)],
            ),
            TableSchema(
                "ms",
                [("u", DataType.STRING), ("w", DataType.STRING)],
                keys=[("u",)],
            ),
            TableSchema(
                "t2",
                [
                    ("k", DataType.STRING),
                    ("v", DataType.INT),
                    ("u", DataType.STRING),
                ],
                keys=[("u",)],
            ),
            TableSchema(
                "e",
                [("d", DataType.STRING), ("rid", DataType.INT)],
                keys=[("rid",)],
            ),
            TableSchema(
                "f",
                [
                    ("rid", DataType.INT),
                    ("region", DataType.STRING),
                    ("amount", DataType.INT),
                    ("fid", DataType.INT),
                ],
                keys=[("fid",)],
            ),
        ]
    )
    db = Database(schema)
    for i in range(MICRO_KEYS):
        for j in range(MICRO_FAN):
            db.insert("t", (f"k{i:03d}", f"u{i:03d}_{j}"))
    for i in range(MED_KEYS):
        for j in range(med_fan):
            u = f"u{i}_{j:04d}"
            db.insert("m", (f"k{i}", u))
            db.insert("ms", (u, f"w{j % 7}"))
    for i in range(FILTER_KEYS):
        for j in range(filter_rows):
            db.insert("t2", (f"k{i}", j % 251, f"w{i}_{j:04d}"))
    rid = 0
    fid = 0
    for d in DATES:
        for i in range(heavy_in):
            db.insert("e", (d, rid))
            for j in range(HEAVY_FAN):
                db.insert(
                    "f", (rid, f"r{(rid + j) % REGIONS}", (rid * j) % 997, fid)
                )
                fid += 1
            rid += 1
    access = AccessSchema(
        [
            AccessConstraint("t", ["k"], ["u"], MICRO_FAN + 2, name="t_by_k"),
            AccessConstraint("m", ["k"], ["u"], med_fan + 8, name="m_by_k"),
            AccessConstraint("ms", ["u"], ["w"], 2, name="ms_by_u"),
            AccessConstraint(
                "t2", ["k"], ["v", "u"], filter_rows + 8, name="t2_by_k"
            ),
            # rid / fid (the table keys) ride in Y so plans over e, f
            # stay bag-exact and the COUNT/SUM template remains covered
            AccessConstraint("e", ["d"], ["rid"], heavy_in + 8, name="e_by_d"),
            AccessConstraint(
                "f",
                ["rid"],
                ["region", "amount", "fid"],
                HEAVY_FAN + 2,
                name="f_by_rid",
            ),
        ]
    )
    return db, access


def make_templates(server):
    """The four prepared templates; the router learns one cost model
    per template fingerprint, shared by every binding."""
    return {
        "micro": server.prepare("SELECT u FROM t WHERE k = 'k000'"),
        "med": server.prepare(
            "SELECT m.u, ms.w FROM m, ms "
            "WHERE m.k = 'k0' AND ms.u = m.u ORDER BY m.u"
        ),
        "filter": server.prepare(
            "SELECT u FROM t2 WHERE k = 'k0' AND v = 17"
        ),
        "heavy": server.prepare(
            "SELECT f.region, COUNT(*) AS c, SUM(f.amount) AS s FROM e, f "
            f"WHERE e.d = '{DATES[0]}' AND f.rid = e.rid GROUP BY f.region"
        ),
    }


def round_bindings(round_number: int):
    """One round of the mix: (template, params) pairs with distinct
    bindings per round so every execute is real engine work."""
    mix = []
    for i in range(MICRO_PER_ROUND):
        key = (round_number * 31 + i * 7) % MICRO_KEYS
        mix.append(("micro", {"k": f"k{key:03d}"}))
    for i in range(MED_PER_ROUND):
        mix.append(("med", {"m.k": f"k{(round_number + i) % MED_KEYS}"}))
    for i in range(FILTER_PER_ROUND):
        mix.append(
            (
                "filter",
                {
                    "k": f"k{(round_number + i) % FILTER_KEYS}",
                    "v": (round_number * 13 + i * 29) % 251,
                },
            )
        )
    for i in range(HEAVY_PER_ROUND):
        mix.append(
            ("heavy", {"d": DATES[(round_number * 3 + i) % len(DATES)]})
        )
    return mix


def drive(server, templates, rounds: int, routing: str) -> float:
    """Execute ``rounds`` of the mix; returns wall-clock seconds."""
    start = time.perf_counter()
    for round_number in range(rounds):
        for name, params in round_bindings(round_number):
            server.execute_prepared(
                templates[name],
                params,
                use_result_cache=False,
                routing=routing,
            )
    return time.perf_counter() - start


def measure(scale_divisor: int, rounds: int, repeats: int):
    db, access = build_db(scale_divisor)
    engines = {
        name: BEAS(db, access, rows_per_batch=ROWS_PER_BATCH, **shape)
        for name, shape in STATIC_SHAPES.items()
    }
    learned_beas = BEAS(
        db,
        access,
        executor="columnar",
        rows_per_batch=ROWS_PER_BATCH,
        parallelism=2,
    )
    servers = {name: beas.session().server for name, beas in engines.items()}
    learned_server = learned_beas.session().server
    templates = {
        name: make_templates(server) for name, server in servers.items()
    }
    learned_templates = make_templates(learned_server)

    # correctness first: the learned server answers every template
    # identically to the row oracle, whatever route it picks
    for name, params in round_bindings(0):
        expected = servers["row"].execute_prepared(
            templates["row"][name], params, use_result_cache=False
        )
        got = learned_server.execute_prepared(
            learned_templates[name],
            params,
            use_result_cache=False,
            routing="learned",
        )
        assert got.rows == expected.rows, f"learned answer diverged: {name}"
        assert (
            got.metrics.tuples_fetched == expected.metrics.tuples_fetched
        ), f"learned accounting diverged: {name}"

    # warm every config (plans, snapshots), then train the router: the
    # untimed passes with the default epsilon cover all four routes per
    # template before the timed phase runs greedily
    for name, server in servers.items():
        drive(server, templates[name], 2, "static")
    drive(learned_server, learned_templates, 4, "learned")
    learned_server.router.epsilon = 0.0  # timed phase: pure exploitation

    static_seconds = {name: [] for name in servers}
    learned_seconds = []
    for _ in range(repeats):
        for name, server in servers.items():
            static_seconds[name].append(
                drive(server, templates[name], rounds, "static")
            )
        learned_seconds.append(
            drive(learned_server, learned_templates, rounds, "learned")
        )

    stats = learned_server.router.stats()
    for beas in engines.values():
        beas.close()
    learned_beas.close()
    queries = rounds * len(round_bindings(0))
    return {
        "static": {n: statistics.median(s) for n, s in static_seconds.items()},
        "learned": statistics.median(learned_seconds),
        "router": stats,
        "queries": queries,
    }


def _report(measured: dict, repeats: int) -> str:
    learned = measured["learned"]
    queries = measured["queries"]
    rows = []
    for name, seconds in measured["static"].items():
        rows.append(
            (
                f"static {name}",
                f"{seconds * 1000:.1f}",
                f"{queries / max(seconds, 1e-9):.0f}",
                f"{seconds / max(learned, 1e-9):.2f}x",
            )
        )
    rows.append(
        (
            "learned router",
            f"{learned * 1000:.1f}",
            f"{queries / max(learned, 1e-9):.0f}",
            "1.00x",
        )
    )
    table = format_table(
        ["configuration", "mix ms", "queries/s", "learned speedup"], rows
    )
    return (
        f"E11 learned executor routing — {queries} queries/mix "
        f"({MICRO_PER_ROUND} micro : {MED_PER_ROUND} med : "
        f"{FILTER_PER_ROUND} filter : {HEAVY_PER_ROUND} heavy per round), "
        f"{repeats} repeats, {_cpus()} CPUs\n\n"
        + table
        + "\n"
        + measured["router"].describe()
    )


def run(
    scale_divisor: int = 1,
    rounds: int = ROUNDS,
    repeats: int = REPEATS,
) -> tuple[float, float]:
    """Measure, print, persist; returns (speedup vs best static, speedup
    vs worst static)."""
    measured = measure(scale_divisor, rounds, repeats)
    text = _report(measured, repeats)
    print(text)
    write_report("bench_routing.txt", text)
    learned = measured["learned"]
    ratios = [s / max(learned, 1e-9) for s in measured["static"].values()]
    return min(ratios), max(ratios)


def test_routing_speedup(benchmark):
    if _cpus() < 2:
        import pytest

        pytest.skip(
            "the pooled routes need 2 real cores; the routing bars assume "
            "a multi-core host (CI runs this on 4-vCPU runners)"
        )
    best, worst = once(benchmark, run)
    assert best >= MIN_SPEEDUP, (
        f"learned routing is {best:.2f}x vs the best static mode "
        f"(target >= {MIN_SPEEDUP}x)"
    )
    assert worst >= WORST_SPEEDUP, (
        f"learned routing is only {worst:.2f}x vs the worst static mode "
        f"(target >= {WORST_SPEEDUP}x)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset, answer-equality + wiring smoke only — no "
        "perf bars (CI)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        best, worst = run(QUICK_SCALE, QUICK_ROUNDS, repeats=1)
        print(
            f"OK (quick smoke): learned/static agree; "
            f"{best:.2f}x best, {worst:.2f}x worst"
        )
        return 0
    best, worst = run()
    if _cpus() < 2:
        print(
            f"NOTE: {_cpus()}-CPU host; measured {best:.2f}x best / "
            f"{worst:.2f}x worst, the >= {MIN_SPEEDUP}x / "
            f">= {WORST_SPEEDUP}x bars assume 2 real cores",
            file=sys.stderr,
        )
        return 0
    if best < MIN_SPEEDUP or worst < WORST_SPEEDUP:
        print(
            f"FAIL: learned routing {best:.2f}x best / {worst:.2f}x worst "
            f"static (targets >= {MIN_SPEEDUP}x / >= {WORST_SPEEDUP}x)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: learned routing {best:.2f}x vs best static, "
        f"{worst:.2f}x vs worst static"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
