"""E5 — partially bounded plans (BE Plan Optimizer, paper §3).

Two non-covered queries exercise the optimizer:

* **Q11** (built-in) joins ``data_usage`` (no access constraints) with
  ``business``; the bounded prefix replaces the (small) business scan.
* **Q11b** joins ``device`` (no constraints, small) with ``call`` (large,
  covered by ψ1): "brands of devices owned by numbers that p0 called on
  d0". Here the prefix replaces the *large* call scan, which is where
  partially bounded plans pay off most — the shape the paper's §3
  describes ("speeds up the evaluation of Q by capitalizing on the
  indices of A").
"""

from __future__ import annotations

import time

from repro.bench.reporting import format_table
from repro.workloads.tlc import query_by_name

from benchmarks.conftest import beas_for, dataset, few, once, write_report

SCALE = 50

_rows: list[tuple] = []
_checks: list[tuple] = []


def _q11b_sql() -> str:
    params = dataset(SCALE).params
    return f"""
        SELECT DISTINCT dv.brand FROM device dv, call c
        WHERE c.pnum = '{params.p0}' AND c.date = '{params.d0}'
          AND dv.pnum = c.recnum
    """


def _run_pair(benchmark, name: str, sql: str):
    beas = beas_for(SCALE)
    engine = beas.host_engine()
    engine.statistics()  # offline ANALYZE

    state: dict[str, object] = {}

    def run():
        t0 = time.perf_counter()
        partial = beas.execute(sql)
        partial_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        conventional = engine.execute(sql)
        conventional_seconds = time.perf_counter() - t0
        state["partial"] = (partial, partial_seconds)
        state["conventional"] = (conventional, conventional_seconds)
        return partial

    result = few(benchmark, run, rounds=3)
    assert result.mode.value == "partial", name
    partial, partial_seconds = state["partial"]
    conventional, conventional_seconds = state["conventional"]
    assert set(partial.rows) == set(conventional.rows)
    _rows.append(
        (
            name, "partially bounded", f"{partial_seconds * 1000:.2f} ms",
            partial.metrics.tuples_scanned, partial.metrics.tuples_fetched,
        )
    )
    _rows.append(
        (
            name, "conventional", f"{conventional_seconds * 1000:.2f} ms",
            conventional.metrics.tuples_scanned,
            conventional.metrics.tuples_fetched,
        )
    )
    _checks.append(
        (
            name,
            partial.metrics.tuples_scanned,
            conventional.metrics.tuples_scanned,
            partial_seconds,
            conventional_seconds,
        )
    )


def test_q11_small_covered_side(benchmark):
    _run_pair(benchmark, "Q11", query_by_name(dataset(SCALE).params, "Q11").sql)


def test_q11b_large_covered_side(benchmark):
    _run_pair(benchmark, "Q11b", _q11b_sql())


def test_partial_report(benchmark):
    once(benchmark, lambda: None)
    report = "\n".join(
        [
            f"E5 — partially bounded plans at scale {SCALE}",
            "Q11: covered side is small (business);"
            " Q11b: covered side is large (call)",
            "",
            format_table(
                ("query", "plan", "time", "tuples scanned", "tuples fetched"),
                _rows,
            ),
        ]
    )
    write_report("partial_plans.txt", report)

    for name, p_scanned, c_scanned, p_seconds, c_seconds in _checks:
        # every partial plan scans strictly less base data
        assert p_scanned < c_scanned, name
    # and with a large covered relation the speedup is substantial
    q11b = next(check for check in _checks if check[0] == "Q11b")
    assert q11b[4] > 3 * q11b[3], "Q11b partial should be much faster"
