"""Shared infrastructure for the benchmark harness.

Each bench file regenerates one table/figure of the paper (see DESIGN.md's
experiment index). Datasets and BEAS instances are cached per scale so the
Fig.-4 sweep pays generation once, and every bench writes a plain-text
report with the paper-style rows to ``bench_results/``.
"""

from __future__ import annotations

from pathlib import Path

from repro import BEAS
from repro.bench import cached_tlc
from repro.workloads.tlc import TLCDataset, tlc_access_schema

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"

_beas_cache: dict[int, BEAS] = {}


def dataset(scale: int) -> TLCDataset:
    return cached_tlc(scale)


def beas_for(scale: int) -> BEAS:
    """BEAS over the cached TLC instance at ``scale`` (indices built once)."""
    if scale not in _beas_cache:
        _beas_cache[scale] = BEAS(dataset(scale).database, tlc_access_schema())
    return _beas_cache[scale]


def write_report(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer (heavy
    workloads must not be re-run by calibration)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def few(benchmark, fn, rounds: int = 5):
    """Run ``fn`` a few rounds (cheap, low-variance measurements)."""
    return benchmark.pedantic(fn, rounds=rounds, iterations=1, warmup_rounds=1)
