"""A2 — ablation: greedy fetch ordering in the BE Plan Generator.

The generator orders candidate fetches by deduced access bound (smallest
first). The ablation plans with the opposite heuristic ("anti-greedy"):
for Q1 that fetches call before package, inflating both the deduced bound
and the actual tuples fetched.
"""

from __future__ import annotations

from repro.bounded.executor import BoundedPlanExecutor
from repro.bounded.planner import BoundedPlanGenerator
from repro.bench.reporting import format_table
from repro.sql.normalize import normalize
from repro.sql.parser import parse
from repro.workloads.tlc import query_by_name, tlc_access_schema

from benchmarks.conftest import beas_for, dataset, few, once, write_report

SCALE = 50

_rows: list[tuple] = []


def _plans():
    ds = dataset(SCALE)
    sql = query_by_name(ds.params, "Q1").sql
    generator = BoundedPlanGenerator(ds.database.schema, tlc_access_schema())
    cq = normalize(parse(sql), ds.database.schema)
    greedy, _ = generator.try_generate(cq)
    anti, _ = generator.try_generate(cq, candidate_order="anti_greedy")
    return greedy, anti


def _execute(benchmark, plan, label):
    beas = beas_for(SCALE)
    executor = BoundedPlanExecutor(beas.catalog)
    result = few(benchmark, lambda: executor.execute(plan), rounds=5)
    _rows.append(
        (
            label,
            " -> ".join(op.constraint.name for op in plan.fetch_ops),
            plan.access_bound,
            result.metrics.tuples_fetched,
        )
    )
    return result


def test_greedy_order(benchmark):
    greedy, _ = _plans()
    _execute(benchmark, greedy, "greedy (BEAS)")


def test_anti_greedy_order(benchmark):
    _, anti = _plans()
    _execute(benchmark, anti, "anti-greedy (ablation)")


def test_fetch_order_report(benchmark):
    once(benchmark, lambda: None)
    greedy, anti = _plans()

    # both orders answer identically
    beas = beas_for(SCALE)
    executor = BoundedPlanExecutor(beas.catalog)
    assert set(executor.execute(greedy).rows) == set(executor.execute(anti).rows)

    report = "\n".join(
        [
            f"A2 — fetch-order ablation on Q1 at scale {SCALE}",
            "",
            format_table(
                ("heuristic", "fetch order", "deduced bound M", "tuples fetched"),
                _rows,
            ),
        ]
    )
    write_report("ablation_fetch_order.txt", report)

    assert greedy.access_bound <= anti.access_bound
    by_label = {row[0]: row for row in _rows}
    assert (
        by_label["greedy (BEAS)"][3] <= by_label["anti-greedy (ablation)"][3]
    )
