"""E2 — Fig. 4: scalability of Q when TLC grows from 1 GB to 200 GB.

Paper series (seconds) at sizes 1/10/50/100/200 GB:
    BEAS       0.1   0.4    0.7    0.9    1.1      (~flat)
    PostgreSQL 8.8   91.5   459.7  933.6  1932.5   (linear)
    MariaDB    22.4  244.0  1277.7 2578.3 5243.8   (linear)
    MySQL      28.8  313.3  1542.6 3069.8 6187.6   (linear)

Reproduced shape: BEAS stays ~flat ("scale-independent") while every
comparator profile grows ~linearly with scale; the PG < MariaDB < MySQL
ordering holds. Scale ``k`` stands for "k GB" (row counts linear in k).
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import format_table
from repro.engine.profiles import MARIADB, MYSQL, POSTGRESQL
from repro.workloads.tlc import query_by_name

from benchmarks.conftest import beas_for, dataset, few, once, write_report

SCALES = (1, 10, 50, 100, 200)
_PROFILES = {"postgresql": POSTGRESQL, "mysql": MYSQL, "mariadb": MARIADB}

_times: dict[tuple[str, int], float] = {}


def _note(key: tuple[str, int], seconds: float) -> None:
    previous = _times.get(key)
    _times[key] = seconds if previous is None else min(previous, seconds)


def _sql(scale: int) -> str:
    return query_by_name(dataset(scale).params, "Q1").sql


@pytest.mark.parametrize("scale", SCALES)
def test_fig4_beas(benchmark, scale):
    beas = beas_for(scale)
    sql = _sql(scale)

    def run():
        t0 = time.perf_counter()
        result = beas.execute(sql)
        _note(("beas", scale), time.perf_counter() - t0)
        return result

    result = few(benchmark, run, rounds=5)
    assert result.metrics.tuples_scanned == 0
    benchmark.extra_info["scale"] = scale


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("profile_name", sorted(_PROFILES))
def test_fig4_conventional(benchmark, profile_name, scale):
    engine = beas_for(scale).host_engine(_PROFILES[profile_name])
    engine.statistics()  # offline ANALYZE: not part of query time
    sql = _sql(scale)

    def run():
        t0 = time.perf_counter()
        result = engine.execute(sql)
        _note((profile_name, scale), time.perf_counter() - t0)
        return result

    result = few(benchmark, run, rounds=3)
    # same answers as BEAS at the same scale (set semantics)
    bounded = beas_for(scale).execute(sql)
    assert set(result.rows) == set(bounded.rows)
    benchmark.extra_info["scale"] = scale


def test_fig4_report(benchmark):
    once(benchmark, lambda: None)
    headers = ["engine"] + [f"{s} GB" for s in SCALES]
    rows = []
    for engine in ("beas", "postgresql", "mariadb", "mysql"):
        rows.append(
            [engine]
            + [f"{_times[(engine, s)] * 1000:.1f} ms" for s in SCALES]
        )
    report = "\n".join(
        [
            "Fig. 4 — scalability of Q (Example 2), TLC 1 GB..200 GB",
            "paper: BEAS ~1 s flat; PG 8.8 -> 1932.5 s; MariaDB 22.4 -> 5243.8 s; "
            "MySQL 28.8 -> 6187.6 s",
            "",
            format_table(headers, rows),
        ]
    )
    write_report("fig4_scalability.txt", report)

    # shape assertions (generous margins; absolute numbers are not the claim)
    beas_series = [_times[("beas", s)] for s in SCALES]
    assert max(beas_series) / max(min(beas_series), 1e-9) < 20, (
        "BEAS should be ~scale-independent"
    )
    for profile_name in _PROFILES:
        small = _times[(profile_name, 1)]
        large = _times[(profile_name, 200)]
        assert large > 20 * small, (
            f"{profile_name} should grow ~linearly with scale"
        )
        # BEAS wins by a wide margin at the largest scale
        assert large > 10 * _times[("beas", 200)]
