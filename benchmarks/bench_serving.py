"""E8 — the prepared-query serving layer's repeated-query speedup.

The serving layer amortises parse + normalize + BE Checker cost behind
prepared statements and caches. Reported, for a repeated covered query
(the paper's Example 2 / TLC Q1):

* cold ``BEAS.execute()`` — full frontend + checker + executor per call;
* prepared, result cache off — pinned decision/plan, bounded execution;
* prepared + result cache — the steady-state serving path;
* a fresh binding of the same template (plan re-check, no re-parse).

The acceptance bar asserted here: the prepared/cached path answers a
repeated covered query with a median latency at least 5x better than
cold ``BEAS.execute()``.

Runs under pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_serving.py``) or standalone (``PYTHONPATH=src python
benchmarks/bench_serving.py --quick``) — the latter is the CI smoke.
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # standalone invocation
    sys.path.insert(0, str(REPO_ROOT))

from repro.bench.reporting import format_table
from repro.workloads.tlc import tlc_queries

from benchmarks.conftest import beas_for, dataset, once, write_report

SCALE = 5
TARGET_SPEEDUP = 5.0

_rows: list[tuple] = []


def _median_seconds(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def measure_serving(scale: int, repeats: int) -> dict[str, float]:
    """Median per-call latency of each serving path for TLC Q1."""
    beas = beas_for(scale)
    ds = dataset(scale)
    q1 = tlc_queries(ds.params)[0]
    server = beas.serve()
    prepared = server.prepare(q1.sql, name="bench-q1")

    expected = beas.execute(q1.sql)  # warms statistics, pins nothing
    assert expected.mode.value == "bounded"

    cold = _median_seconds(lambda: beas.execute(q1.sql), repeats)

    prepared.execute(use_result_cache=False)  # pin the decision
    pinned = _median_seconds(
        lambda: prepared.execute(use_result_cache=False), repeats
    )

    prepared.execute()  # populate the result cache
    cached = _median_seconds(lambda: prepared.execute(), repeats)

    # a fresh binding per call: substitution + checker (decision cache
    # misses on the first sight of each binding, hits afterwards)
    dates = [f"2016-06-{2 + (i % 25):02d}" for i in range(repeats)]
    rebind = _median_seconds(
        lambda i=iter(dates): prepared.execute({"call.date": next(i)}),
        repeats,
    )

    sanity = prepared.execute()
    assert sorted(sanity.rows) == sorted(expected.rows)
    return {
        "cold": cold,
        "pinned": pinned,
        "cached": cached,
        "rebind": rebind,
        "stats": server.stats(),
    }


def _report(measured: dict, scale: int, repeats: int) -> str:
    cold = measured["cold"]
    rows = [
        ("cold BEAS.execute()", cold * 1000, 1.0),
        ("prepared, no result cache", measured["pinned"] * 1000,
         cold / max(measured["pinned"], 1e-9)),
        ("prepared + result cache", measured["cached"] * 1000,
         cold / max(measured["cached"], 1e-9)),
        ("fresh binding each call", measured["rebind"] * 1000,
         cold / max(measured["rebind"], 1e-9)),
    ]
    table = format_table(
        ["path", "median ms", "speedup vs cold"],
        [(name, f"{ms:.3f}", f"{speedup:.1f}x") for name, ms, speedup in rows],
    )
    stats = measured["stats"]
    return (
        f"E8 serving layer — TLC scale {scale}, {repeats} repeats\n\n"
        + table
        + "\n\n"
        + stats.describe()
    )


def run(scale: int = SCALE, repeats: int = 30) -> float:
    """Measure, print, persist; returns the cached-path speedup."""
    measured = measure_serving(scale, repeats)
    text = _report(measured, scale, repeats)
    print(text)
    write_report("bench_serving.txt", text)
    return measured["cold"] / max(measured["cached"], 1e-9)


def test_serving_speedup(benchmark):
    speedup = once(benchmark, run)
    assert speedup >= TARGET_SPEEDUP, (
        f"prepared/cached path is only {speedup:.1f}x vs cold "
        f"(target {TARGET_SPEEDUP}x)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scale-1 dataset, fewer repeats (the CI smoke)",
    )
    args = parser.parse_args(argv)
    scale = 1 if args.quick else SCALE
    repeats = 15 if args.quick else 30
    speedup = run(scale, repeats)
    if speedup < TARGET_SPEEDUP:
        print(
            f"FAIL: cached speedup {speedup:.1f}x < {TARGET_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    print(f"OK: cached speedup {speedup:.1f}x >= {TARGET_SPEEDUP}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
