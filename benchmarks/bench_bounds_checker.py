"""E4 + A3 — bound deduction and the BE Checker, before any execution.

Example 2 of the paper deduces, from the access schema alone: at most
2 000 business tuples, 24 000 package tuples and 12 000 000 call tuples.
This bench asserts those exact numbers, measures checking time (the
Feasibility Theorem makes the check PTIME — it must stay sub-millisecond
per query), exercises the budget feature of Fig. 2(A), and reports the
naive-vs-tight bound ablation (A3) over all covered TLC queries.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.bounded.bounds import deduce_bounds
from repro.workloads.tlc import query_by_name, tlc_queries

from benchmarks.conftest import beas_for, dataset, few, once, write_report

SCALE = 1  # checking is symbolic; data size is irrelevant


def test_checker_speed_q1(benchmark):
    """BE Checker latency on Q1 (three-relation join)."""
    beas = beas_for(SCALE)
    sql = query_by_name(dataset(SCALE).params, "Q1").sql
    decision = few(benchmark, lambda: beas.check(sql), rounds=20)
    assert decision.covered


def test_checker_speed_all_queries(benchmark):
    beas = beas_for(SCALE)
    queries = tlc_queries(dataset(SCALE).params)

    def run():
        return [beas.check(q.sql) for q in queries]

    decisions = few(benchmark, run, rounds=5)
    assert sum(d.covered for d in decisions) == 10


def test_example2_bounds_exact(benchmark):
    beas = beas_for(SCALE)
    sql = query_by_name(dataset(SCALE).params, "Q1").sql
    decision = few(benchmark, lambda: beas.check(sql), rounds=5)
    summary = deduce_bounds(decision.plan)
    assert [f.access_bound for f in summary.fetches] == [
        2000, 24_000, 12_000_000,
    ], "Example 2's deduced bounds must match the paper exactly"
    assert summary.access_bound == 12_026_000
    assert summary.tight_access_bound == 1_026_000


def test_budget_feature(benchmark):
    """Fig. 2(A): 'enter a budget ... without executing Q'."""
    beas = beas_for(SCALE)
    sql = query_by_name(dataset(SCALE).params, "Q1").sql

    def run():
        within = beas.check(sql, budget=13_000_000)
        over = beas.check(sql, budget=1_000_000)
        return within, over

    within, over = few(benchmark, run, rounds=5)
    assert within.within_budget is True
    assert over.within_budget is False


def test_bounds_report(benchmark):
    once(benchmark, lambda: None)
    beas = beas_for(SCALE)
    queries = tlc_queries(dataset(SCALE).params)
    rows = []
    for query in queries:
        decision = beas.check(query.sql)
        if not decision.covered:
            rows.append((query.name, "not covered", "-", "-", "-"))
            continue
        ratio = (
            decision.access_bound / decision.tight_access_bound
            if decision.tight_access_bound
            else 1.0
        )
        rows.append(
            (
                query.name,
                ", ".join(c.name for c in decision.constraints_used),
                f"{decision.access_bound}",
                f"{decision.tight_access_bound}",
                f"{ratio:.1f}x",
            )
        )
    report = "\n".join(
        [
            "E4/A3 — deduced access bounds per TLC query "
            "(naive = the paper's arithmetic; tight = equivalence-class aware)",
            "",
            format_table(
                ("query", "constraints", "naive bound M", "tight bound", "naive/tight"),
                rows,
            ),
        ]
    )
    write_report("bounds_checker.txt", report)
