"""E10 — pooled vs in-process bounded execution under multi-client load.

PR 3's columnar executor cut single-thread compute, but N concurrent
clients of an in-process BEAS still serialise on the GIL: aggregate
throughput stays ~flat as clients are added. The engine pool
(``repro.engine.pool``) executes each client's bounded plan on a worker
*process*, so CPU-bound clients scale with cores.

This bench drives ``CLIENTS`` threads, each executing a stream of
selective fetch + GROUP-BY-aggregate queries (the bench_columnar
workload shape, distinct key batches per client so the runs are real
work, result caching off) against

* the in-process columnar executor (``parallelism=1``), and
* the engine pool at ``WORKERS = 4`` (whole-plan dispatch).

The acceptance bar asserted here: >= 2x aggregate throughput for the
pooled configuration. That bar assumes the 4 workers actually get
cores: on a host exposing fewer than ``WORKERS`` CPUs the ceiling is
roughly the CPU count minus scheduling overhead, so the assertion is
skipped (with a loud message) below that — correctness of the
comparison is still checked everywhere.

Runs under pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_parallel.py``) or standalone (``PYTHONPATH=src python
benchmarks/bench_parallel.py --quick``) — the latter is the CI smoke
(small dataset, crash + equality detection, no perf assertion).
"""

from __future__ import annotations

import os
import statistics
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # standalone invocation
    sys.path.insert(0, str(REPO_ROOT))

from repro import BEAS
from repro.bench.reporting import format_table

from benchmarks.bench_columnar import (
    DATES,
    REGIONS,
    build_event_db,
    event_access,
)
from benchmarks.conftest import once, write_report

KEYS = 240
ROWS_PER_BUCKET = 120  # -> 57 600 base rows
CLIENTS = 4
WORKERS = 4
QUERIES_PER_CLIENT = 6
KEYS_PER_QUERY = 60
TARGET_SPEEDUP = 2.0

QUICK_KEYS = 40
QUICK_ROWS_PER_BUCKET = 20
QUICK_QUERIES_PER_CLIENT = 2


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def client_queries(client: int, keys: int, queries: int) -> list[str]:
    """Distinct per-client key batches: every execute is real engine work
    (no result-cache shortcut, different constants per client)."""
    per_query = min(KEYS_PER_QUERY, keys)
    region_list = ", ".join(f"'r{i}'" for i in range(REGIONS // 2))
    sqls = []
    for q in range(queries):
        start = (client * 31 + q * 17) % keys
        key_list = ", ".join(
            f"'k{(start + i) % keys:03d}'" for i in range(per_query)
        )
        sqls.append(
            f"SELECT region, COUNT(*) AS c, SUM(amount) AS s FROM event "
            f"WHERE k IN ({key_list}) AND date = '{DATES[q % len(DATES)]}' "
            f"AND region IN ({region_list}) GROUP BY region"
        )
    return sqls


def drive_clients(beas: BEAS, workloads: list[list[str]]) -> float:
    """Run every client's query stream on its own thread; returns the
    wall-clock seconds for the whole fleet to finish."""
    barrier = threading.Barrier(len(workloads))
    errors: list[BaseException] = []

    def client(sqls: list[str]) -> None:
        try:
            barrier.wait()
            for sql in sqls:
                beas.execute(sql)
        except BaseException as error:  # noqa: BLE001 - reported below
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(sqls,)) for sqls in workloads
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def measure(
    keys: int, rows_per_bucket: int, queries_per_client: int, repeats: int
) -> dict:
    db = build_event_db(keys, rows_per_bucket)
    access = event_access(rows_per_bucket)
    inproc = BEAS(db, access, executor="columnar", parallelism=1)
    pooled = BEAS(db, access, executor="columnar", parallelism=WORKERS)

    workloads = [
        client_queries(client, keys, queries_per_client)
        for client in range(CLIENTS)
    ]
    total_queries = sum(len(w) for w in workloads)

    # correctness first: both placements answer every query identically
    for sql in workloads[0]:
        a = inproc.execute(sql)
        b = pooled.execute(sql)
        assert a.rows == b.rows, "pooled answer diverged"
        assert a.metrics.tuples_fetched == b.metrics.tuples_fetched
    # warm both (plans, statistics, worker snapshots)
    drive_clients(inproc, [w[:1] for w in workloads])
    drive_clients(pooled, [w[:1] for w in workloads])

    inproc_seconds = []
    pooled_seconds = []
    for _ in range(repeats):
        inproc_seconds.append(drive_clients(inproc, workloads))
        pooled_seconds.append(drive_clients(pooled, workloads))
    pool_stats = pooled.pool_stats()
    pooled.close()

    return {
        "base_rows": len(db.table("event")),
        "total_queries": total_queries,
        "inproc": statistics.median(inproc_seconds),
        "pooled": statistics.median(pooled_seconds),
        "pool": pool_stats,
    }


def _report(measured: dict, repeats: int) -> str:
    total = measured["total_queries"]
    inproc, pooled = measured["inproc"], measured["pooled"]
    speedup = inproc / max(pooled, 1e-9)
    rows = [
        (
            "in-process columnar",
            f"{inproc * 1000:.1f}",
            f"{total / max(inproc, 1e-9):.1f}",
            "1.00x",
        ),
        (
            f"engine pool ({WORKERS} workers)",
            f"{pooled * 1000:.1f}",
            f"{total / max(pooled, 1e-9):.1f}",
            f"{speedup:.2f}x",
        ),
    ]
    table = format_table(
        ["configuration", "fleet ms", "queries/s", "speedup"], rows
    )
    pool = measured["pool"]
    pool_line = f"\n{pool.describe()}" if pool is not None else ""
    return (
        f"E10 parallel engine pool — {measured['base_rows']} base rows, "
        f"{CLIENTS} clients x {total // CLIENTS} queries, {repeats} repeats, "
        f"{_cpus()} CPUs\n\n" + table + pool_line
    )


def run(
    keys: int = KEYS,
    rows_per_bucket: int = ROWS_PER_BUCKET,
    queries_per_client: int = QUERIES_PER_CLIENT,
    repeats: int = 3,
) -> float:
    """Measure, print, persist; returns the aggregate speedup."""
    measured = measure(keys, rows_per_bucket, queries_per_client, repeats)
    text = _report(measured, repeats)
    print(text)
    write_report("bench_parallel.txt", text)
    return measured["inproc"] / max(measured["pooled"], 1e-9)


def test_parallel_speedup(benchmark):
    if _cpus() < WORKERS:
        import pytest

        pytest.skip(
            f"host exposes {_cpus()} CPUs: the >= {TARGET_SPEEDUP}x bar "
            f"assumes the {WORKERS} workers get real cores (CI runs this "
            "on 4-vCPU runners)"
        )
    speedup = once(benchmark, run)
    assert speedup >= TARGET_SPEEDUP, (
        f"engine pool is only {speedup:.2f}x vs in-process columnar "
        f"(target {TARGET_SPEEDUP}x at {WORKERS} workers)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset, crash + equality smoke only — no perf "
        "assertion (CI)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        speedup = run(
            QUICK_KEYS, QUICK_ROWS_PER_BUCKET, QUICK_QUERIES_PER_CLIENT,
            repeats=1,
        )
        print(f"OK (quick smoke): pooled/in-process agree; speedup {speedup:.2f}x")
        return 0
    speedup = run()
    if _cpus() < WORKERS:
        print(
            f"NOTE: {_cpus()}-CPU host; measured {speedup:.2f}x, the "
            f">= {TARGET_SPEEDUP}x bar assumes {WORKERS} real cores",
            file=sys.stderr,
        )
        return 0
    if speedup < TARGET_SPEEDUP:
        print(
            f"FAIL: pooled speedup {speedup:.2f}x < {TARGET_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    print(f"OK: pooled speedup {speedup:.2f}x >= {TARGET_SPEEDUP}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
