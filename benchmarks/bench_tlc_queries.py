"""E3 — the industry-deployment claim over the 11 built-in TLC queries.

Paper §1: "BEAS outperforms commercial DBMS by orders of magnitude for
more than 90% of their queries"; §4: the TLC analytical queries "are
actually boundedly evaluable under a small access schema. In contrast,
conventional DBMS may access almost the entire database to answer these
queries."

Reproduced: 10 of the 11 TLC queries (90.9%) are covered and answered by
bounded plans that touch no base tuples; per-query speedups over the
PostgreSQL profile are reported, as is the fraction of the database each
engine touches.
"""

from __future__ import annotations

import time

from repro.bench.reporting import format_table
from repro.workloads.tlc import tlc_queries

from benchmarks.conftest import beas_for, dataset, once, write_report

SCALE = 50

_rows: list[tuple] = []
_covered = 0


def test_tlc_all_queries(benchmark):
    """Run all 11 queries on BEAS and on the PostgreSQL profile."""
    global _covered
    beas = beas_for(SCALE)
    ds = dataset(SCALE)
    host = beas.host_engine()
    host.statistics()  # offline ANALYZE
    total_rows = ds.database.total_rows()
    queries = tlc_queries(ds.params)

    def run_all():
        results = []
        for query in queries:
            t0 = time.perf_counter()
            mine = beas.execute(query.sql)
            beas_seconds = time.perf_counter() - t0
            t0 = time.perf_counter()
            theirs = host.execute(query.sql)
            host_seconds = time.perf_counter() - t0
            assert set(mine.rows) == set(theirs.rows), query.name
            results.append((query, mine, beas_seconds, theirs, host_seconds))
        return results

    results = once(benchmark, run_all)

    _rows.clear()
    _covered = 0
    for query, mine, beas_seconds, theirs, host_seconds in results:
        covered = mine.decision.covered
        _covered += covered
        accessed = mine.metrics.tuples_accessed
        _rows.append(
            (
                query.name,
                "covered" if covered else f"{mine.mode.value}",
                f"{beas_seconds * 1000:.2f} ms",
                f"{host_seconds * 1000:.2f} ms",
                f"{host_seconds / beas_seconds:.1f}x",
                f"{accessed}",
                f"{theirs.metrics.tuples_scanned}",
                f"{100.0 * accessed / total_rows:.2f}%",
            )
        )
    benchmark.extra_info["covered"] = _covered


def test_tlc_report(benchmark):
    once(benchmark, lambda: None)
    ds = dataset(SCALE)
    queries = tlc_queries(ds.params)
    coverage = _covered / len(queries)
    faster = sum(1 for row in _rows if float(row[4].rstrip("x")) > 1.0)
    report = "\n".join(
        [
            f"E3 — the 11 built-in TLC queries at scale {SCALE}, BEAS vs "
            "PostgreSQL profile",
            f"covered: {_covered}/{len(queries)} = {coverage:.1%} "
            "(paper: 'more than 90% of their queries')",
            f"database size: {ds.database.total_rows()} tuples",
            "",
            format_table(
                (
                    "query", "mode", "BEAS", "PostgreSQL", "speedup",
                    "tuples accessed (BEAS)", "tuples scanned (PG)", "DB touched",
                ),
                _rows,
            ),
        ]
    )
    write_report("tlc_queries.txt", report)

    assert coverage > 0.9, "the >90% coverage claim must reproduce"
    assert faster >= 8, f"BEAS should win on nearly all queries ({faster}/11)"
