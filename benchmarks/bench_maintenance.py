"""E7 — incremental index maintenance vs full rebuild (paper §3).

The maintenance module "incrementally updates the indices of A in
response to changes to the datasets". Reported: time to apply insert
batches of growing size incrementally vs rebuilding every affected index,
with the exactness invariant (incremental == rebuild) asserted.
"""

from __future__ import annotations

import time

from repro import AccessIndex, ASCatalog
from repro.bench.reporting import format_table
from repro.maintenance import MaintenanceManager
from repro.workloads.tlc import generate_tlc, tlc_access_schema

from benchmarks.conftest import once, write_report

SCALE = 2

_rows: list[tuple] = []


def _fresh_catalog() -> ASCatalog:
    ds = generate_tlc(scale=SCALE, seed=123)
    return ASCatalog(ds.database, tlc_access_schema())


def _batch(size: int, start: int) -> list[tuple]:
    """Conforming synthetic call rows (fresh pnums per batch index)."""
    rows = []
    for i in range(size):
        rows.append(
            (
                900_000 + start + i, f"M{start + i:07d}", f"E{i % 50:07d}",
                "2016-06-20", "east",
                "10:00", 60, 0.01, "voice", "out",
                False, False, "T0001", "4G", "normal",
                True, "PLAN00", 0.0, False, "west",
                100, 5, 0.0, "AMR", 0,
                4.0, 0.1, False, "retail", "synthetic",
            )
        )
    return rows


def _run_incremental(size: int, start: int) -> float:
    catalog = _fresh_catalog()
    manager = MaintenanceManager(catalog)
    rows = _batch(size, start)
    t0 = time.perf_counter()
    manager.insert("call", rows)
    return time.perf_counter() - t0


def _run_rebuild(size: int, start: int) -> float:
    catalog = _fresh_catalog()
    rows = _batch(size, start)
    table = catalog.database.table("call")
    t0 = time.perf_counter()
    for row in rows:
        table.insert(row)
    for constraint in catalog.constraints_for("call"):
        catalog.index_for(constraint).build(table)
    return time.perf_counter() - t0


def test_maintenance_incremental_100(benchmark):
    seconds = once(benchmark, lambda: _run_incremental(100, 0))
    _rows.append(("incremental", 100, f"{seconds * 1000:.2f} ms"))


def test_maintenance_rebuild_100(benchmark):
    seconds = once(benchmark, lambda: _run_rebuild(100, 0))
    _rows.append(("rebuild", 100, f"{seconds * 1000:.2f} ms"))


def test_maintenance_incremental_1000(benchmark):
    seconds = once(benchmark, lambda: _run_incremental(1000, 10_000))
    _rows.append(("incremental", 1000, f"{seconds * 1000:.2f} ms"))


def test_maintenance_rebuild_1000(benchmark):
    seconds = once(benchmark, lambda: _run_rebuild(1000, 10_000))
    _rows.append(("rebuild", 1000, f"{seconds * 1000:.2f} ms"))


def test_maintenance_exactness_and_report(benchmark):
    """Incremental result equals a from-scratch rebuild (the invariant)."""

    def run():
        catalog = _fresh_catalog()
        manager = MaintenanceManager(catalog)
        rows = _batch(500, 50_000)
        manager.insert("call", rows)
        manager.delete("call", rows[:250])
        table = catalog.database.table("call")
        for constraint in catalog.constraints_for("call"):
            live = catalog.index_for(constraint)
            rebuilt = AccessIndex(constraint, table)
            assert live.snapshot() == rebuilt.snapshot(), constraint.name
        return True

    assert once(benchmark, run)
    report = "\n".join(
        [
            f"E7 — incremental index maintenance vs rebuild, TLC scale {SCALE} "
            "(3 call indices affected per batch)",
            "invariant checked: incremental state == from-scratch rebuild",
            "",
            format_table(("strategy", "batch size", "time"), _rows),
        ]
    )
    write_report("maintenance.txt", report)
