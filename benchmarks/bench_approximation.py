"""E8 — resource-bounded approximation (paper §2/§3).

For a covered query under shrinking tuple budgets, BEAS returns a sound
subset of the exact answer plus a deterministic recall lower bound
computed from the access schema. Reported: answers found, guaranteed vs
true recall, and tuples fetched per budget.
"""

from __future__ import annotations

from repro.bounded.approximation import BoundedApproximator
from repro.bench.reporting import format_table
from repro.workloads.tlc import query_by_name

from benchmarks.conftest import beas_for, dataset, few, once, write_report

SCALE = 50

_rows: list[tuple] = []


def _setup():
    beas = beas_for(SCALE)
    sql = query_by_name(dataset(SCALE).params, "Q1").sql
    decision = beas.check(sql)
    exact = beas.execute(sql)
    return beas, sql, decision, set(exact.rows), exact.metrics.tuples_fetched


def test_approximation_budget_sweep(benchmark):
    beas, sql, decision, exact_rows, exact_fetched = _setup()
    approximator = BoundedApproximator(beas.catalog)
    budgets = [
        max(1, exact_fetched // 100),
        max(1, exact_fetched // 10),
        max(1, exact_fetched // 2),
        exact_fetched,
    ]

    def run():
        return [approximator.execute(decision.plan, budget=b) for b in budgets]

    results = few(benchmark, run, rounds=3)
    _rows.clear()
    for budget, result in zip(budgets, results):
        found = set(result.rows)
        assert found <= exact_rows, "approximation must be sound"
        assert result.tuples_fetched <= budget
        true_recall = len(found) / len(exact_rows) if exact_rows else 1.0
        assert true_recall >= result.recall_lower_bound - 1e-12
        _rows.append(
            (
                budget,
                f"{len(found)}/{len(exact_rows)}",
                f"{result.recall_lower_bound:.4f}",
                f"{true_recall:.4f}",
                result.tuples_fetched,
                "yes" if result.complete else "no",
            )
        )


def test_approximation_granular_sweep(benchmark):
    """An IN-list query truncates per key, giving a gradual recall curve."""
    beas = beas_for(SCALE)
    ds = dataset(SCALE)
    pnums = ", ".join(f"'P{i:07d}'" for i in range(40))
    sql = (
        f"SELECT DISTINCT recnum, region FROM call "
        f"WHERE pnum IN ({pnums}) AND date = '{ds.params.d0}'"
    )
    decision = beas.check(sql)
    assert decision.covered
    exact = set(beas.execute(sql).rows)
    approximator = BoundedApproximator(beas.catalog)

    def run():
        curve = []
        for budget in (0, 4, 8, 16, 32, 64, 1000):
            result = approximator.execute(decision.plan, budget=budget)
            found = set(result.rows)
            assert found <= exact
            true_recall = len(found) / len(exact) if exact else 1.0
            assert true_recall >= result.recall_lower_bound - 1e-12
            curve.append((budget, len(found), result.recall_lower_bound, true_recall))
        return curve

    curve = few(benchmark, run, rounds=3)
    # recall is monotone in budget and reaches 1.0
    founds = [point[1] for point in curve]
    assert founds == sorted(founds)
    assert curve[-1][3] == 1.0
    _rows.append(("-- granular sweep (40-key IN list) --", "", "", "", "", ""))
    for budget, found, guaranteed, true_recall in curve:
        _rows.append(
            (budget, f"{found}/{len(exact)}", f"{guaranteed:.4f}",
             f"{true_recall:.4f}", "-", "-")
        )


def test_full_budget_is_exact(benchmark):
    beas, sql, decision, exact_rows, exact_fetched = _setup()
    approximator = BoundedApproximator(beas.catalog)
    result = few(
        benchmark,
        lambda: approximator.execute(decision.plan, budget=exact_fetched),
        rounds=3,
    )
    assert set(result.rows) == exact_rows
    assert result.complete


def test_approximation_report(benchmark):
    once(benchmark, lambda: None)
    report = "\n".join(
        [
            f"E8 — resource-bounded approximation of Q1 at scale {SCALE}",
            "answers are a sound subset; 'guaranteed' is the deterministic "
            "recall lower bound derived from the access schema",
            "",
            format_table(
                ("budget", "answers", "guaranteed recall", "true recall",
                 "fetched", "exact"),
                _rows,
            ),
        ]
    )
    write_report("approximation.txt", report)
