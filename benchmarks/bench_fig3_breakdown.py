"""E1 — Fig. 3: performance analysis of Q (Example 2) on TLC "20 GB".

The paper's panel reports, for Q on a 20 GB TLC instance: overall execution
time (BEAS 96.13 ms), acceleration ratios over PostgreSQL / MySQL / MariaDB
(1953x / 6562x / 5135x), the total number of tuples fetched, the number of
access constraints employed (3), and a per-operation cost breakdown.

We reproduce the *shape*: BEAS orders of magnitude faster than every
comparator profile, fetching a bounded number of tuples via exactly the
three constraints ψ3, ψ2, ψ1 (see DESIGN.md §1 for the comparator
substitution). The panel is produced on the '100 GB' instance (the paper
used 20 GB) so profile separation sits well above Python timer noise;
comparator engines are pre-warmed (statistics collection = offline
ANALYZE) before timing.
"""

from __future__ import annotations

import time

from repro.bench.reporting import format_table
from repro.engine.profiles import MARIADB, MYSQL, POSTGRESQL
from repro.workloads.tlc import query_by_name

from benchmarks.conftest import beas_for, dataset, few, once, write_report

SCALE = 100  # "100 GB" (shared with the Fig. 4 sweep's cache)

_times: dict[str, float] = {}
_extra: dict[str, object] = {}


def _note(key: str, seconds: float) -> None:
    """Track the minimum over measurement rounds (noise-robust)."""
    previous = _times.get(key)
    _times[key] = seconds if previous is None else min(previous, seconds)


def _q1_sql() -> str:
    return query_by_name(dataset(SCALE).params, "Q1").sql


def test_fig3_beas(benchmark):
    beas = beas_for(SCALE)
    sql = _q1_sql()
    decision = beas.check(sql)
    assert decision.covered
    assert [c.name for c in decision.constraints_used] == ["psi3", "psi2", "psi1"]

    def run():
        t0 = time.perf_counter()
        result = beas.execute(sql)
        _note("beas", time.perf_counter() - t0)
        return result

    result = few(benchmark, run, rounds=5)
    assert result.metrics.tuples_scanned == 0
    assert result.metrics.tuples_fetched <= decision.access_bound
    _extra["fetched"] = result.metrics.tuples_fetched
    _extra["bound"] = decision.access_bound
    _extra["constraints"] = len(decision.constraints_used)
    _extra["beas_ops"] = list(result.metrics.operations)
    _extra["rows"] = set(result.rows)
    benchmark.extra_info["tuples_fetched"] = result.metrics.tuples_fetched


def _comparator(benchmark, profile):
    engine = beas_for(SCALE).host_engine(profile)
    engine.statistics()  # offline ANALYZE: not part of query time
    sql = _q1_sql()

    def run():
        t0 = time.perf_counter()
        result = engine.execute(sql)
        _note(profile.name, time.perf_counter() - t0)
        return result

    result = few(benchmark, run, rounds=3)
    assert set(result.rows) == _extra["rows"], "comparator answers differ"
    _extra[f"{profile.name}_scanned"] = result.metrics.tuples_scanned
    _extra[f"{profile.name}_ops"] = list(result.metrics.operations)


def test_fig3_postgresql(benchmark):
    _comparator(benchmark, POSTGRESQL)


def test_fig3_mysql(benchmark):
    _comparator(benchmark, MYSQL)


def test_fig3_mariadb(benchmark):
    _comparator(benchmark, MARIADB)


def test_fig3_report(benchmark):
    """Assemble the Fig.-3 panel (runs last; trivial timed body)."""
    once(benchmark, lambda: None)
    beas_seconds = _times["beas"]
    rows = [
        (
            "BEAS",
            f"{beas_seconds * 1000:.2f} ms",
            "1x",
            f"fetched {_extra['fetched']} (bound {_extra['bound']})",
        )
    ]
    for name in ("postgresql", "mysql", "mariadb"):
        seconds = _times[name]
        rows.append(
            (
                name,
                f"{seconds * 1000:.2f} ms",
                f"{seconds / beas_seconds:.0f}x slower",
                f"scanned {_extra[f'{name}_scanned']}",
            )
        )
    lines = [
        f"Fig. 3 — performance analysis of Q (Example 2), TLC scale {SCALE} "
        f"('{SCALE} GB'; the paper's panel used 20 GB)",
        f"paper: BEAS 96.13 ms; PostgreSQL/MySQL/MariaDB 1953x/6562x/5135x slower",
        f"access constraints employed: {_extra['constraints']} (psi3, psi2, psi1)",
        "",
        format_table(("engine", "time", "vs BEAS", "data accessed"), rows),
        "",
        "-- BEAS per-operation breakdown --",
    ]
    for op in _extra["beas_ops"]:
        lines.append(
            f"  {op.label}: {op.tuples_in} -> {op.tuples_out} rows, "
            f"{op.seconds * 1000:.3f} ms"
        )
    lines.append("-- PostgreSQL-profile per-operation breakdown --")
    for op in _extra["postgresql_ops"]:
        lines.append(
            f"  {op.label}: {op.tuples_in} -> {op.tuples_out} rows, "
            f"{op.seconds * 1000:.3f} ms"
        )
    report = "\n".join(lines)
    write_report("fig3_breakdown.txt", report)

    # reproduction shape: BEAS is far faster than every comparator profile,
    # and the paper's PG < MariaDB < MySQL cost ordering holds
    assert _times["postgresql"] / beas_seconds > 3
    assert _times["mariadb"] / beas_seconds > 10
    assert _times["mysql"] / beas_seconds > 10
    assert _times["postgresql"] < _times["mariadb"] < _times["mysql"]
