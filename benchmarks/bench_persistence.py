"""E11 — the persistent mmap storage engine: warm restart + snapshot wire.

Two bars, both against the in-memory baseline the engine shipped with:

* **Warm restart.** The in-memory engine rebuilds every access index
  from base rows on process start — O(|D|) before the first covered
  query can be served. The mmap engine checkpoints index buckets to
  memory-mapped segment files and replays only the WAL tail on start,
  so a restart maps the segments (lazy per-bucket decode) and serves
  the first covered query immediately. Bar asserted here (full mode):
  warm time-to-first-result >= ``TARGET_RESTART`` x faster than the
  cold build on a 1M+-row dataset, and the store reports a warm start
  (no rebuild) with identical answers.

* **Snapshot traffic.** A maintenance-heavy workload forces the engine
  pool to re-ship its index snapshot to every worker after each
  version bump. The pickle wire re-serialises the full bucket map each
  time; the mmap engine exports one shared-memory block per snapshot
  key and ships only the block *name*, so workers attach zero-copy.
  Bar asserted here (all modes): >= ``TARGET_TRAFFIC`` x fewer bytes
  shipped for the same maintenance/query interleaving, same answers.

Runs under pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_persistence.py``) or standalone (``PYTHONPATH=src
python benchmarks/bench_persistence.py --quick`` is the CI smoke:
small dataset, correctness + traffic-ratio checks, no timing bar).
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # standalone invocation
    sys.path.insert(0, str(REPO_ROOT))

from repro import BEAS
from repro.bench.reporting import format_table

from benchmarks.bench_columnar import DATES, build_event_db, event_access
from benchmarks.conftest import once, write_report

# full mode: 2500 keys x 2 dates x 200 rows -> 1_000_000 base rows
KEYS = 2500
ROWS_PER_BUCKET = 200
TARGET_RESTART = 5.0  # cold build / warm restart, time-to-first-result
TARGET_TRAFFIC = 10.0  # pickle bytes shipped / shm bytes shipped

QUICK_KEYS = 60
QUICK_ROWS_PER_BUCKET = 20

MAINTENANCE_ROUNDS = 8
POOL_WORKERS = 2


def first_query(keys: int) -> str:
    key_list = ", ".join(f"'k{ki:03d}'" for ki in range(min(keys, 40)))
    return (
        f"SELECT DISTINCT recnum, region FROM event "
        f"WHERE k IN ({key_list}) AND date = '{DATES[0]}'"
    )


# --------------------------------------------------------------------------- #
# bar 1: warm restart vs cold index build
# --------------------------------------------------------------------------- #
def measure_restart(keys: int, rows_per_bucket: int) -> dict:
    db = build_event_db(keys, rows_per_bucket)
    access = event_access(rows_per_bucket)
    sql = first_query(keys)
    directory = tempfile.mkdtemp(prefix="bench-persist-")
    try:
        # cold: build every index from base rows, checkpoint to segments
        start = time.perf_counter()
        cold = BEAS(db, access, storage="mmap", storage_dir=directory)
        cold_result = cold.execute(sql)
        cold_seconds = time.perf_counter() - start
        cold_stats = cold.storage_stats()
        assert cold_stats is not None and not cold_stats.warm_start
        cold.close()

        # warm: map the checkpointed segments, replay the (empty) WAL
        start = time.perf_counter()
        warm = BEAS(db, access, storage="mmap", storage_dir=directory)
        warm_result = warm.execute(sql)
        warm_seconds = time.perf_counter() - start
        warm_stats = warm.storage_stats()
        assert warm_stats is not None, "mmap engine reports no storage stats"
        assert warm_stats.warm_start, "second start in the same dir must be warm"
        assert warm_stats.segments_loaded >= 1
        assert warm_result.rows == cold_result.rows, "warm answer diverged"
        warm.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return {
        "base_rows": len(db.table("event")),
        "cold": cold_seconds,
        "warm": warm_seconds,
        "segments": warm_stats.segments_loaded,
    }


# --------------------------------------------------------------------------- #
# bar 2: snapshot bytes shipped, pickle wire vs shared-memory attach
# --------------------------------------------------------------------------- #
def measure_traffic(keys: int, rows_per_bucket: int) -> dict:
    """Interleave inserts with pooled queries: every round bumps the
    table version, so every query re-installs the worker snapshot."""
    access = event_access(rows_per_bucket + MAINTENANCE_ROUNDS)
    sql = first_query(keys)
    shipped: dict[str, int] = {}
    answers: dict[str, list] = {}
    directory = tempfile.mkdtemp(prefix="bench-persist-shm-")
    try:
        for label, options in (
            ("pickle wire (memory engine)", {"storage": "memory"}),
            (
                "shm attach (mmap engine)",
                {"storage": "mmap", "storage_dir": directory},
            ),
        ):
            db = build_event_db(keys, rows_per_bucket)
            beas = BEAS(db, access, parallelism=POOL_WORKERS, **options)
            rows = []
            for round_number in range(MAINTENANCE_ROUNDS):
                beas.insert(
                    "event",
                    [
                        (
                            "k000",
                            DATES[0],
                            f"mnt{round_number:06d}",
                            "r0",
                            round_number,
                        )
                    ],
                )
                result = beas.execute(sql)
                rows = result.rows
            stats = beas.pool_stats()
            assert stats is not None, "parallelism >= 2 must start the pool"
            assert stats.snapshots_sent >= MAINTENANCE_ROUNDS
            shipped[label] = stats.snapshot_bytes_shipped
            answers[label] = sorted(rows)
            if "mmap" in str(options.get("storage")):
                assert stats.shm_attaches >= MAINTENANCE_ROUNDS, (
                    f"mmap engine fell back to the pickle wire "
                    f"({stats.shm_fallbacks} fallbacks)"
                )
            beas.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    (pickle_label, shm_label) = list(shipped)
    assert answers[pickle_label] == answers[shm_label], "shm answer diverged"
    return {
        "pickle_bytes": shipped[pickle_label],
        "shm_bytes": shipped[shm_label],
        "rounds": MAINTENANCE_ROUNDS,
    }


# --------------------------------------------------------------------------- #
def _report(restart: dict, traffic: dict) -> str:
    speedup = restart["cold"] / max(restart["warm"], 1e-9)
    ratio = traffic["pickle_bytes"] / max(traffic["shm_bytes"], 1)
    restart_rows = [
        ("cold build + first query", f"{restart['cold'] * 1000:.1f}", "1.00x"),
        (
            f"warm restart ({restart['segments']} segments mapped)",
            f"{restart['warm'] * 1000:.1f}",
            f"{speedup:.2f}x",
        ),
    ]
    traffic_rows = [
        ("pickle wire (memory engine)", f"{traffic['pickle_bytes']}", "1.00x"),
        (
            "shm attach (mmap engine)",
            f"{traffic['shm_bytes']}",
            f"{ratio:.1f}x fewer",
        ),
    ]
    return (
        f"E11 persistent storage — {restart['base_rows']} base rows\n\n"
        + format_table(
            ["time to first result", "ms", "speedup"], restart_rows
        )
        + f"\n\nsnapshot traffic — {traffic['rounds']} maintenance rounds, "
        f"{POOL_WORKERS} workers\n\n"
        + format_table(
            ["snapshot wire", "bytes shipped", "ratio"], traffic_rows
        )
    )


def run(keys: int = KEYS, rows_per_bucket: int = ROWS_PER_BUCKET) -> dict:
    restart = measure_restart(keys, rows_per_bucket)
    traffic = measure_traffic(
        min(keys, QUICK_KEYS), min(rows_per_bucket, QUICK_ROWS_PER_BUCKET)
    )
    text = _report(restart, traffic)
    print(text)
    write_report("bench_persistence.txt", text)
    return {
        "restart_speedup": restart["cold"] / max(restart["warm"], 1e-9),
        "traffic_ratio": traffic["pickle_bytes"] / max(traffic["shm_bytes"], 1),
    }


def test_persistence(benchmark):
    measured = once(benchmark, run)
    assert measured["traffic_ratio"] >= TARGET_TRAFFIC, (
        f"shm wire ships only {measured['traffic_ratio']:.1f}x fewer "
        f"snapshot bytes (target {TARGET_TRAFFIC}x)"
    )
    assert measured["restart_speedup"] >= TARGET_RESTART, (
        f"warm restart is only {measured['restart_speedup']:.2f}x faster "
        f"than the cold build (target {TARGET_RESTART}x)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset: correctness + traffic-ratio smoke, no "
        "restart timing bar (CI)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        measured = run(QUICK_KEYS, QUICK_ROWS_PER_BUCKET)
        if measured["traffic_ratio"] < TARGET_TRAFFIC:
            print(
                f"FAIL: shm wire ratio {measured['traffic_ratio']:.1f}x "
                f"< {TARGET_TRAFFIC}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK (quick smoke): warm restart {measured['restart_speedup']:.2f}x, "
            f"snapshot traffic {measured['traffic_ratio']:.1f}x fewer bytes"
        )
        return 0
    measured = run()
    failed = False
    if measured["traffic_ratio"] < TARGET_TRAFFIC:
        print(
            f"FAIL: shm ratio {measured['traffic_ratio']:.1f}x < "
            f"{TARGET_TRAFFIC}x",
            file=sys.stderr,
        )
        failed = True
    if measured["restart_speedup"] < TARGET_RESTART:
        print(
            f"FAIL: warm restart {measured['restart_speedup']:.2f}x < "
            f"{TARGET_RESTART}x",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(
        f"OK: warm restart {measured['restart_speedup']:.2f}x, snapshot "
        f"traffic {measured['traffic_ratio']:.1f}x fewer bytes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
