"""E9 — sharded serving under concurrent clients vs the single lock.

The sharded ``BEASServer`` partitions locks, result-cache slices, and
maintenance by table. Measured here over a synthetic star of disjoint
tables (8 identical relations, one covered point query each):

* **pure reads** — 8 client threads, each hammering its own table's
  cached query: sharding removes the global-lock handoff from the
  steady-state read path (the GIL still serialises the compute, so this
  is an overhead comparison, not a parallelism one);
* **reads + disjoint maintenance** — 6 reader threads on 6 tables while
  2 writer threads continuously batch-insert/delete on 2 *other*
  tables. Under the single lock every reader queues behind every
  multi-millisecond maintenance batch; sharded, they never meet. This
  is the acceptance scenario: aggregate read throughput must be
  **>= 3x** the baseline;
* **maintenance stall** — one big batch lands in one table while a
  reader times reads of another: the worst observed read latency must
  not track the batch duration (no cross-table stall).

Runs under pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_concurrent_serving.py``) or standalone
(``PYTHONPATH=src python benchmarks/bench_concurrent_serving.py
[--quick]``) — the latter is the CI smoke.
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # standalone invocation
    sys.path.insert(0, str(REPO_ROOT))

from repro import (
    BEAS,
    AccessConstraint,
    AccessSchema,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
)
from repro.bench.reporting import format_table
from repro.serving import BEASServer

from benchmarks.conftest import write_report

TABLES = 8
ROWS_PER_TABLE = 1_000
KEYS = 50  # distinct k values per table -> bucket size 20 (bound 64)
CLIENTS = 8
TARGET_READ_SPEEDUP = 3.0

_WRITER_BATCH = 400


def synthetic_db() -> tuple[Database, AccessSchema]:
    """8 disjoint identical tables, each with one access constraint."""
    tables = [
        TableSchema(
            f"t{i}",
            [
                ("id", DataType.INT),
                ("k", DataType.STRING),
                ("v", DataType.STRING),
                ("grp", DataType.STRING),
            ],
            keys=[("id",)],
        )
        for i in range(TABLES)
    ]
    db = Database(DatabaseSchema(tables, name="star"), name="star")
    for i in range(TABLES):
        for row_id in range(ROWS_PER_TABLE):
            db.insert(
                f"t{i}",
                (
                    row_id,
                    f"k{row_id % KEYS:03d}",
                    f"v{row_id}",
                    f"g{row_id % 7}",
                ),
            )
    schema = AccessSchema(
        [
            AccessConstraint(
                f"t{i}", ["k"], ["v", "grp"], 64, name=f"psi_t{i}"
            )
            for i in range(TABLES)
        ],
        name="star-schema",
    )
    return db, schema


def query_for(table_index: int) -> str:
    return f"SELECT v, grp FROM t{table_index} WHERE k = 'k007'"


def make_server(sharded: bool) -> BEASServer:
    db, schema = synthetic_db()
    return BEAS(db, schema).serve(sharded=sharded)


def _warm(server: BEASServer) -> None:
    for i in range(TABLES):
        server.execute(query_for(i))
        server.execute(query_for(i))  # second sighting admits


def _run_clients(workers) -> float:
    """Start the thread targets together; returns elapsed wall seconds."""
    barrier = threading.Barrier(len(workers) + 1)
    threads = [
        threading.Thread(target=worker, args=(barrier,)) for worker in workers
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


# --------------------------------------------------------------------------- #
# scenario 1: pure disjoint reads
# --------------------------------------------------------------------------- #
def measure_pure_reads(server: BEASServer, duration: float) -> float:
    """Aggregate cached-read ops/s: one client per table."""
    _warm(server)
    counts = [0] * CLIENTS
    deadline = [0.0]

    def reader(index: int):
        def run(barrier: threading.Barrier) -> None:
            query = query_for(index % TABLES)
            barrier.wait()
            while time.perf_counter() < deadline[0]:
                server.execute(query)
                counts[index] += 1

        return run

    barrier = threading.Barrier(CLIENTS + 1)
    threads = [
        threading.Thread(target=reader(i), args=(barrier,))
        for i in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    deadline[0] = time.perf_counter() + duration + 60  # armed below
    barrier.wait()
    deadline[0] = time.perf_counter() + duration
    for thread in threads:
        thread.join()
    return sum(counts) / duration


# --------------------------------------------------------------------------- #
# scenario 2: disjoint reads + disjoint maintenance (the acceptance bar)
# --------------------------------------------------------------------------- #
def measure_reads_under_maintenance(
    server: BEASServer, duration: float
) -> float:
    """Aggregate read ops/s: 6 readers on t0..t5, 2 writers on t6/t7."""
    _warm(server)
    reader_count = CLIENTS - 2
    counts = [0] * reader_count
    deadline = [0.0]

    def reader(index: int):
        def run(barrier: threading.Barrier) -> None:
            query = query_for(index)  # tables t0..t5: never written
            barrier.wait()
            while time.perf_counter() < deadline[0]:
                server.execute(query)
                counts[index] += 1

        return run

    def writer(table_index: int, lane: int):
        def run(barrier: threading.Barrier) -> None:
            table = f"t{table_index}"
            barrier.wait()
            batch_id = 0
            while time.perf_counter() < deadline[0]:
                rows = [
                    (
                        1_000_000 + lane * 100_000 + batch_id * 1_000 + i,
                        f"w{lane}-{batch_id}-{i}",  # fresh keys: bucket of 1
                        "vw",
                        "gw",
                    )
                    for i in range(_WRITER_BATCH)
                ]
                server.insert(table, rows)
                server.delete(table, rows)
                batch_id += 1

        return run

    workers = [reader(i) for i in range(reader_count)] + [
        writer(TABLES - 2, 0),
        writer(TABLES - 1, 1),
    ]
    barrier = threading.Barrier(len(workers) + 1)
    threads = [
        threading.Thread(target=worker, args=(barrier,)) for worker in workers
    ]
    for thread in threads:
        thread.start()
    deadline[0] = time.perf_counter() + duration + 60
    barrier.wait()
    deadline[0] = time.perf_counter() + duration
    for thread in threads:
        thread.join()
    return sum(counts) / duration


# --------------------------------------------------------------------------- #
# scenario 3: one big batch must not stall reads of another table
# --------------------------------------------------------------------------- #
def measure_maintenance_stall(
    server: BEASServer, batch_rows: int
) -> tuple[float, float]:
    """(batch seconds, worst concurrent read seconds of another table)."""
    _warm(server)
    rows = [
        (2_000_000 + i, f"s-{i}", "vs", "gs") for i in range(batch_rows)
    ]
    batch_seconds = [0.0]
    started = threading.Event()

    def maintain() -> None:
        started.set()
        start = time.perf_counter()
        server.insert(f"t{TABLES - 1}", rows)
        batch_seconds[0] = time.perf_counter() - start

    writer = threading.Thread(target=maintain)
    latencies: list[float] = []
    writer.start()
    started.wait()
    while writer.is_alive():
        start = time.perf_counter()
        server.execute(query_for(0))
        latencies.append(time.perf_counter() - start)
    writer.join()
    server.delete(f"t{TABLES - 1}", rows)
    return batch_seconds[0], max(latencies) if latencies else 0.0


# --------------------------------------------------------------------------- #
def run(duration: float = 2.0, stall_rows: int = 20_000) -> tuple[float, bool]:
    """Measure, print, persist; returns (scenario-2 read speedup,
    sharded stall bounded?)."""
    measured: dict[str, dict[str, float]] = {}
    for label, sharded in (("single-lock", False), ("sharded", True)):
        server = make_server(sharded)
        pure = measure_pure_reads(server, duration)
        mixed = measure_reads_under_maintenance(server, duration)
        batch_s, worst_read_s = measure_maintenance_stall(server, stall_rows)
        measured[label] = {
            "pure": pure,
            "mixed": mixed,
            "batch_s": batch_s,
            "worst_read_s": worst_read_s,
        }

    base, shard = measured["single-lock"], measured["sharded"]
    pure_speedup = shard["pure"] / max(base["pure"], 1e-9)
    mixed_speedup = shard["mixed"] / max(base["mixed"], 1e-9)
    rows = [
        (
            "pure disjoint reads (8 threads)",
            f"{base['pure']:,.0f}",
            f"{shard['pure']:,.0f}",
            f"{pure_speedup:.1f}x",
        ),
        (
            "reads + disjoint maintenance (6r+2w)",
            f"{base['mixed']:,.0f}",
            f"{shard['mixed']:,.0f}",
            f"{mixed_speedup:.1f}x",
        ),
        (
            "worst cross-table read stall",
            f"{base['worst_read_s'] * 1000:.1f} ms "
            f"(batch {base['batch_s'] * 1000:.0f} ms)",
            f"{shard['worst_read_s'] * 1000:.1f} ms "
            f"(batch {shard['batch_s'] * 1000:.0f} ms)",
            "-",
        ),
    ]
    text = (
        f"E9 concurrent serving — {TABLES} disjoint tables x "
        f"{ROWS_PER_TABLE} rows, {CLIENTS} client threads, "
        f"{duration:.1f}s per scenario\n\n"
        + format_table(
            ["scenario", "single-lock ops/s", "sharded ops/s", "speedup"],
            rows,
        )
    )
    print(text)
    write_report("bench_concurrent_serving.txt", text)
    stall_ok = _stall_is_bounded(shard["batch_s"], shard["worst_read_s"])
    return mixed_speedup, stall_ok


def _stall_is_bounded(measured_batch: float, worst_read: float) -> bool:
    return worst_read < max(0.05, measured_batch / 4)


def check(duration: float, stall_rows: int) -> int:
    mixed_speedup, stall_ok = run(duration, stall_rows)
    if mixed_speedup < TARGET_READ_SPEEDUP:
        print(
            f"FAIL: read throughput under disjoint maintenance only "
            f"{mixed_speedup:.1f}x vs single lock "
            f"(target {TARGET_READ_SPEEDUP}x)",
            file=sys.stderr,
        )
        return 1
    if not stall_ok:
        print(
            "FAIL: sharded reads still stall behind maintenance on "
            "another table",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: {mixed_speedup:.1f}x aggregate read throughput vs the "
        f"single-lock baseline (target {TARGET_READ_SPEEDUP}x); "
        f"cross-table stall bounded"
    )
    return 0


def test_concurrent_read_speedup(benchmark):
    from benchmarks.conftest import once

    speedup, _ = once(benchmark, lambda: run(duration=1.5))
    assert speedup >= TARGET_READ_SPEEDUP, (
        f"sharded read throughput under disjoint maintenance is only "
        f"{speedup:.1f}x the single-lock baseline "
        f"(target {TARGET_READ_SPEEDUP}x)"
    )


def test_maintenance_does_not_stall_sharded_reads():
    server = make_server(sharded=True)
    batch_s, worst_read_s = measure_maintenance_stall(server, 20_000)
    assert _stall_is_bounded(batch_s, worst_read_s), (
        f"a read of t0 stalled {worst_read_s * 1000:.1f} ms behind a "
        f"{batch_s * 1000:.0f} ms batch on t{TABLES - 1}"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter scenarios, smaller stall batch (the CI smoke)",
    )
    args = parser.parse_args(argv)
    duration = 0.8 if args.quick else 2.0
    stall_rows = 8_000 if args.quick else 20_000
    return check(duration, stall_rows)


if __name__ == "__main__":
    sys.exit(main())
