"""Subsumption-based result reuse: the sliding-window dashboard win.

Dashboard workloads re-ask the same template with progressively
narrower windows: one broad warm-up per panel, then many contained
refinements, plus occasional exact repeats. Exact result caching only
helps the repeats; ``result_reuse="subsume"`` answers every contained
refinement by re-filtering the cached broad superset
(:mod:`repro.bounded.subsume`) without touching the engine.

Reported over ``DASHBOARDS`` panels x ``WINDOWS`` contained windows
(+2 exact repeats each):

* effective hit rate — (result-cache hits + subsumed hits) / queries,
  for ``exact`` vs ``subsume`` reuse over the identical stream;
* narrow-window latency — subsumed service vs full bounded
  re-execution of the same statements.

Acceptance bars asserted here: the subsume-mode effective hit rate is
at least 3x the exact-mode rate, and subsumed service is at least 2x
faster than re-execution (total over the narrow-window stream).

Runs under pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_subsume.py``) or standalone (``PYTHONPATH=src python
benchmarks/bench_subsume.py --quick``) — the latter is the CI smoke.
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # standalone invocation
    sys.path.insert(0, str(REPO_ROOT))

from repro import (
    AccessConstraint,
    AccessSchema,
    Database,
    DatabaseSchema,
    DataType,
    Session,
    TableSchema,
)
from repro.bench.reporting import format_table

from benchmarks.conftest import once, write_report

DASHBOARDS = 12
WINDOWS = 10
ROWS_PER_DASHBOARD = 800
HIT_RATE_TARGET = 3.0
LATENCY_TARGET = 2.0

REGIONS = ("north", "south", "east", "west", "plains")


def build_database(dashboards: int) -> Database:
    schema = DatabaseSchema(
        [
            TableSchema(
                "events",
                [
                    ("event_id", DataType.INT),
                    ("pnum", DataType.STRING),
                    ("day", DataType.INT),
                    ("region", DataType.STRING),
                    ("score", DataType.INT),
                ],
                keys=[("event_id",)],
            )
        ],
        name="bench-subsume",
    )
    db = Database(schema)
    rng = random.Random(17)
    event_id = 0
    for p in range(dashboards):
        for _ in range(ROWS_PER_DASHBOARD):
            event_id += 1
            db.insert(
                "events",
                (
                    event_id,
                    f"p{p}",
                    rng.randrange(0, 365),
                    rng.choice(REGIONS),
                    rng.randrange(0, 100),
                ),
            )
    return db


def access_schema() -> AccessSchema:
    return AccessSchema(
        [
            AccessConstraint(
                "events",
                ["pnum"],
                ["event_id", "day", "region", "score"],
                2 * ROWS_PER_DASHBOARD,
                name="psi_dash",
            )
        ],
        name="A-dash",
    )


def _sql(dashboard: int, lo: int, hi: int) -> str:
    return (
        "SELECT event_id, day, region, score FROM events "
        f"WHERE pnum = 'p{dashboard}' AND day >= {lo} AND day <= {hi}"
    )


def _windows(windows: int) -> list[tuple[int, int]]:
    """Contained refinements of the broad [0, 364] window."""
    step = 300 // windows
    return [(1 + i * step, 1 + i * step + 60) for i in range(windows)]


def _session(db: Database) -> Session:
    return Session(
        db, access_schema(), server_options={"result_admission": "always"}
    )


def measure(dashboards: int, windows: int) -> dict[str, float]:
    database = build_database(dashboards)
    contained = _windows(windows)
    broad = [_sql(d, 0, 364) for d in range(dashboards)]
    narrow = [
        _sql(d, lo, hi) for d in range(dashboards) for lo, hi in contained
    ]
    total_queries = dashboards * (1 + windows + 2)

    def replay(session: Session, reuse: str) -> float:
        """Run the stream; return seconds spent on the narrow windows."""
        for sql in broad:
            session.run(sql, result_reuse=reuse)
        start = time.perf_counter()
        for sql in narrow:
            session.run(sql, result_reuse=reuse)
        elapsed = time.perf_counter() - start
        for sql in broad:  # two exact repeats per dashboard
            session.run(sql, result_reuse=reuse)
            session.run(sql, result_reuse=reuse)
        return elapsed

    # --- exact reuse: only the literal repeats hit -------------------------
    with _session(database) as session:
        replay(session, "exact")
        exact_stats = session.stats()
        exact_hits = exact_stats.result.hits
        assert exact_stats.subsumed_hits == 0

    # --- subsumption: every contained window is a hit ----------------------
    with _session(database) as session:
        subsumed_seconds = replay(session, "subsume")
        stats = session.stats()
        # the headline mechanic: every narrow window answered by refilter
        assert stats.subsumed_hits == len(narrow), stats.subsumed_hits
        subsume_hits = stats.result.hits + stats.subsumed_hits

    # --- re-execution oracle: the same narrow windows, no caches ----------
    with _session(database) as session:
        start = time.perf_counter()
        for sql in narrow:
            session.run(sql, result_reuse="exact", use_result_cache=False)
        reexec_seconds = time.perf_counter() - start

    return {
        "exact_rate": exact_hits / total_queries,
        "subsume_rate": subsume_hits / total_queries,
        "subsumed_seconds": subsumed_seconds,
        "reexec_seconds": reexec_seconds,
        "narrow_count": len(narrow),
    }


def _report(m: dict[str, float], dashboards: int, windows: int) -> str:
    rate_gain = m["subsume_rate"] / max(m["exact_rate"], 1e-9)
    latency_gain = m["reexec_seconds"] / max(m["subsumed_seconds"], 1e-9)
    per_narrow_us = m["subsumed_seconds"] / m["narrow_count"] * 1e6
    per_reexec_us = m["reexec_seconds"] / m["narrow_count"] * 1e6
    table = format_table(
        ["result_reuse", "effective hit rate", "narrow window µs", "vs"],
        [
            (
                "exact",
                f"{m['exact_rate'] * 100:.1f}%",
                f"{per_reexec_us:.1f}",
                "1.0x",
            ),
            (
                "subsume",
                f"{m['subsume_rate'] * 100:.1f}%",
                f"{per_narrow_us:.1f}",
                f"{rate_gain:.1f}x rate, {latency_gain:.1f}x faster",
            ),
        ],
    )
    return (
        f"subsumption reuse — {dashboards} dashboards, {windows} contained "
        f"windows + 2 repeats each\n\n" + table
    )


def run(
    dashboards: int = DASHBOARDS, windows: int = WINDOWS
) -> tuple[float, float]:
    measured = measure(dashboards, windows)
    text = _report(measured, dashboards, windows)
    print(text)
    write_report("bench_subsume.txt", text)
    rate_gain = measured["subsume_rate"] / max(measured["exact_rate"], 1e-9)
    latency_gain = measured["reexec_seconds"] / max(
        measured["subsumed_seconds"], 1e-9
    )
    return rate_gain, latency_gain


def test_subsume_hit_rate_and_latency(benchmark):
    rate_gain, latency_gain = once(benchmark, run)
    assert rate_gain >= HIT_RATE_TARGET, (
        f"subsume effective hit rate only {rate_gain:.1f}x exact "
        f"(target {HIT_RATE_TARGET}x)"
    )
    assert latency_gain >= LATENCY_TARGET, (
        f"subsumed service only {latency_gain:.1f}x vs re-execution "
        f"(target {LATENCY_TARGET}x)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer dashboards/windows (the CI smoke); both bars still apply",
    )
    args = parser.parse_args(argv)
    dashboards = 4 if args.quick else DASHBOARDS
    windows = 6 if args.quick else WINDOWS
    rate_gain, latency_gain = run(dashboards, windows)
    failed = False
    if rate_gain < HIT_RATE_TARGET:
        print(
            f"FAIL: hit-rate gain {rate_gain:.1f}x < {HIT_RATE_TARGET}x",
            file=sys.stderr,
        )
        failed = True
    if latency_gain < LATENCY_TARGET:
        print(
            f"FAIL: subsumed latency gain {latency_gain:.1f}x < "
            f"{LATENCY_TARGET}x",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(
        f"OK: effective hit rate {rate_gain:.1f}x >= {HIT_RATE_TARGET}x, "
        f"subsumed service {latency_gain:.1f}x >= {LATENCY_TARGET}x vs "
        "re-execution"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
