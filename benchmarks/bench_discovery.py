"""E6 — access schema discovery (AS Catalog, Fig. 2(D)/(E)).

Input: the TLC dataset, the 11-query workload, an objective, and a
storage limit. Output: a registered access schema. Reported: workload
coverage and storage use across budgets and objectives, plus discovery
latency. The discovered schema must actually cover the queries (verified
by the BE Checker, not a proxy) and conform to the data.
"""

from __future__ import annotations

from repro.access.conformance import check_database
from repro.bench.reporting import format_table
from repro.discovery import DiscoveryObjective, discover
from repro.workloads.tlc import tlc_queries

from benchmarks.conftest import dataset, once, write_report

SCALE = 2

_rows: list[tuple] = []


def _workload():
    ds = dataset(SCALE)
    return ds, [q.sql for q in tlc_queries(ds.params)]


def test_discover_unlimited(benchmark):
    ds, workload = _workload()
    result = once(benchmark, lambda: discover(ds.database, workload, slack=1.5))
    # 10 of the 11 queries are coverable at all; discovery must find them
    assert len(result.covered_queries) == 10
    assert check_database(ds.database, result.schema).conforms
    _rows.append(
        (
            "coverage", "unlimited", len(result.selected),
            f"{len(result.covered_queries)}/11", result.storage_used,
        )
    )


def test_discover_half_budget(benchmark):
    ds, workload = _workload()
    unlimited = discover(ds.database, workload, slack=1.5)
    budget = unlimited.storage_used // 2

    result = once(
        benchmark,
        lambda: discover(ds.database, workload, storage_budget=budget, slack=1.5),
    )
    assert result.storage_used <= budget
    _rows.append(
        (
            "coverage", f"{budget} cells", len(result.selected),
            f"{len(result.covered_queries)}/11", result.storage_used,
        )
    )


def test_discover_per_storage_objective(benchmark):
    ds, workload = _workload()
    result = once(
        benchmark,
        lambda: discover(
            ds.database,
            workload,
            objective=DiscoveryObjective.COVERAGE_PER_STORAGE,
            slack=1.5,
        ),
    )
    assert len(result.covered_queries) == 10
    _rows.append(
        (
            "coverage/storage", "unlimited", len(result.selected),
            f"{len(result.covered_queries)}/11", result.storage_used,
        )
    )


def test_discover_min_bound_objective(benchmark):
    ds, workload = _workload()
    result = once(
        benchmark,
        lambda: discover(
            ds.database,
            workload,
            objective=DiscoveryObjective.MIN_BOUND,
            slack=1.5,
        ),
    )
    assert len(result.covered_queries) == 10
    _rows.append(
        (
            "min-bound", "unlimited", len(result.selected),
            f"{len(result.covered_queries)}/11", result.storage_used,
        )
    )


def test_discovery_report(benchmark):
    once(benchmark, lambda: None)
    report = "\n".join(
        [
            f"E6 — access schema discovery on TLC scale {SCALE}, 11-query workload",
            "(the discovered schemas conform to the data and the coverage is "
            "verified by the BE Checker)",
            "",
            format_table(
                ("objective", "storage budget", "constraints", "queries covered",
                 "storage used"),
                _rows,
            ),
        ]
    )
    write_report("discovery.txt", report)
