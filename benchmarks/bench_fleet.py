"""E11 — fleet-served vs single-process bounded reads under multi-client load.

PR 9's engine pool scales *one* query's bounded work across worker
processes; the serving fleet (``repro.distributed``) scales *many
clients'* reads instead: each covered bounded query is dispatched whole
to the socket-connected replica that holds its constraint's indices, so
N clients whose templates route to N different replicas compute in N
processes at once while the coordinator thread only pickles frames.

This bench builds four identically-shaped event tables, each governed by
its own access constraint, so round-robin placement homes each
constraint on a distinct replica and four client threads (one table
each, distinct key batches per query, the bench_columnar workload shape)
exercise the whole fleet. It drives the same workload against

* a single-process columnar BEAS (``replicas=1``), and
* a four-replica fleet (``replicas=4``) of the same engine.

The acceptance bar asserted here: >= 2x aggregate read throughput for
the fleet configuration on hosts exposing at least ``MIN_CPUS`` CPUs —
below that the replicas time-slice one core and the bar is skipped (with
a loud message); answer equality against the single-process oracle is
still checked everywhere, as is the four-way placement itself.

Runs under pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_fleet.py``) or standalone (``PYTHONPATH=src python
benchmarks/bench_fleet.py --quick``) — the latter is the CI smoke
(small dataset, crash + equality + placement detection, no perf
assertion).
"""

from __future__ import annotations

import itertools
import os
import random
import statistics
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # standalone invocation
    sys.path.insert(0, str(REPO_ROOT))

from repro import (
    AccessConstraint,
    AccessSchema,
    BEAS,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
)
from repro.bench.reporting import format_table

from benchmarks.conftest import once, write_report

DATES = ("2016-06-01", "2016-06-02")
REGIONS = 8
TABLES = 4  # one constraint per table -> one replica per client
KEYS = 240
ROWS_PER_BUCKET = 120  # -> 57 600 base rows per table
CLIENTS = TABLES
REPLICAS = 4
QUERIES_PER_CLIENT = 6
KEYS_PER_QUERY = 60
TARGET_SPEEDUP = 2.0
MIN_CPUS = 2

QUICK_KEYS = 40
QUICK_ROWS_PER_BUCKET = 20
QUICK_QUERIES_PER_CLIENT = 2

_PORTS = itertools.count(8700, 16)


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_fleet_db(keys: int, rows_per_bucket: int) -> Database:
    """``TABLES`` synthetic event tables, identically shaped.

    Each table conforms to its own (k, date) constraint, so the fleet's
    round-robin placement homes every table's indices on a different
    replica and the per-table client workloads route four ways.
    """
    rng = random.Random(90_126)
    schema = DatabaseSchema(
        [
            TableSchema(
                f"event{t}",
                [
                    ("k", DataType.STRING),
                    ("date", DataType.STRING),
                    ("recnum", DataType.STRING),
                    ("region", DataType.STRING),
                    ("amount", DataType.INT),
                ],
                keys=[("recnum",)],
            )
            for t in range(TABLES)
        ]
    )
    db = Database(schema)
    for t in range(TABLES):
        rows = []
        n = 0
        for ki in range(keys):
            for date in DATES:
                for _ in range(rows_per_bucket):
                    rows.append(
                        (
                            f"k{ki:03d}",
                            date,
                            f"rec{t}-{n}",
                            f"r{rng.randrange(REGIONS)}",
                            rng.randrange(1000),
                        )
                    )
                    n += 1
        table = db.table(f"event{t}")
        table.rows = rows  # bulk load: per-row insert() would dominate setup
        table.version = 1
    return db


def fleet_access(rows_per_bucket: int) -> AccessSchema:
    return AccessSchema(
        [
            AccessConstraint(
                f"event{t}",
                ["k", "date"],
                ["recnum", "region", "amount"],
                rows_per_bucket + 50,
                name=f"by_key{t}",
            )
            for t in range(TABLES)
        ]
    )


def client_queries(client: int, keys: int, queries: int) -> list[str]:
    """Distinct per-client key batches over the client's own table."""
    per_query = min(KEYS_PER_QUERY, keys)
    region_list = ", ".join(f"'r{i}'" for i in range(REGIONS // 2))
    sqls = []
    for q in range(queries):
        start = (client * 31 + q * 17) % keys
        key_list = ", ".join(
            f"'k{(start + i) % keys:03d}'" for i in range(per_query)
        )
        sqls.append(
            f"SELECT region, COUNT(*) AS c, SUM(amount) AS s "
            f"FROM event{client} "
            f"WHERE k IN ({key_list}) AND date = '{DATES[q % len(DATES)]}' "
            f"AND region IN ({region_list}) GROUP BY region"
        )
    return sqls


def drive_clients(beas: BEAS, workloads: list[list[str]]) -> float:
    """Run every client's query stream on its own thread; returns the
    wall-clock seconds for the whole herd to finish."""
    barrier = threading.Barrier(len(workloads))
    errors: list[BaseException] = []

    def client(sqls: list[str]) -> None:
        try:
            barrier.wait()
            for sql in sqls:
                beas.execute(sql)
        except BaseException as error:  # noqa: BLE001 - reported below
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(sqls,)) for sqls in workloads
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def measure(
    keys: int, rows_per_bucket: int, queries_per_client: int, repeats: int
) -> dict:
    db = build_fleet_db(keys, rows_per_bucket)
    access = fleet_access(rows_per_bucket)
    single = BEAS(db, access, executor="columnar")
    fleet = BEAS(
        db,
        access,
        executor="columnar",
        replicas=REPLICAS,
        fleet_port_base=next(_PORTS),
    )

    workloads = [
        client_queries(client, keys, queries_per_client)
        for client in range(CLIENTS)
    ]
    total_queries = sum(len(w) for w in workloads)

    # correctness + placement first: every client's template answers
    # identically on both configurations, is served over the wire, and
    # the four templates land on four distinct replicas (this warms the
    # fleet in the main thread, before any client thread exists)
    homes = set()
    for client, sqls in enumerate(workloads):
        a = single.execute(sqls[0])
        b = fleet.execute(sqls[0])
        assert a.rows == b.rows, f"fleet answer diverged (client {client})"
        assert a.metrics.tuples_fetched == b.metrics.tuples_fetched
        assert b.metrics.replica_id >= 0, (
            f"client {client} was not served over the wire"
        )
        homes.add(b.metrics.replica_id)
    assert len(homes) == min(CLIENTS, REPLICAS), (
        f"constraints placed on {len(homes)} replicas, not {REPLICAS}"
    )
    # warm the rest of both plan caches
    drive_clients(single, [w[:1] for w in workloads])
    drive_clients(fleet, [w[:1] for w in workloads])

    single_seconds = []
    fleet_seconds = []
    for _ in range(repeats):
        single_seconds.append(drive_clients(single, workloads))
        fleet_seconds.append(drive_clients(fleet, workloads))
    fleet_stats = fleet.fleet_stats()
    fleet.close()

    return {
        "base_rows": sum(len(db.table(f"event{t}")) for t in range(TABLES)),
        "total_queries": total_queries,
        "single": statistics.median(single_seconds),
        "fleet": statistics.median(fleet_seconds),
        "stats": fleet_stats,
    }


def _report(measured: dict, repeats: int) -> str:
    total = measured["total_queries"]
    single, fleet = measured["single"], measured["fleet"]
    speedup = single / max(fleet, 1e-9)
    rows = [
        (
            "single-process columnar",
            f"{single * 1000:.1f}",
            f"{total / max(single, 1e-9):.1f}",
            "1.00x",
        ),
        (
            f"serving fleet ({REPLICAS} replicas)",
            f"{fleet * 1000:.1f}",
            f"{total / max(fleet, 1e-9):.1f}",
            f"{speedup:.2f}x",
        ),
    ]
    table = format_table(
        ["configuration", "herd ms", "queries/s", "speedup"], rows
    )
    stats = measured["stats"]
    stats_line = f"\n{stats.describe()}" if stats is not None else ""
    return (
        f"E11 distributed serving fleet — {measured['base_rows']} base rows "
        f"over {TABLES} tables, {CLIENTS} clients x {total // CLIENTS} "
        f"queries, {repeats} repeats, {_cpus()} CPUs\n\n" + table + stats_line
    )


def run(
    keys: int = KEYS,
    rows_per_bucket: int = ROWS_PER_BUCKET,
    queries_per_client: int = QUERIES_PER_CLIENT,
    repeats: int = 3,
) -> float:
    """Measure, print, persist; returns the aggregate speedup."""
    measured = measure(keys, rows_per_bucket, queries_per_client, repeats)
    text = _report(measured, repeats)
    print(text)
    write_report("bench_fleet.txt", text)
    return measured["single"] / max(measured["fleet"], 1e-9)


def test_fleet_throughput(benchmark):
    if _cpus() < MIN_CPUS:
        import pytest

        pytest.skip(
            f"host exposes {_cpus()} CPUs: the >= {TARGET_SPEEDUP}x bar "
            f"assumes the {REPLICAS} replicas share at least {MIN_CPUS} "
            "real cores (CI runs this on 4-vCPU runners)"
        )
    speedup = once(benchmark, run)
    assert speedup >= TARGET_SPEEDUP, (
        f"serving fleet is only {speedup:.2f}x vs single-process columnar "
        f"(target {TARGET_SPEEDUP}x at {REPLICAS} replicas)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset, crash + equality + placement smoke only — "
        "no perf assertion (CI)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        speedup = run(
            QUICK_KEYS, QUICK_ROWS_PER_BUCKET, QUICK_QUERIES_PER_CLIENT,
            repeats=1,
        )
        print(
            f"OK (quick smoke): fleet/single-process agree; "
            f"speedup {speedup:.2f}x"
        )
        return 0
    speedup = run()
    if _cpus() < MIN_CPUS:
        print(
            f"NOTE: {_cpus()}-CPU host; measured {speedup:.2f}x, the "
            f">= {TARGET_SPEEDUP}x bar assumes >= {MIN_CPUS} real cores",
            file=sys.stderr,
        )
        return 0
    if speedup < TARGET_SPEEDUP:
        print(
            f"FAIL: fleet speedup {speedup:.2f}x < {TARGET_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    print(f"OK: fleet speedup {speedup:.2f}x >= {TARGET_SPEEDUP}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
