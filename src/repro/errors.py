"""Exception hierarchy for the BEAS reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. Sub-hierarchies mirror the subsystems:
SQL frontend, catalog/storage, access schema, and the bounded-evaluation
core.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # import only for annotations: errors must stay leaf-level
    from repro.access.conformance import Violation


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SQLError(ReproError):
    """Base class for SQL frontend errors."""


class LexerError(SQLError):
    """Raised when the lexer encounters an invalid character or literal."""

    def __init__(self, message: str, position: int, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SQLError):
    """Raised when the parser cannot derive a statement from the tokens."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class NormalizationError(SQLError):
    """Raised when a query cannot be brought into canonical SPJA form."""


class CatalogError(ReproError):
    """Base class for schema/catalog errors."""


class UnknownTableError(CatalogError):
    """Raised when a referenced table does not exist."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table: {table!r}")
        self.table = table


class UnknownColumnError(CatalogError):
    """Raised when a referenced column does not exist."""

    def __init__(self, column: str, table: Optional[str] = None) -> None:
        where = f" in table {table!r}" if table else ""
        super().__init__(f"unknown column: {column!r}{where}")
        self.column = column
        self.table = table


class AmbiguousColumnError(CatalogError):
    """Raised when an unqualified column name matches several tables."""

    def __init__(self, column: str, tables: Sequence[str]) -> None:
        super().__init__(
            f"ambiguous column {column!r}: present in {', '.join(sorted(tables))}"
        )
        self.column = column
        self.tables = list(tables)


class TypeMismatchError(CatalogError):
    """Raised when a value does not match the declared column type."""


class StorageError(ReproError):
    """Base class for storage-layer errors."""


class AccessSchemaError(ReproError):
    """Base class for access-schema errors."""


class ConformanceError(AccessSchemaError):
    """Raised when a dataset violates an access constraint."""

    def __init__(
        self, message: str, violations: Optional[Sequence["Violation"]] = None
    ) -> None:
        super().__init__(message)
        self.violations: list["Violation"] = list(violations or [])


class BEASError(ReproError):
    """Invalid BEAS configuration.

    Raised at construction time for bad engine options — an unknown
    ``executor`` mode, a non-integer or non-positive
    ``rows_per_batch``/``parallelism``, a malformed ``BEAS_*``
    environment override (see :mod:`repro.config`), an unknown pool
    dispatch strategy, or an inconsistent
    :class:`~repro.beas.session.ExecutionOptions` layer — so
    misconfiguration fails with a clear message instead of a downstream
    execution error.
    """


class BEASDeprecationWarning(DeprecationWarning):
    """A deprecated entry point of the pre-Session public API was used.

    The ``Session`` / ``Query`` / ``Decision`` / ``Result`` lifecycle
    (``repro.beas.session``) replaces the divergent ``BEAS.execute`` /
    ``execute_decided`` / ``prepare`` / ``serve`` / ``serve_async``
    paths; the old names remain as thin shims delegating to the new
    model. See ``docs/api.md`` for the migration table.
    """


class ExecutionError(ReproError):
    """Raised when a physical plan fails during execution."""


class PlanningError(ReproError):
    """Raised when no executable plan can be produced for a query."""


class NotCoveredError(PlanningError):
    """Raised when a query is required to be covered but is not.

    ``reasons`` carries human-readable explanations of why the coverage
    check failed (one entry per uncovered occurrence or attribute).
    """

    def __init__(self, message: str, reasons: Optional[Sequence[str]] = None) -> None:
        super().__init__(message)
        self.reasons = list(reasons or [])


class BudgetExceededError(PlanningError):
    """Raised when the deduced access bound exceeds the user's budget."""

    def __init__(self, bound: int, budget: int) -> None:
        super().__init__(
            f"deduced access bound {bound} exceeds the budget of {budget} tuples"
        )
        self.bound = bound
        self.budget = budget


class DiscoveryError(ReproError):
    """Base class for access-schema discovery errors."""


class MaintenanceError(ReproError):
    """Base class for incremental-maintenance errors."""


class ServingError(ReproError):
    """Base class for prepared-query serving errors (repro.serving)."""


class UnknownParameterError(ServingError):
    """A bind override names a slot the prepared template does not have."""

    def __init__(self, name: str, known: Sequence[str]) -> None:
        super().__init__(
            f"unknown parameter {name!r}; template slots: "
            f"{', '.join(known) or '(none)'}"
        )
        self.name = name
        self.known = list(known)
