"""Benchmark workloads (S10)."""
