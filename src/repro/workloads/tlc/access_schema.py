"""The TLC access schema ``A0``.

ψ1–ψ3 are the paper's Example 1, with the same attributes and the same
bounds (500, 12, 2000). ψ5–ψ10 extend the schema so the remaining
built-in analytical queries are covered — the demo's point that "these
analytical queries are actually boundedly evaluable under a *small*
access schema" (9 constraints for 11 queries).
"""

from __future__ import annotations

from repro.access.constraint import AccessConstraint
from repro.access.schema import AccessSchema


def tlc_access_schema() -> AccessSchema:
    """Build ``A0`` (fresh constraint objects on every call)."""
    return AccessSchema(
        [
            # --- Example 1 of the paper, verbatim ---
            AccessConstraint(
                "call", ["pnum", "date"], ["recnum", "region"], 500, name="psi1"
            ),
            AccessConstraint(
                "package", ["pnum", "year"], ["pid", "start", "end"], 12,
                name="psi2",
            ),
            AccessConstraint(
                "business", ["type", "region"], ["pnum"], 2000, name="psi3"
            ),
            # --- supporting constraints for the other built-in queries ---
            AccessConstraint(
                "call", ["recnum", "date"], ["pnum", "region"], 300, name="psi5"
            ),
            AccessConstraint(
                "call",
                ["pnum", "date"],
                ["call_id", "recnum", "region", "duration_sec", "cost"],
                500,
                name="psi6",
            ),
            AccessConstraint(
                "package", ["pid", "year"], ["pnum", "start", "end"], 5000,
                name="psi7",
            ),
            AccessConstraint(
                "customer",
                ["pnum"],
                ["segment", "region", "age_band", "status", "arpu_band"],
                1,
                name="psi8",
            ),
            AccessConstraint(
                "sms", ["pnum", "date"], ["recnum", "region"], 200, name="psi9"
            ),
            AccessConstraint(
                "complaint", ["pnum"], ["category", "status", "opened"], 50,
                name="psi10",
            ),
        ],
        name="A0",
    )
