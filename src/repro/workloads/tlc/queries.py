"""The 11 built-in TLC queries.

The benchmark "has 11 built-in queries, simulating industrial data
analytical jobs in real-life mobile communication scenarios". Q1 is the
paper's Example 2 verbatim. Ten of the eleven are boundedly evaluable
under ``A0`` ("more than 90% of their queries"); Q11 joins a relation
without access constraints and exercises the partially-bounded path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.tlc.generator import TLCParams


@dataclass(frozen=True)
class TLCQuery:
    """One built-in query with its expected checker outcome."""

    name: str
    description: str
    sql: str
    covered: bool  # expected BE Checker decision under A0
    constraints: tuple[str, ...]  # access constraints a bounded plan uses


def tlc_queries(params: TLCParams) -> list[TLCQuery]:
    """Instantiate the 11 queries with the dataset's constants."""
    p = params
    return [
        TLCQuery(
            name="Q1",
            description=(
                "regions reached by business numbers of a given type/region/"
                "package on a date (the paper's Example 2)"
            ),
            sql=f"""
                select call.region
                from call, package, business
                where business.type = '{p.t0}' and business.region = '{p.r0}'
                  and business.pnum = call.pnum and call.date = '{p.d0}'
                  and call.pnum = package.pnum and package.year = {p.year}
                  and package.start <= '{p.d0}' and package.end >= '{p.d0}'
                  and package.pid = '{p.c0}'
            """,
            covered=True,
            constraints=("psi3", "psi2", "psi1"),
        ),
        TLCQuery(
            name="Q2",
            description="who did a number call on a date, and where",
            sql=f"""
                select distinct recnum, region from call
                where pnum = '{p.p0}' and date = '{p.d0}'
            """,
            covered=True,
            constraints=("psi1",),
        ),
        TLCQuery(
            name="Q3",
            description="service packages of a number in a year",
            sql=f"""
                select distinct pid, start, end from package
                where pnum = '{p.p0}' and year = {p.year}
            """,
            covered=True,
            constraints=("psi2",),
        ),
        TLCQuery(
            name="Q4",
            description="businesses of a type in a region",
            sql=f"""
                select distinct pnum from business
                where type = '{p.t0}' and region = '{p.r0}'
            """,
            covered=True,
            constraints=("psi3",),
        ),
        TLCQuery(
            name="Q5",
            description="who called a given number on a date (reverse CDR)",
            sql=f"""
                select distinct pnum, region from call
                where recnum = '{p.x0}' and date = '{p.d0}'
            """,
            covered=True,
            constraints=("psi5",),
        ),
        TLCQuery(
            name="Q6",
            description="distinct callees of a number on a date",
            sql=f"""
                select count(distinct recnum) as callees from call
                where pnum = '{p.p0}' and date = '{p.d0}'
            """,
            covered=True,
            constraints=("psi1",),
        ),
        TLCQuery(
            name="Q7",
            description="call volume per region for a number on a date",
            sql=f"""
                select region, count(*) as calls from call
                where pnum = '{p.p0}' and date = '{p.d0}'
                group by region order by calls desc
            """,
            covered=True,
            constraints=("psi6",),
        ),
        TLCQuery(
            name="Q8",
            description="customer segments subscribed to a package in a year",
            sql=f"""
                select distinct cu.segment
                from customer cu, package pk
                where pk.pid = '{p.c0}' and pk.year = {p.year}
                  and pk.pnum = cu.pnum
            """,
            covered=True,
            constraints=("psi7", "psi8"),
        ),
        TLCQuery(
            name="Q9",
            description="SMS reach of a number on a date",
            sql=f"""
                select distinct recnum, region from sms
                where pnum = '{p.p0}' and date = '{p.d0}'
            """,
            covered=True,
            constraints=("psi9",),
        ),
        TLCQuery(
            name="Q10",
            description="complaint categories filed by businesses of a type/region",
            sql=f"""
                select distinct co.category
                from complaint co, business b
                where b.type = '{p.t0}' and b.region = '{p.r0}'
                  and co.pnum = b.pnum
            """,
            covered=True,
            constraints=("psi3", "psi10"),
        ),
        TLCQuery(
            name="Q11",
            description=(
                "app categories used by businesses of a type/region in a "
                "month (data_usage carries no access constraints: not "
                "covered, exercises the partially bounded path)"
            ),
            sql=f"""
                select distinct d.app_category
                from data_usage d, business b
                where b.type = '{p.t0}' and b.region = '{p.r0}'
                  and d.pnum = b.pnum and d.month = {p.m0}
            """,
            covered=False,
            constraints=(),
        ),
    ]


def query_by_name(params: TLCParams, name: str) -> TLCQuery:
    for query in tlc_queries(params):
        if query.name == name:
            return query
    raise KeyError(name)
