"""TLC schema: 12 relations, 285 attributes in total.

The paper's commercial telecom benchmark "has 12 relations with 285
attributes in total"; only three are spelled out (Example 1):
``call(pnum, recnum, date, region)``, ``package(pnum, pid, start, end,
year)`` and ``business(pnum, type, region)``. This module reproduces
those three *exactly* (same attribute names) and surrounds them with nine
supporting relations a telecom analytics schema plausibly carries —
sized so the attribute total is exactly 285 (asserted in tests).

Candidate keys matter to bounded evaluation (bag-exact plans need
key-covering fetches), so every relation declares one.
"""

from __future__ import annotations

from repro.catalog.schema import DatabaseSchema, TableSchema
from repro.catalog.types import DataType as T

REGIONS = (
    "east", "west", "north", "south", "central",
    "coastal", "mountain", "valley", "lakes", "plains",
)

BUSINESS_TYPES = (
    "bank", "hospital", "school", "retail",
    "restaurant", "logistics", "hotel", "pharmacy",
)


def tlc_schema() -> DatabaseSchema:
    """Build the 12-relation TLC database schema (285 attributes)."""
    call = TableSchema(
        "call",
        [
            ("call_id", T.INT), ("pnum", T.STRING), ("recnum", T.STRING),
            ("date", T.DATE), ("region", T.STRING),
            ("time", T.STRING), ("duration_sec", T.INT), ("cost", T.FLOAT),
            ("call_type", T.STRING), ("direction", T.STRING),
            ("roaming", T.BOOL), ("dropped", T.BOOL), ("tower_id", T.STRING),
            ("network", T.STRING), ("termination", T.STRING),
            ("billed", T.BOOL), ("rate_plan", T.STRING), ("discount", T.FLOAT),
            ("intl", T.BOOL), ("recnum_region", T.STRING),
            ("setup_ms", T.INT), ("jitter_ms", T.INT), ("packet_loss", T.FLOAT),
            ("codec", T.STRING), ("handoff_count", T.INT),
            ("quality_score", T.FLOAT), ("spam_score", T.FLOAT),
            ("recorded", T.BOOL), ("channel", T.STRING), ("notes", T.STRING),
        ],
        keys=[("call_id",)],
    )
    sms = TableSchema(
        "sms",
        [
            ("sms_id", T.INT), ("pnum", T.STRING), ("recnum", T.STRING),
            ("date", T.DATE), ("region", T.STRING),
            ("time", T.STRING), ("length_chars", T.INT), ("cost", T.FLOAT),
            ("direction", T.STRING), ("encoding", T.STRING),
            ("multipart", T.BOOL), ("parts", T.INT), ("network", T.STRING),
            ("tower_id", T.STRING), ("delivered", T.BOOL),
            ("delivery_ms", T.INT), ("spam_score", T.FLOAT), ("intl", T.BOOL),
            ("billed", T.BOOL), ("rate_plan", T.STRING),
            ("channel", T.STRING), ("notes", T.STRING),
        ],
        keys=[("sms_id",)],
    )
    data_usage = TableSchema(
        "data_usage",
        [
            ("usage_id", T.INT), ("pnum", T.STRING), ("date", T.DATE),
            ("month", T.INT), ("region", T.STRING),
            ("app_category", T.STRING), ("mb_down", T.FLOAT), ("mb_up", T.FLOAT),
            ("duration_min", T.INT), ("network", T.STRING),
            ("tower_id", T.STRING), ("roaming", T.BOOL), ("throttled", T.BOOL),
            ("peak", T.BOOL), ("cost", T.FLOAT),
            ("rate_plan", T.STRING), ("billed", T.BOOL), ("sessions", T.INT),
            ("avg_speed_mbps", T.FLOAT), ("max_speed_mbps", T.FLOAT),
            ("latency_ms", T.INT), ("protocol", T.STRING),
            ("device_id", T.STRING), ("notes", T.STRING),
        ],
        keys=[("usage_id",)],
    )
    package = TableSchema(
        "package",
        [
            ("pkg_id", T.INT), ("pnum", T.STRING), ("pid", T.STRING),
            ("start", T.DATE), ("end", T.DATE),
            ("year", T.INT), ("monthly_fee", T.FLOAT), ("data_gb", T.INT),
            ("voice_min", T.INT), ("sms_count", T.INT),
            ("family", T.BOOL), ("promo", T.BOOL), ("discount", T.FLOAT),
            ("auto_renew", T.BOOL), ("channel", T.STRING),
            ("status", T.STRING), ("activated", T.DATE), ("canceled", T.BOOL),
            ("region", T.STRING), ("notes", T.STRING),
        ],
        keys=[("pkg_id",)],
    )
    business = TableSchema(
        "business",
        [
            ("pnum", T.STRING), ("type", T.STRING), ("region", T.STRING),
            ("name", T.STRING), ("founded_year", T.INT),
            ("employees", T.INT), ("revenue_band", T.STRING), ("vip", T.BOOL),
            ("account_manager", T.STRING), ("credit_score", T.INT),
            ("contract_start", T.DATE), ("contract_end", T.DATE),
            ("sites", T.INT), ("industry_code", T.STRING), ("tax_id", T.STRING),
            ("segment", T.STRING), ("churn_risk", T.FLOAT), ("notes", T.STRING),
        ],
        keys=[("pnum",)],
    )
    customer = TableSchema(
        "customer",
        [
            ("pnum", T.STRING), ("name", T.STRING), ("segment", T.STRING),
            ("region", T.STRING), ("age_band", T.STRING),
            ("gender", T.STRING), ("status", T.STRING), ("joined", T.DATE),
            ("email_domain", T.STRING), ("channel", T.STRING),
            ("credit_score", T.INT), ("arpu_band", T.STRING),
            ("churn_risk", T.FLOAT), ("lifetime_value", T.FLOAT),
            ("satisfaction", T.INT),
            ("language", T.STRING), ("city", T.STRING),
            ("postal_prefix", T.STRING), ("marketing_opt_in", T.BOOL),
            ("paperless", T.BOOL),
            ("autopay", T.BOOL), ("family_plan", T.BOOL), ("lines", T.INT),
            ("tenure_months", T.INT), ("last_upgrade", T.DATE),
            ("device_id", T.STRING), ("plan_id", T.STRING),
            ("referral_code", T.STRING), ("loyalty_tier", T.STRING),
            ("complaints_count", T.INT),
            ("late_payments", T.INT), ("notes", T.STRING),
        ],
        keys=[("pnum",)],
    )
    bill = TableSchema(
        "bill",
        [
            ("bill_id", T.INT), ("pnum", T.STRING), ("month", T.INT),
            ("year", T.INT), ("amount", T.FLOAT),
            ("tax", T.FLOAT), ("discount", T.FLOAT), ("voice_charge", T.FLOAT),
            ("sms_charge", T.FLOAT), ("data_charge", T.FLOAT),
            ("roaming_charge", T.FLOAT), ("intl_charge", T.FLOAT),
            ("overage", T.FLOAT), ("plan_fee", T.FLOAT),
            ("device_installment", T.FLOAT),
            ("credits", T.FLOAT), ("balance_forward", T.FLOAT),
            ("total_due", T.FLOAT), ("due_date", T.DATE), ("paid", T.BOOL),
            ("paid_date", T.DATE), ("payment_method", T.STRING),
            ("late_fee", T.FLOAT), ("status", T.STRING),
            ("currency", T.STRING), ("notes", T.STRING),
        ],
        keys=[("bill_id",)],
    )
    complaint = TableSchema(
        "complaint",
        [
            ("complaint_id", T.INT), ("pnum", T.STRING),
            ("category", T.STRING), ("status", T.STRING), ("opened", T.DATE),
            ("closed", T.DATE), ("severity", T.INT), ("channel", T.STRING),
            ("agent_id", T.STRING), ("region", T.STRING),
            ("product", T.STRING), ("resolution", T.STRING),
            ("escalated", T.BOOL), ("reopened", T.BOOL), ("sla_met", T.BOOL),
            ("response_hours", T.INT), ("resolution_hours", T.INT),
            ("satisfaction", T.INT), ("compensation", T.FLOAT),
            ("root_cause", T.STRING),
            ("follow_up", T.BOOL), ("notes", T.STRING),
        ],
        keys=[("complaint_id",)],
    )
    device = TableSchema(
        "device",
        [
            ("device_id", T.STRING), ("pnum", T.STRING), ("brand", T.STRING),
            ("model", T.STRING), ("os", T.STRING),
            ("os_version", T.STRING), ("storage_gb", T.INT), ("ram_gb", T.INT),
            ("purchased", T.DATE), ("price", T.FLOAT),
            ("installment", T.BOOL), ("insurance", T.BOOL),
            ("imei_prefix", T.STRING), ("band_support", T.STRING),
            ("fiveg", T.BOOL),
            ("esim", T.BOOL), ("dual_sim", T.BOOL), ("screen_inch", T.FLOAT),
            ("battery_mah", T.INT), ("color", T.STRING),
            ("condition", T.STRING), ("warranty_end", T.DATE),
            ("trade_in_value", T.FLOAT), ("locked", T.BOOL),
            ("notes", T.STRING),
        ],
        keys=[("device_id",)],
    )
    cell_tower = TableSchema(
        "cell_tower",
        [
            ("tower_id", T.STRING), ("region", T.STRING), ("city", T.STRING),
            ("latitude", T.FLOAT), ("longitude", T.FLOAT),
            ("technology", T.STRING), ("bands", T.STRING), ("capacity", T.INT),
            ("installed", T.DATE), ("last_service", T.DATE),
            ("height_m", T.FLOAT), ("power_kw", T.FLOAT),
            ("backhaul", T.STRING), ("vendor", T.STRING), ("sectors", T.INT),
            ("azimuth", T.INT), ("tilt", T.INT), ("status", T.STRING),
            ("coverage_km", T.FLOAT), ("load_pct", T.FLOAT),
            ("alarms", T.INT), ("owner", T.STRING), ("shared", T.BOOL),
            ("notes", T.STRING),
        ],
        keys=[("tower_id",)],
    )
    service_plan = TableSchema(
        "service_plan",
        [
            ("pid", T.STRING), ("plan_name", T.STRING), ("tier", T.STRING),
            ("monthly_fee", T.FLOAT), ("data_gb", T.INT),
            ("voice_min", T.INT), ("sms_count", T.INT),
            ("intl_included", T.BOOL), ("roaming_included", T.BOOL),
            ("family_size", T.INT),
            ("contract_months", T.INT), ("promo_months", T.INT),
            ("promo_discount", T.FLOAT), ("launch_date", T.DATE),
            ("retired", T.BOOL),
            ("channel", T.STRING), ("segment", T.STRING),
            ("popularity", T.FLOAT), ("margin", T.FLOAT), ("notes", T.STRING),
        ],
        keys=[("pid",)],
    )
    region_info = TableSchema(
        "region_info",
        [
            ("region", T.STRING), ("country", T.STRING),
            ("population_band", T.STRING), ("area_km2", T.FLOAT),
            ("towers", T.INT),
            ("coverage_pct", T.FLOAT), ("urban_pct", T.FLOAT),
            ("competitor_share", T.FLOAT), ("arpu_avg", T.FLOAT),
            ("churn_rate", T.FLOAT),
            ("market_rank", T.INT), ("opened", T.DATE), ("hq_city", T.STRING),
            ("stores", T.INT), ("employees", T.INT),
            ("revenue_band", T.STRING), ("regulator_zone", T.STRING),
            ("spectrum_mhz", T.INT), ("fiveg_rollout", T.BOOL), ("nps", T.INT),
            ("growth_pct", T.FLOAT), ("notes", T.STRING),
        ],
        keys=[("region",)],
    )
    return DatabaseSchema(
        [
            call, sms, data_usage, package, business, customer,
            bill, complaint, device, cell_tower, service_plan, region_info,
        ],
        name="tlc",
    )
