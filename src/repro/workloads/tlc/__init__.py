"""TLC: the paper's telecom benchmark (12 relations, 285 attributes,
11 built-in queries, access schema A0 with the paper's ψ1-ψ3)."""

from repro.workloads.tlc.schema import BUSINESS_TYPES, REGIONS, tlc_schema
from repro.workloads.tlc.generator import TLCDataset, TLCParams, generate_tlc
from repro.workloads.tlc.access_schema import tlc_access_schema
from repro.workloads.tlc.queries import TLCQuery, query_by_name, tlc_queries
from repro.workloads.tlc.export import export_tlc

__all__ = [
    "tlc_schema",
    "tlc_access_schema",
    "generate_tlc",
    "export_tlc",
    "TLCDataset",
    "TLCParams",
    "TLCQuery",
    "tlc_queries",
    "query_by_name",
    "REGIONS",
    "BUSINESS_TYPES",
]
