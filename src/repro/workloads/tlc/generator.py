"""Deterministic TLC data generator.

Generates a database instance that **provably conforms** to the access
schema ``A0`` (asserted by tests): call volumes per (pnum, date), packages
per (pnum, year), businesses per (type, region), etc. all stay far below
the declared bounds, mirroring how the paper's constants are aggregated
upper bounds over historical data.

Scale: ``scale=k`` stands for the paper's "k GB" — row counts grow
linearly in ``k`` (≈2 600 rows per unit across the 12 relations, ~43 MB
of Python objects at scale 200), so the conventional engines' cost grows
linearly while bounded plans stay flat, which is the property Fig. 4
measures. Generation is seeded and fully deterministic.

The generator also *plants* a small fixed data chain (five businesses of
type ``t0`` in region ``r0`` holding package ``c0`` over date ``d0`` with
calls, SMS, complaints, and data usage) so that every built-in query has
non-empty answers at every scale — the planted rows are the "interesting"
entities the demo queries talk about.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import date as _date, timedelta

from repro.storage.database import Database
from repro.workloads.tlc.schema import BUSINESS_TYPES, REGIONS, tlc_schema

_NETWORKS = ("2G", "3G", "4G", "5G")
_CALL_TYPES = ("voice", "conference", "voicemail", "callback")
_DIRECTIONS = ("out", "in")
_CODECS = ("AMR", "EVS", "G711", "OPUS")
_CHANNELS = ("retail", "online", "partner", "phone")
_SEGMENTS = ("consumer", "smb", "enterprise", "government")
_AGE_BANDS = ("18-25", "26-35", "36-50", "51-65", "65+")
_STATUSES = ("active", "suspended", "closed")
_CATEGORIES = ("billing", "coverage", "device", "roaming", "speed", "service")
_APP_CATEGORIES = ("video", "social", "web", "music", "gaming", "maps")
_REVENUE_BANDS = ("small", "medium", "large", "xlarge")
_TIERS = ("basic", "plus", "premium", "unlimited")


@dataclass(frozen=True)
class TLCParams:
    """The constants the built-in queries reference (guaranteed to exist)."""

    t0: str = "bank"
    r0: str = "east"
    d0: str = "2016-06-15"
    c0: str = "PLAN05"
    p0: str = "P0000000"  # a planted busy business number
    x0: str = "E9999999"  # a planted popular callee
    m0: int = 6
    year: int = 2016


@dataclass
class TLCDataset:
    """A generated TLC instance plus its query constants."""

    database: Database
    params: TLCParams
    scale: int
    seed: int

    @property
    def total_rows(self) -> int:
        return self.database.total_rows()


def _dates(year: int) -> list[str]:
    start = _date(year, 5, 1)
    return [(start + timedelta(days=i)).isoformat() for i in range(60)]


def generate_tlc(scale: int = 1, seed: int = 42) -> TLCDataset:
    """Generate a TLC instance at the given scale ("GB")."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = random.Random(seed * 1_000_003 + scale)
    params = TLCParams()
    db = Database(tlc_schema(), name=f"tlc-sf{scale}")

    dates = _dates(params.year)
    n_pnum = 40 * scale + 100
    pnums = [f"P{i:07d}" for i in range(n_pnum)]
    externals = [f"E{i:07d}" for i in range(20 * scale + 200)]
    recnum_pool = pnums + externals
    n_business = 10 * scale + 50
    business_pnums = pnums[:n_business]
    planted = business_pnums[:5]  # includes params.p0
    towers = [f"T{i:04d}" for i in range(20 * scale)] or ["T0000"]
    pids = [f"PLAN{i:02d}" for i in range(30)]
    months = "2016-01-01 2016-02-01 2016-03-01 2016-04-01 2016-05-01 2016-06-01".split()
    month_ends = (
        "2016-03-31 2016-06-30 2016-09-30 2016-12-31 2016-08-31 2016-10-31".split()
    )

    _fill_region_info(db)
    _fill_service_plans(db, pids)
    _fill_cell_towers(db, rng, towers)
    _fill_customers(db, rng, pnums)
    _fill_businesses(db, rng, business_pnums, planted, params)
    _fill_packages(db, rng, pnums, planted, pids, months, month_ends, params)
    _fill_calls(db, rng, scale, pnums, recnum_pool, dates, towers, planted, params)
    _fill_sms(db, rng, scale, pnums, recnum_pool, dates, towers, planted, params)
    _fill_data_usage(db, rng, scale, pnums, dates, towers, planted, params)
    _fill_bills(db, rng, scale, pnums)
    _fill_complaints(db, rng, scale, pnums, dates, planted, params)
    _fill_devices(db, rng, scale, pnums)
    return TLCDataset(database=db, params=params, scale=scale, seed=seed)


# --------------------------------------------------------------------------- #
# static-ish dimension tables
# --------------------------------------------------------------------------- #
def _fill_region_info(db: Database) -> None:
    table = db.table("region_info")
    for i, region in enumerate(REGIONS):
        table.insert(
            (
                region, "examplia", _REVENUE_BANDS[i % 4], 1000.0 + 173.0 * i,
                40 + 7 * i, 82.0 + i, 35.0 + 3 * i, 0.2 + 0.03 * i,
                31.5 + i, 0.015 + 0.001 * i, (i % 5) + 1, "2001-03-01",
                f"{region}_city", 12 + i, 300 + 21 * i,
                _REVENUE_BANDS[(i + 1) % 4], f"zone{i % 3}", 120 + 10 * i,
                i % 2 == 0, 20 + i, 2.5 + 0.2 * i, f"region {region}",
            )
        )


def _fill_service_plans(db: Database, pids: list[str]) -> None:
    table = db.table("service_plan")
    for i, pid in enumerate(pids):
        table.insert(
            (
                pid, f"plan_{i:02d}", _TIERS[i % 4], 9.99 + 5.0 * (i % 8),
                (i % 10) * 5, 100 * ((i % 6) + 1), 100 * ((i % 4) + 1),
                i % 5 == 0, i % 4 == 0, (i % 4) + 1,
                12 * ((i % 2) + 1), i % 6, 0.1 * (i % 3), "2015-01-01",
                i % 9 == 8, _CHANNELS[i % 4], _SEGMENTS[i % 4],
                0.5 + 0.01 * i, 0.2 + 0.01 * (i % 10), f"plan {pid}",
            )
        )


def _fill_cell_towers(db: Database, rng: random.Random, towers: list[str]) -> None:
    table = db.table("cell_tower")
    for i, tower in enumerate(towers):
        region = REGIONS[i % len(REGIONS)]
        table.insert(
            (
                tower, region, f"{region}_city", 40.0 + rng.random() * 10,
                -100.0 + rng.random() * 40, _NETWORKS[i % 4], "B1/B3/B7",
                200 + (i % 7) * 50, "2012-06-01", "2016-01-15",
                25.0 + (i % 10), 3.5 + (i % 5) * 0.2, "fiber", "vendorA",
                3 + (i % 3), (i * 40) % 360, i % 8, "up",
                2.0 + (i % 6) * 0.5, 30.0 + (i % 50), i % 3, "opco",
                i % 4 == 0, f"tower {tower}",
            )
        )


def _fill_customers(db: Database, rng: random.Random, pnums: list[str]) -> None:
    table = db.table("customer")
    for i, pnum in enumerate(pnums):
        region = REGIONS[i % len(REGIONS)]
        table.insert(
            (
                pnum, f"cust_{i:07d}", _SEGMENTS[i % 4], region,
                _AGE_BANDS[i % 5],
                "FMX"[i % 3], _STATUSES[0 if i % 11 else 1], "2014-03-01",
                "mail.example", _CHANNELS[i % 4],
                550 + (i % 300), _TIERS[i % 4], round(rng.random() * 0.4, 3),
                1000.0 + (i % 50) * 37.0, 1 + (i % 10),
                "en", f"{region}_city", f"Z{i % 90:02d}", i % 3 == 0,
                i % 2 == 0,
                i % 4 == 0, i % 5 == 0, 1 + (i % 4), 6 + (i % 60),
                "2015-11-20",
                f"D{i % 997:06d}", f"PLAN{i % 30:02d}", f"R{i % 500:04d}",
                _TIERS[(i + 1) % 4], i % 7,
                i % 5, f"customer {i}",
            )
        )


def _fill_businesses(
    db: Database,
    rng: random.Random,
    business_pnums: list[str],
    planted: list[str],
    params: TLCParams,
) -> None:
    table = db.table("business")
    for i, pnum in enumerate(business_pnums):
        if pnum in planted:
            btype, region = params.t0, params.r0
        else:
            btype = BUSINESS_TYPES[rng.randrange(len(BUSINESS_TYPES))]
            region = REGIONS[rng.randrange(len(REGIONS))]
        table.insert(
            (
                pnum, btype, region, f"biz_{i:06d}", 1980 + (i % 35),
                5 + (i % 500), _REVENUE_BANDS[i % 4], i % 9 == 0,
                f"AM{i % 40:03d}", 500 + (i % 350),
                "2015-01-01", "2017-12-31",
                1 + (i % 12), f"IC{i % 88:03d}", f"TAX{i:07d}",
                _SEGMENTS[1 + (i % 3)], round(rng.random() * 0.5, 3),
                f"business {i}",
            )
        )


def _fill_packages(
    db: Database,
    rng: random.Random,
    pnums: list[str],
    planted: list[str],
    pids: list[str],
    months: list[str],
    month_ends: list[str],
    params: TLCParams,
) -> None:
    table = db.table("package")
    pkg_id = 0
    for pnum in planted:
        pkg_id += 1
        table.insert(
            (
                pkg_id, pnum, params.c0, "2016-01-01", "2016-12-31",
                params.year, 49.99, 20, 600, 400,
                False, False, 0.0, True, "retail",
                "active", "2016-01-01", False, params.r0, "planted package",
            )
        )
    for i, pnum in enumerate(pnums):
        # at most 3 random packages per (pnum, year); +1 planted stays << 12
        for k in range(1 + (i + len(pnum)) % 3):
            pkg_id += 1
            slot = rng.randrange(len(months))
            pid = pids[rng.randrange(len(pids))]
            table.insert(
                (
                    pkg_id, pnum, pid, months[slot], month_ends[slot],
                    params.year, 19.99 + 5.0 * k, 5 * (k + 1), 300, 200,
                    k == 2, slot % 2 == 0, 0.05 * slot, True,
                    _CHANNELS[slot % 4],
                    "active", months[slot], False,
                    REGIONS[i % len(REGIONS)], f"pkg {pkg_id}",
                )
            )


# --------------------------------------------------------------------------- #
# fact tables
# --------------------------------------------------------------------------- #
def _fill_calls(
    db: Database,
    rng: random.Random,
    scale: int,
    pnums: list[str],
    recnum_pool: list[str],
    dates: list[str],
    towers: list[str],
    planted: list[str],
    params: TLCParams,
) -> None:
    table = db.table("call")
    call_id = 0

    def insert_call(pnum: str, recnum: str, date: str, region: str) -> None:
        nonlocal call_id
        call_id += 1
        i = call_id
        table.insert(
            (
                call_id, pnum, recnum, date, region,
                f"{i % 24:02d}:{(i * 7) % 60:02d}", 30 + (i * 13) % 1800,
                round(0.01 * ((i * 13) % 1800) / 60.0, 4),
                _CALL_TYPES[i % 4], _DIRECTIONS[i % 2],
                i % 29 == 0, i % 53 == 0, towers[i % len(towers)],
                _NETWORKS[i % 4], "normal" if i % 17 else "busy",
                True, f"PLAN{i % 30:02d}", 0.0 if i % 5 else 0.1,
                i % 37 == 0, REGIONS[(i + 3) % len(REGIONS)],
                100 + (i * 11) % 900, (i * 3) % 40, round((i % 50) / 1000.0, 4),
                _CODECS[i % 4], i % 3,
                3.0 + (i % 20) / 10.0, round((i % 100) / 500.0, 4),
                False, _CHANNELS[i % 4], f"call {i}",
            )
        )

    # planted: twelve calls on d0 for each planted business, two of them to x0
    for pnum in planted:
        for k in range(12):
            recnum = params.x0 if k < 2 else recnum_pool[(k * 37) % len(recnum_pool)]
            insert_call(pnum, recnum, params.d0, REGIONS[k % len(REGIONS)])

    for _ in range(1500 * scale):
        pnum = pnums[rng.randrange(len(pnums))]
        recnum = recnum_pool[rng.randrange(len(recnum_pool))]
        date = dates[rng.randrange(len(dates))]
        region = REGIONS[rng.randrange(len(REGIONS))]
        insert_call(pnum, recnum, date, region)


def _fill_sms(
    db: Database,
    rng: random.Random,
    scale: int,
    pnums: list[str],
    recnum_pool: list[str],
    dates: list[str],
    towers: list[str],
    planted: list[str],
    params: TLCParams,
) -> None:
    table = db.table("sms")
    sms_id = 0

    def insert_sms(pnum: str, recnum: str, date: str, region: str) -> None:
        nonlocal sms_id
        sms_id += 1
        i = sms_id
        table.insert(
            (
                sms_id, pnum, recnum, date, region,
                f"{i % 24:02d}:{(i * 11) % 60:02d}", 20 + (i * 7) % 300,
                0.05, _DIRECTIONS[i % 2], "GSM7" if i % 3 else "UCS2",
                i % 6 == 0, 1 + (i % 3), _NETWORKS[i % 4],
                towers[i % len(towers)], i % 19 != 0,
                200 + (i * 17) % 3000, round((i % 100) / 400.0, 4), i % 41 == 0,
                True, f"PLAN{i % 30:02d}",
                _CHANNELS[i % 4], f"sms {i}",
            )
        )

    for pnum in planted:
        for k in range(3):
            insert_sms(
                pnum,
                recnum_pool[(k * 53) % len(recnum_pool)],
                params.d0,
                REGIONS[k % len(REGIONS)],
            )
    for _ in range(500 * scale):
        insert_sms(
            pnums[rng.randrange(len(pnums))],
            recnum_pool[rng.randrange(len(recnum_pool))],
            dates[rng.randrange(len(dates))],
            REGIONS[rng.randrange(len(REGIONS))],
        )


def _fill_data_usage(
    db: Database,
    rng: random.Random,
    scale: int,
    pnums: list[str],
    dates: list[str],
    towers: list[str],
    planted: list[str],
    params: TLCParams,
) -> None:
    table = db.table("data_usage")
    usage_id = 0

    def insert_usage(pnum: str, date: str, month: int, region: str) -> None:
        nonlocal usage_id
        usage_id += 1
        i = usage_id
        table.insert(
            (
                usage_id, pnum, date, month, region,
                _APP_CATEGORIES[i % 6], round(5.0 + (i * 13) % 500 / 10.0, 3),
                round((i * 7) % 120 / 10.0, 3),
                1 + (i * 3) % 180, _NETWORKS[i % 4],
                towers[i % len(towers)], i % 31 == 0, i % 23 == 0,
                i % 2 == 0, round(0.02 * (i % 40), 4),
                f"PLAN{i % 30:02d}", True, 1 + (i % 20),
                round(5.0 + (i % 90) / 2.0, 2), round(20.0 + (i % 200) / 2.0, 2),
                10 + (i * 7) % 90, "https" if i % 4 else "quic",
                f"D{i % 997:06d}", f"usage {i}",
            )
        )

    for pnum in planted:
        for k in range(3):
            insert_usage(pnum, params.d0, params.m0, REGIONS[k % len(REGIONS)])
    for _ in range(400 * scale):
        date = dates[rng.randrange(len(dates))]
        insert_usage(
            pnums[rng.randrange(len(pnums))],
            date,
            int(date[5:7]),
            REGIONS[rng.randrange(len(REGIONS))],
        )


def _fill_bills(db: Database, rng: random.Random, scale: int, pnums: list[str]) -> None:
    table = db.table("bill")
    for i in range(100 * scale):
        pnum = pnums[rng.randrange(len(pnums))]
        amount = round(20.0 + (i * 13) % 900 / 10.0, 2)
        table.insert(
            (
                i + 1, pnum, 1 + (i % 6), 2016, amount,
                round(amount * 0.2, 2), round(amount * 0.05, 2),
                round(amount * 0.4, 2), round(amount * 0.1, 2),
                round(amount * 0.3, 2),
                round(amount * 0.05, 2), round(amount * 0.05, 2),
                0.0, 15.0, 8.0,
                0.0, 0.0, round(amount * 1.2, 2), "2016-07-15", i % 7 != 0,
                "2016-07-10", "card" if i % 3 else "bank", 0.0,
                "issued", "USD", f"bill {i}",
            )
        )


def _fill_complaints(
    db: Database,
    rng: random.Random,
    scale: int,
    pnums: list[str],
    dates: list[str],
    planted: list[str],
    params: TLCParams,
) -> None:
    table = db.table("complaint")
    complaint_id = 0

    def insert_complaint(pnum: str, category: str, opened: str, region: str) -> None:
        nonlocal complaint_id
        complaint_id += 1
        i = complaint_id
        table.insert(
            (
                complaint_id, pnum, category, _STATUSES[i % 3], opened,
                opened, 1 + (i % 4), _CHANNELS[i % 4],
                f"AG{i % 60:03d}", region,
                "mobile", "resolved" if i % 4 else "pending",
                i % 9 == 0, i % 13 == 0, i % 5 != 0,
                1 + (i % 48), 2 + (i % 96),
                1 + (i % 10), 0.0 if i % 6 else 10.0,
                _CATEGORIES[(i + 2) % 6],
                i % 8 == 0, f"complaint {i}",
            )
        )

    for pnum in planted:
        insert_complaint(pnum, "billing", params.d0, params.r0)
        insert_complaint(pnum, "coverage", params.d0, params.r0)
    for _ in range(30 * scale):
        insert_complaint(
            pnums[rng.randrange(len(pnums))],
            _CATEGORIES[rng.randrange(len(_CATEGORIES))],
            dates[rng.randrange(len(dates))],
            REGIONS[rng.randrange(len(REGIONS))],
        )


def _fill_devices(db: Database, rng: random.Random, scale: int, pnums: list[str]) -> None:
    table = db.table("device")
    for i in range(50 * scale):
        pnum = pnums[rng.randrange(len(pnums))]
        table.insert(
            (
                f"D{i:06d}", pnum, f"brand{i % 7}", f"model{i % 40}",
                "android" if i % 3 else "ios",
                f"{10 + i % 5}.{i % 10}", 64 * (1 + i % 4), 4 + (i % 3) * 2,
                "2015-09-01", 199.0 + (i % 10) * 80.0,
                i % 2 == 0, i % 5 == 0, f"35{i % 1000:03d}", "B1/B3/B20",
                i % 4 == 0,
                i % 6 == 0, i % 3 == 0, 5.5 + (i % 4) * 0.3,
                3000 + (i % 8) * 250, ("black", "white", "blue")[i % 3],
                "new" if i % 5 else "refurb", "2017-09-01",
                50.0 + (i % 10) * 15.0, i % 2 == 0, f"device {i}",
            )
        )
