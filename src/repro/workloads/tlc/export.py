"""Export a generated TLC instance to disk (CSV tables + schema JSON).

Produces exactly the layout the CLI consumes: one ``<table>.csv`` per
relation (``name:type`` headers) plus ``access_schema.json`` with ``A0``,
so a generated benchmark instance can be queried from the shell::

    python -c "from repro.workloads.tlc import generate_tlc, export_tlc; \\
               export_tlc(generate_tlc(2), 'tlc_data')"
    python -m repro run --data tlc_data --schema tlc_data/access_schema.json \\
        --sql "SELECT DISTINCT pnum FROM business WHERE type = 'bank' AND region = 'east'"
"""

from __future__ import annotations

from pathlib import Path

from repro.access.io import dump_schema
from repro.storage.csvio import dump_csv
from repro.workloads.tlc.access_schema import tlc_access_schema
from repro.workloads.tlc.generator import TLCDataset


def export_tlc(dataset: TLCDataset, directory: str | Path) -> Path:
    """Write all 12 relations and the A0 schema under ``directory``."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    for table in dataset.database:
        dump_csv(table, target / f"{table.schema.name}.csv")
    dump_schema(tlc_access_schema(), target / "access_schema.json")
    (target / "PARAMS.txt").write_text(
        "\n".join(
            [
                f"scale={dataset.scale}",
                f"seed={dataset.seed}",
                f"t0={dataset.params.t0}",
                f"r0={dataset.params.r0}",
                f"d0={dataset.params.d0}",
                f"c0={dataset.params.c0}",
                f"p0={dataset.params.p0}",
                f"x0={dataset.params.x0}",
                f"m0={dataset.params.m0}",
                f"year={dataset.params.year}",
            ]
        )
        + "\n"
    )
    return target
