"""SQL frontend (S3): lexer, AST, parser, printer, and normalizer.

The subset implemented is the one BEAS operates on: single-block
``SELECT [DISTINCT] ... FROM ... [JOIN ... ON ...] WHERE ... GROUP BY ...
HAVING ... ORDER BY ... LIMIT`` with aggregates, arithmetic, ``IN`` lists,
``BETWEEN``, ``LIKE``, ``IS [NOT] NULL``, and set operations
(``UNION``/``INTERSECT``/``EXCEPT``) between blocks.
"""

from repro.sql.lexer import tokenize
from repro.sql.parser import parse, parse_expression, parse_script
from repro.sql.printer import to_sql
from repro.sql.normalize import normalize, ConjunctiveQuery
from repro.sql.fingerprint import (
    canonical_sql,
    canonical_statement,
    statement_fingerprint,
    statement_tables,
)
from repro.sql.script import run_script, ScriptResult

__all__ = [
    "tokenize",
    "parse",
    "parse_expression",
    "parse_script",
    "to_sql",
    "normalize",
    "ConjunctiveQuery",
    "canonical_sql",
    "canonical_statement",
    "statement_fingerprint",
    "statement_tables",
    "run_script",
    "ScriptResult",
]
