"""Stable query fingerprinting for the serving layer.

A fingerprint identifies a query up to *presentation*: whitespace,
keyword case, and the order of commutative ``AND`` conjuncts and ``IN``
list members do not change it. It is computed by printing a canonical
form of the AST (``repro.sql.printer``) and hashing the text, so two
spellings of the same query share one cache line in the serving layer's
decision and result caches.

Canonicalisation is deliberately conservative — it only applies rewrites
that are semantics-preserving under SQL's three-valued logic:

* flatten a top-level ``AND`` chain and sort the conjuncts by printed
  text (``AND`` is commutative and associative; no side effects exist);
* sort and deduplicate the members of an ``IN`` / ``NOT IN`` list whose
  items are all literals (membership is order- and
  multiplicity-independent);
* rewrite ``x BETWEEN lo AND hi`` to ``x >= lo AND x <= hi`` and
  ``x NOT BETWEEN lo AND hi`` to ``x < lo OR x > hi`` **when both
  bounds are non-NULL literals**, so the two spellings of a range share
  one decision/result cache line. The guard is load-bearing for
  three-valued logic: the engine evaluates BETWEEN as UNKNOWN whenever
  *any* operand is NULL, while the decomposed form can collapse to
  FALSE (``UNKNOWN AND FALSE``) or TRUE (``UNKNOWN OR TRUE``) when only
  a bound is NULL — so with a NULL (or non-literal, hence possibly
  NULL-valued) bound the spellings are not truth-value equivalent in
  nested positions and must keep distinct fingerprints. With non-NULL
  literal bounds the rewrite is exact in every position: a NULL operand
  makes both forms UNKNOWN, and non-NULL operands are classical.

Deeper equivalences (predicate implication, join reordering under
dependencies) are out of scope — a missed equivalence costs a cache
miss, never a wrong answer.
"""

from __future__ import annotations

import hashlib
from typing import Union

from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.printer import expression_to_sql, to_sql


def _and_conjuncts(expr: ast.Expression) -> list[ast.Expression]:
    """Flatten a (possibly nested) AND chain into its conjuncts."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _and_conjuncts(expr.left) + _and_conjuncts(expr.right)
    return [expr]


def _rebuild_and(conjuncts: list[ast.Expression]) -> ast.Expression:
    node = conjuncts[0]
    for conjunct in conjuncts[1:]:
        node = ast.BinaryOp("AND", node, conjunct)
    return node


def _rewritable_bounds(low: ast.Expression, high: ast.Expression) -> bool:
    """BETWEEN bounds safe for the conjunct rewrite (see module doc)."""
    return (
        isinstance(low, ast.Literal)
        and low.value is not None
        and isinstance(high, ast.Literal)
        and high.value is not None
    )


def canonical_expression(expr: ast.Expression) -> ast.Expression:
    """Reorder commutative parts of ``expr`` into a canonical form."""
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "AND":
            # canonicalising a conjunct can itself introduce an AND (the
            # BETWEEN rewrite below), so re-flatten before sorting
            flattened: list[ast.Expression] = []
            for conjunct in _and_conjuncts(expr):
                flattened.extend(_and_conjuncts(canonical_expression(conjunct)))
            conjuncts = sorted(flattened, key=expression_to_sql)
            return _rebuild_and(conjuncts)
        return ast.BinaryOp(
            expr.op,
            canonical_expression(expr.left),
            canonical_expression(expr.right),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, canonical_expression(expr.operand))
    if isinstance(expr, ast.InList):
        items = tuple(canonical_expression(i) for i in expr.items)
        literals = [i for i in items if isinstance(i, ast.Literal)]
        if len(literals) == len(items):
            # sort, then dedupe: membership is order- and
            # multiplicity-independent, so ``x IN (1, 1, 2)`` must share a
            # cache line with ``x IN (1, 2)``. The dedup key includes the
            # type so e.g. 1 and '1' (or 1 and True) stay distinct.
            deduped: list[ast.Literal] = []
            seen: set[tuple[str, str]] = set()
            for item in sorted(
                literals, key=lambda i: (str(type(i.value)), repr(i.value))
            ):
                marker = (str(type(item.value)), repr(item.value))
                if marker not in seen:
                    seen.add(marker)
                    deduped.append(item)
            items = tuple(deduped)
        return ast.InList(canonical_expression(expr.operand), items, expr.negated)
    if isinstance(expr, ast.Between):
        operand = canonical_expression(expr.operand)
        low = canonical_expression(expr.low)
        high = canonical_expression(expr.high)
        if not _rewritable_bounds(low, high):
            return ast.Between(operand, low, high, expr.negated)
        if expr.negated:
            return ast.BinaryOp(
                "OR",
                ast.BinaryOp("<", operand, low),
                ast.BinaryOp(">", operand, high),
            )
        # route through the AND branch so the two conjuncts land in the
        # same sorted position as the hand-written spelling
        return canonical_expression(
            ast.BinaryOp(
                "AND",
                ast.BinaryOp(">=", operand, low),
                ast.BinaryOp("<=", operand, high),
            )
        )
    if isinstance(expr, ast.Like):
        return ast.Like(
            canonical_expression(expr.operand),
            canonical_expression(expr.pattern),
            expr.negated,
        )
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(canonical_expression(expr.operand), expr.negated)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(canonical_expression(a) for a in expr.args),
            expr.distinct,
        )
    return expr  # Literal, ColumnRef, Star


def canonical_statement(statement: ast.Statement) -> ast.Statement:
    """Canonicalise WHERE/HAVING conjunct order (and nested set-op sides)."""
    if isinstance(statement, ast.SetOperation):
        return ast.SetOperation(
            statement.op,
            canonical_statement(statement.left),
            canonical_statement(statement.right),
            statement.all,
        )
    where = (
        canonical_expression(statement.where)
        if statement.where is not None
        else None
    )
    having = (
        canonical_expression(statement.having)
        if statement.having is not None
        else None
    )
    if where is statement.where and having is statement.having:
        return statement
    return ast.SelectStatement(
        items=statement.items,
        from_items=statement.from_items,
        where=where,
        group_by=statement.group_by,
        having=having,
        order_by=statement.order_by,
        limit=statement.limit,
        offset=statement.offset,
        distinct=statement.distinct,
    )


def canonical_sql(query: Union[str, ast.Statement]) -> str:
    """The canonical printed form used as the fingerprint's preimage."""
    statement = parse(query) if isinstance(query, str) else query
    return to_sql(canonical_statement(statement))


def statement_fingerprint(query: Union[str, ast.Statement]) -> str:
    """Hex digest identifying the query up to presentation order."""
    preimage = canonical_sql(query)
    return hashlib.sha256(preimage.encode("utf-8")).hexdigest()


def statement_tables(statement: ast.Statement) -> frozenset[str]:
    """Base tables a statement reads (dependency set for result caching)."""
    tables: set[str] = set()

    def visit_from(item: ast.FromItem) -> None:
        if isinstance(item, ast.TableRef):
            tables.add(item.name)
        else:
            visit_from(item.left)
            visit_from(item.right)

    def visit(stmt: ast.Statement) -> None:
        if isinstance(stmt, ast.SetOperation):
            visit(stmt.left)
            visit(stmt.right)
            return
        for item in stmt.from_items:
            visit_from(item)

    visit(statement)
    return frozenset(tables)
