"""Normalisation of a SELECT block into a canonical SPJA form.

The :class:`ConjunctiveQuery` produced here is the common currency of the
conventional planner (S4) and the bounded-evaluation core (S6). It names
each relation occurrence by its *binding* (alias, or table name when no
alias), resolves every column reference to a (binding, column) pair, and
classifies the WHERE conjuncts into:

* ``selections`` — ``attr = constant`` and ``attr IN (constants)`` (the
  enumerable bindings that seed bounded plans),
* ``equalities`` — ``attr = attr`` equi-join atoms,
* ``filters`` — everything else (ranges, LIKE, OR-trees, arithmetic, ...).

Aggregation (GROUP BY / aggregate select items / HAVING) and the ORDER
BY / LIMIT decoration are carried along unchanged but resolved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.schema import DatabaseSchema
from repro.errors import (
    AmbiguousColumnError,
    NormalizationError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.sql import ast


@dataclass(frozen=True, order=True)
class Attribute:
    """A column of one relation occurrence, e.g. ``c.pnum`` in ``call c``."""

    binding: str
    column: str

    def __str__(self) -> str:
        return f"{self.binding}.{self.column}"


@dataclass(frozen=True)
class ResolvedPredicate:
    """A residual filter conjunct plus the attributes it touches."""

    expression: ast.Expression
    attributes: frozenset[Attribute]


@dataclass(frozen=True)
class OutputItem:
    """One resolved select-list entry."""

    expression: ast.Expression
    name: str  # output column name


@dataclass
class ConjunctiveQuery:
    """Canonical SPJA form of one SELECT block."""

    occurrences: dict[str, str]  # binding -> table name (insertion ordered)
    output: list[OutputItem]
    selections: dict[Attribute, tuple]  # attr -> sorted tuple of constants
    equalities: list[tuple[Attribute, Attribute]]
    filters: list[ResolvedPredicate]
    group_by: list[Attribute] = field(default_factory=list)
    aggregates: list[OutputItem] = field(default_factory=list)
    having: Optional[ast.Expression] = None
    order_by: list[ast.OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False

    # ------------------------------------------------------------------ #
    @property
    def has_aggregates(self) -> bool:
        return bool(self.aggregates)

    @property
    def output_names(self) -> list[str]:
        return [item.name for item in self.output]

    def attributes_of(self, binding: str) -> set[str]:
        """Columns the query needs from one occurrence (output + predicates)."""
        needed: set[str] = set()
        for item in self.output:
            for ref in ast.column_refs(item.expression):
                if ref.table == binding:
                    needed.add(ref.name)
        for attr in self.selections:
            if attr.binding == binding:
                needed.add(attr.column)
        for left, right in self.equalities:
            if left.binding == binding:
                needed.add(left.column)
            if right.binding == binding:
                needed.add(right.column)
        for predicate in self.filters:
            for attr in predicate.attributes:
                if attr.binding == binding:
                    needed.add(attr.column)
        for attr in self.group_by:
            if attr.binding == binding:
                needed.add(attr.column)
        if self.having is not None:
            for ref in ast.column_refs(self.having):
                if ref.table == binding:
                    needed.add(ref.name)
        for order in self.order_by:
            for ref in ast.column_refs(order.expression):
                if ref.table == binding:
                    needed.add(ref.name)
        return needed

    def all_attributes(self) -> set[Attribute]:
        return {
            Attribute(binding, column)
            for binding in self.occurrences
            for column in self.attributes_of(binding)
        }


class _Resolver:
    """Resolves column names against the occurrences of one SELECT block."""

    def __init__(self, schema: DatabaseSchema, occurrences: dict[str, str]):
        self._schema = schema
        self._occurrences = occurrences
        # column name -> bindings that expose it
        self._column_homes: dict[str, list[str]] = {}
        for binding, table_name in occurrences.items():
            for column in schema.table(table_name).column_names:
                self._column_homes.setdefault(column, []).append(binding)

    def resolve_ref(self, ref: ast.ColumnRef) -> ast.ColumnRef:
        if ref.table is not None:
            if ref.table not in self._occurrences:
                raise UnknownTableError(ref.table)
            table = self._schema.table(self._occurrences[ref.table])
            if ref.name not in table:
                raise UnknownColumnError(ref.name, self._occurrences[ref.table])
            return ref
        homes = self._column_homes.get(ref.name, [])
        if not homes:
            raise UnknownColumnError(ref.name)
        if len(homes) > 1:
            raise AmbiguousColumnError(ref.name, homes)
        return ast.ColumnRef(ref.name, table=homes[0])

    def resolve(self, expr: ast.Expression) -> ast.Expression:
        """Rebuild ``expr`` with every ColumnRef fully qualified."""
        if isinstance(expr, ast.ColumnRef):
            return self.resolve_ref(expr)
        if isinstance(expr, (ast.Literal, ast.Star)):
            return expr
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(expr.op, self.resolve(expr.left), self.resolve(expr.right))
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, self.resolve(expr.operand))
        if isinstance(expr, ast.InList):
            return ast.InList(
                self.resolve(expr.operand),
                tuple(self.resolve(i) for i in expr.items),
                expr.negated,
            )
        if isinstance(expr, ast.Between):
            return ast.Between(
                self.resolve(expr.operand),
                self.resolve(expr.low),
                self.resolve(expr.high),
                expr.negated,
            )
        if isinstance(expr, ast.Like):
            return ast.Like(
                self.resolve(expr.operand), self.resolve(expr.pattern), expr.negated
            )
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(self.resolve(expr.operand), expr.negated)
        if isinstance(expr, ast.FunctionCall):
            return ast.FunctionCall(
                expr.name, tuple(self.resolve(a) for a in expr.args), expr.distinct
            )
        raise NormalizationError(f"cannot resolve expression {expr!r}")

    def expand_star(self, star: ast.Star) -> list[ast.ColumnRef]:
        bindings = [star.table] if star.table else list(self._occurrences)
        refs: list[ast.ColumnRef] = []
        for binding in bindings:
            if binding not in self._occurrences:
                raise UnknownTableError(binding)
            table = self._schema.table(self._occurrences[binding])
            refs.extend(ast.ColumnRef(c, table=binding) for c in table.column_names)
        return refs


def _collect_occurrences(
    from_items: tuple[ast.FromItem, ...],
) -> tuple[dict[str, str], list[ast.Expression]]:
    """Flatten the FROM clause into occurrences + ON-conditions."""
    occurrences: dict[str, str] = {}
    conditions: list[ast.Expression] = []

    def visit(item: ast.FromItem) -> None:
        if isinstance(item, ast.TableRef):
            binding = item.binding
            if binding in occurrences:
                raise NormalizationError(
                    f"duplicate table binding {binding!r}; use distinct aliases"
                )
            occurrences[binding] = item.name
            return
        if item.kind == "LEFT":
            raise NormalizationError(
                "outer joins are outside the SPJA fragment BEAS operates on"
            )
        visit(item.left)
        visit(item.right)
        if item.condition is not None:
            conditions.append(item.condition)

    for item in from_items:
        visit(item)
    return occurrences, conditions


def _as_attribute(ref: ast.ColumnRef) -> Attribute:
    assert ref.table is not None  # resolver guarantees qualification
    return Attribute(ref.table, ref.name)


def _literal_values(exprs: tuple[ast.Expression, ...]) -> Optional[list]:
    values = []
    for expr in exprs:
        if not isinstance(expr, ast.Literal) or expr.value is None:
            return None
        values.append(expr.value)
    return values


def _expand_range_conjunct(resolved: ast.Expression) -> list[ast.Expression]:
    """Rewrite a BETWEEN conjunct with non-NULL literal bounds into its
    comparison form, mirroring ``sql.fingerprint`` canonicalisation so
    both spellings of a range produce identical filters (and therefore
    identical rebind templates and subsumption summaries). The literal
    guard matches the fingerprint's: with a NULL or non-literal bound
    the decomposition is not truth-value equivalent under three-valued
    logic, so such conjuncts are kept verbatim."""
    if not isinstance(resolved, ast.Between):
        return [resolved]
    low, high = resolved.low, resolved.high
    if not (
        isinstance(low, ast.Literal)
        and low.value is not None
        and isinstance(high, ast.Literal)
        and high.value is not None
    ):
        return [resolved]
    if resolved.negated:
        return [
            ast.BinaryOp(
                "OR",
                ast.BinaryOp("<", resolved.operand, low),
                ast.BinaryOp(">", resolved.operand, high),
            )
        ]
    return [
        ast.BinaryOp(">=", resolved.operand, low),
        ast.BinaryOp("<=", resolved.operand, high),
    ]


def _intersect_selection(
    selections: dict[Attribute, tuple], attr: Attribute, values: list
) -> None:
    unique = sorted(set(values), key=lambda v: (str(type(v)), v))
    if attr in selections:
        existing = set(selections[attr])
        unique = [v for v in unique if v in existing]
    selections[attr] = tuple(unique)


def normalize(
    statement: ast.SelectStatement, schema: DatabaseSchema
) -> ConjunctiveQuery:
    """Bring one SELECT block into canonical SPJA form.

    Raises :class:`~repro.errors.NormalizationError` for constructs outside
    the supported fragment (outer joins, aggregates mixed incorrectly with
    group keys, set-returning selects without FROM, ...).
    """
    if not statement.from_items:
        raise NormalizationError("SELECT without FROM is not supported")
    occurrences, on_conditions = _collect_occurrences(statement.from_items)
    resolver = _Resolver(schema, occurrences)

    # ---- select list ---------------------------------------------------
    output: list[OutputItem] = []
    aggregates: list[OutputItem] = []
    plain_items: list[OutputItem] = []
    counter = 0
    for item in statement.items:
        if isinstance(item.expression, ast.Star):
            for ref in resolver.expand_star(item.expression):
                output.append(OutputItem(ref, ref.name))
                plain_items.append(output[-1])
            continue
        resolved = resolver.resolve(item.expression)
        counter += 1
        if item.alias:
            name = item.alias
        elif isinstance(resolved, ast.ColumnRef):
            name = resolved.name
        else:
            name = f"col{counter}"
        entry = OutputItem(resolved, name)
        output.append(entry)
        if ast.contains_aggregate(resolved):
            aggregates.append(entry)
        else:
            plain_items.append(entry)

    # ---- group by -------------------------------------------------------
    group_by: list[Attribute] = []
    group_refs: set[ast.ColumnRef] = set()
    for expr in statement.group_by:
        resolved = resolver.resolve(expr)
        if not isinstance(resolved, ast.ColumnRef):
            raise NormalizationError("GROUP BY supports plain columns only")
        group_by.append(_as_attribute(resolved))
        group_refs.add(resolved)

    if aggregates or group_by:
        for entry in plain_items:
            refs = ast.column_refs(entry.expression)
            if not refs:
                continue
            for ref in refs:
                if ref not in group_refs:
                    raise NormalizationError(
                        f"non-aggregated column {ref} must appear in GROUP BY"
                    )

    having = resolver.resolve(statement.having) if statement.having else None
    if having is not None and not (aggregates or group_by):
        raise NormalizationError("HAVING requires aggregation")

    # ---- where conjuncts -------------------------------------------------
    selections: dict[Attribute, tuple] = {}
    equalities: list[tuple[Attribute, Attribute]] = []
    filters: list[ResolvedPredicate] = []

    all_conjuncts = ast.conjuncts(statement.where) + [
        c for cond in on_conditions for c in ast.conjuncts(cond)
    ]
    resolved_conjuncts = [
        part
        for conjunct in all_conjuncts
        for part in _expand_range_conjunct(resolver.resolve(conjunct))
    ]
    for resolved in resolved_conjuncts:
        if isinstance(resolved, ast.BinaryOp) and resolved.op == "=":
            left, right = resolved.left, resolved.right
            if isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef):
                equalities.append((_as_attribute(left), _as_attribute(right)))
                continue
            if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
                if right.value is not None:
                    _intersect_selection(selections, _as_attribute(left), [right.value])
                    continue
            if isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
                if left.value is not None:
                    _intersect_selection(selections, _as_attribute(right), [left.value])
                    continue
        if isinstance(resolved, ast.InList) and not resolved.negated:
            if isinstance(resolved.operand, ast.ColumnRef):
                values = _literal_values(resolved.items)
                if values is not None:
                    _intersect_selection(
                        selections, _as_attribute(resolved.operand), values
                    )
                    continue
        attrs = frozenset(_as_attribute(r) for r in ast.column_refs(resolved))
        filters.append(ResolvedPredicate(resolved, attrs))

    # ORDER BY may name an output alias (e.g. ``ORDER BY cnt`` for
    # ``COUNT(*) AS cnt``); such references stay unqualified and engines
    # sort on the output column instead of a base attribute.
    output_names = {item.name for item in output}
    order_by = []
    for o in statement.order_by:
        expr = o.expression
        if (
            isinstance(expr, ast.ColumnRef)
            and expr.table is None
            and expr.name in output_names
        ):
            order_by.append(ast.OrderItem(expr, o.ascending))
        else:
            order_by.append(ast.OrderItem(resolver.resolve(expr), o.ascending))

    return ConjunctiveQuery(
        occurrences=occurrences,
        output=output,
        selections=selections,
        equalities=equalities,
        filters=filters,
        group_by=group_by,
        aggregates=aggregates,
        having=having,
        order_by=order_by,
        limit=statement.limit,
        offset=statement.offset,
        distinct=statement.distinct,
    )
