"""Execute SQL scripts (CREATE TABLE / INSERT / SELECT) against a Database.

This is the loader path of the prototype: a database can be bootstrapped
entirely from a ``.sql`` file, then queried through BEAS or the
conventional engine. SELECT statements inside a script are evaluated with
the conventional engine and their results returned in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.schema import Column, TableSchema
from repro.catalog.types import DataType, coerce_value
from repro.errors import StorageError
from repro.sql import ast
from repro.sql.parser import parse_script
from repro.storage.database import Database


@dataclass
class ScriptResult:
    """Outcome of running one script."""

    tables_created: list[str] = field(default_factory=list)
    rows_inserted: int = 0
    select_results: list = field(default_factory=list)  # list[QueryResult]


def create_table_from_ast(database: Database, statement: ast.CreateTable) -> TableSchema:
    """Apply one CREATE TABLE to ``database``."""
    columns = [
        Column(col.name, DataType(col.type_name)) for col in statement.columns
    ]
    keys = [statement.primary_key] if statement.primary_key else []
    schema = TableSchema(statement.name, columns, keys=keys)
    database.create_table(schema)
    return schema


def insert_from_ast(database: Database, statement: ast.InsertValues) -> int:
    """Apply one INSERT ... VALUES to ``database``; returns rows inserted."""
    table = database.table(statement.table)
    schema = table.schema
    if statement.columns:
        positions = schema.positions(statement.columns)
        if len(set(positions)) != len(positions):
            raise StorageError("duplicate column in INSERT column list")
    else:
        positions = tuple(range(schema.arity))

    for row_number, values in enumerate(statement.rows):
        if len(values) != len(positions):
            raise StorageError(
                f"INSERT row {row_number + 1} has {len(values)} values for "
                f"{len(positions)} columns"
            )
        row: list = [None] * schema.arity
        for position, literal in zip(positions, values):
            column = schema.columns[position]
            row[position] = coerce_value(literal.value, column.dtype)
        table.insert(tuple(row))
    return len(statement.rows)


def run_script(
    database: Database,
    sql: str,
    *,
    engine: Optional[object] = None,
) -> ScriptResult:
    """Run a script against ``database``.

    SELECT statements need an engine; by default a fresh
    :class:`~repro.engine.executor.ConventionalEngine` over ``database``
    is used (pass a BEAS instance or any object with ``execute`` to route
    them elsewhere).
    """
    from repro.engine.executor import ConventionalEngine

    result = ScriptResult()
    executor = engine
    for statement in parse_script(sql):
        if isinstance(statement, ast.CreateTable):
            create_table_from_ast(database, statement)
            result.tables_created.append(statement.name)
        elif isinstance(statement, ast.InsertValues):
            result.rows_inserted += insert_from_ast(database, statement)
        else:
            if executor is None:
                executor = ConventionalEngine(database)
            result.select_results.append(executor.execute(statement))
    return result
