"""Token kinds and the token record produced by the lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


#: Reserved words recognised case-insensitively; stored upper-case in tokens.
#: Type names (INT, DATE, ...) are deliberately NOT reserved — they are
#: parsed contextually inside CREATE TABLE so that columns named ``date``
#: or ``year`` (as in the TLC benchmark) remain ordinary identifiers.
KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
        "ORDER", "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT", "IN",
        "BETWEEN", "LIKE", "IS", "NULL", "TRUE", "FALSE", "JOIN", "INNER",
        "LEFT", "RIGHT", "OUTER", "CROSS", "ON", "UNION", "INTERSECT",
        "EXCEPT", "ALL", "ASC", "DESC", "COUNT", "SUM", "AVG", "MIN", "MAX",
        "CREATE", "TABLE", "PRIMARY", "KEY", "INSERT", "INTO", "VALUES",
    }
)

#: Multi-character operators first so the lexer can do longest-match.
OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "||")

PUNCTUATION = ("(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source location."""

    kind: TokenKind
    text: str
    value: Any
    position: int
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in words

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"
