"""Recursive-descent parser for the SQL subset.

Grammar (simplified):

    statement    := select_block ((UNION|INTERSECT|EXCEPT) [ALL] select_block)*
    select_block := SELECT [DISTINCT] items FROM from_list
                    [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                    [ORDER BY order_list] [LIMIT int [OFFSET int]]
    from_list    := from_item (',' from_item)*
    from_item    := table_ref (join_clause)*
    join_clause  := [INNER|LEFT [OUTER]|CROSS] JOIN table_ref [ON expr]
    expr         := or_expr; standard precedence with NOT, comparisons,
                    BETWEEN / IN / LIKE / IS NULL, additive, multiplicative,
                    unary minus, parentheses, aggregate calls.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenKind


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # ----------------------------------------------------------------- #
    # token plumbing
    # ----------------------------------------------------------------- #
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._current
        at = f" near {token.text!r}" if token.kind is not TokenKind.EOF else " at end"
        return ParseError(f"{message}{at}", token.line, token.column)

    def _check_keyword(self, *words: str) -> bool:
        return self._current.is_keyword(*words)

    def _accept_keyword(self, *words: str) -> bool:
        if self._check_keyword(*words):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> Token:
        if not self._check_keyword(word):
            raise self._error(f"expected {word}")
        return self._advance()

    def _accept_punct(self, text: str) -> bool:
        token = self._current
        if token.kind is TokenKind.PUNCTUATION and token.text == text:
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        token = self._current
        if token.kind is TokenKind.PUNCTUATION and token.text == text:
            return self._advance()
        raise self._error(f"expected {text!r}")

    def _accept_operator(self, *ops: str) -> Optional[str]:
        token = self._current
        if token.kind is TokenKind.OPERATOR and token.text in ops:
            self._advance()
            return token.text
        return None

    def _expect_identifier(self, what: str) -> str:
        token = self._current
        if token.kind is TokenKind.IDENTIFIER:
            self._advance()
            return token.text
        raise self._error(f"expected {what}")

    # ----------------------------------------------------------------- #
    # statements
    # ----------------------------------------------------------------- #
    def parse_statement(self) -> ast.Statement:
        left: ast.Statement = self._parse_select_block()
        while self._check_keyword("UNION", "INTERSECT", "EXCEPT"):
            op = self._advance().text
            use_all = self._accept_keyword("ALL")
            right = self._parse_select_block()
            left = ast.SetOperation(op, left, right, all=use_all)
        return left

    def parse_script_statement(self) -> ast.ScriptStatement:
        if self._check_keyword("CREATE"):
            return self._parse_create_table()
        if self._check_keyword("INSERT"):
            return self._parse_insert_values()
        return self.parse_statement()

    # ----------------------------------------------------------------- #
    # DDL / DML
    # ----------------------------------------------------------------- #
    #: accepted type spellings -> canonical DataType value names
    _TYPE_ALIASES = {
        "int": "int", "integer": "int", "bigint": "int", "smallint": "int",
        "float": "float", "real": "float", "double": "float",
        "numeric": "float", "decimal": "float",
        "string": "string", "text": "string", "varchar": "string",
        "char": "string",
        "bool": "bool", "boolean": "bool",
        "date": "date",
    }

    def _parse_create_table(self) -> ast.CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._expect_identifier("table name")
        self._expect_punct("(")
        columns: list[ast.ColumnDefinition] = []
        primary_key: tuple[str, ...] = ()
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                self._expect_punct("(")
                key = [self._expect_identifier("key column")]
                while self._accept_punct(","):
                    key.append(self._expect_identifier("key column"))
                self._expect_punct(")")
                if primary_key:
                    raise self._error("duplicate PRIMARY KEY clause")
                primary_key = tuple(key)
            else:
                column = self._expect_identifier("column name")
                type_token = self._current
                if type_token.kind is not TokenKind.IDENTIFIER:
                    raise self._error(f"expected a type for column {column!r}")
                canonical = self._TYPE_ALIASES.get(type_token.text.lower())
                if canonical is None:
                    raise self._error(
                        f"unknown column type {type_token.text!r}"
                    )
                self._advance()
                # swallow length arguments like VARCHAR(32)
                if self._accept_punct("("):
                    self._parse_nonnegative_int("type length")
                    self._expect_punct(")")
                columns.append(ast.ColumnDefinition(column, canonical))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        if not columns:
            raise self._error("CREATE TABLE needs at least one column")
        return ast.CreateTable(name, tuple(columns), primary_key)

    def _parse_insert_values(self) -> ast.InsertValues:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier("table name")
        columns: tuple[str, ...] = ()
        if self._accept_punct("("):
            names = [self._expect_identifier("column name")]
            while self._accept_punct(","):
                names.append(self._expect_identifier("column name"))
            self._expect_punct(")")
            columns = tuple(names)
        self._expect_keyword("VALUES")
        rows: list[tuple[ast.Expression, ...]] = []
        while True:
            self._expect_punct("(")
            values = [self._parse_insert_value()]
            while self._accept_punct(","):
                values.append(self._parse_insert_value())
            self._expect_punct(")")
            rows.append(tuple(values))
            if not self._accept_punct(","):
                break
        return ast.InsertValues(table, columns, tuple(rows))

    def _parse_insert_value(self) -> ast.Expression:
        expr = self.parse_expression()
        if not isinstance(expr, ast.Literal):
            raise self._error("INSERT VALUES entries must be literals")
        return expr

    def _parse_select_block(self) -> ast.SelectStatement:
        if self._accept_punct("("):
            inner = self._parse_select_block()
            self._expect_punct(")")
            return inner
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        if self._accept_keyword("ALL"):
            distinct = False
        items = self._parse_select_items()

        from_items: tuple[ast.FromItem, ...] = ()
        if self._accept_keyword("FROM"):
            from_items = self._parse_from_list()

        where = self.parse_expression() if self._accept_keyword("WHERE") else None

        group_by: tuple[ast.Expression, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(self._parse_expression_list())

        having = self.parse_expression() if self._accept_keyword("HAVING") else None

        order_by: tuple[ast.OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = tuple(self._parse_order_list())

        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_nonnegative_int("LIMIT")
            if self._accept_keyword("OFFSET"):
                offset = self._parse_nonnegative_int("OFFSET")

        return ast.SelectStatement(
            items=tuple(items),
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_nonnegative_int(self, clause: str) -> int:
        token = self._current
        if token.kind is TokenKind.INTEGER:
            self._advance()
            return int(token.value)
        raise self._error(f"expected a non-negative integer after {clause}")

    def _parse_select_items(self) -> list[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        expr = self.parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias after AS")
        elif self._current.kind is TokenKind.IDENTIFIER:
            alias = self._advance().text
        return ast.SelectItem(expr, alias)

    # ----------------------------------------------------------------- #
    # FROM clause
    # ----------------------------------------------------------------- #
    def _parse_from_list(self) -> tuple[ast.FromItem, ...]:
        items = [self._parse_from_item()]
        while self._accept_punct(","):
            items.append(self._parse_from_item())
        return tuple(items)

    def _parse_from_item(self) -> ast.FromItem:
        item: ast.FromItem = self._parse_table_ref()
        while True:
            kind = None
            if self._accept_keyword("CROSS"):
                kind = "CROSS"
            elif self._accept_keyword("INNER"):
                kind = "INNER"
            elif self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                kind = "LEFT"
            elif self._check_keyword("JOIN"):
                kind = "INNER"
            if kind is None:
                return item
            self._expect_keyword("JOIN")
            right = self._parse_table_ref()
            condition = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                condition = self.parse_expression()
            item = ast.Join(kind, item, right, condition)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self._expect_identifier("table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias after AS")
        elif self._current.kind is TokenKind.IDENTIFIER:
            alias = self._advance().text
        return ast.TableRef(name, alias)

    def _parse_order_list(self) -> list[ast.OrderItem]:
        items = []
        while True:
            expr = self.parse_expression()
            ascending = True
            if self._accept_keyword("DESC"):
                ascending = False
            else:
                self._accept_keyword("ASC")
            items.append(ast.OrderItem(expr, ascending))
            if not self._accept_punct(","):
                return items

    def _parse_expression_list(self) -> list[ast.Expression]:
        items = [self.parse_expression()]
        while self._accept_punct(","):
            items.append(self.parse_expression())
        return items

    # ----------------------------------------------------------------- #
    # expressions (precedence climbing)
    # ----------------------------------------------------------------- #
    def parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_additive()

        op = self._accept_operator("=", "<>", "!=", "<", "<=", ">", ">=")
        if op:
            op = "<>" if op == "!=" else op
            return ast.BinaryOp(op, left, self._parse_additive())

        negated = False
        if self._check_keyword("NOT"):
            # lookahead: NOT must be followed by IN/BETWEEN/LIKE to bind here
            nxt = self._tokens[self._index + 1]
            if nxt.is_keyword("IN", "BETWEEN", "LIKE"):
                self._advance()
                negated = True
            else:
                return left

        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            items = [self.parse_expression()]
            while self._accept_punct(","):
                items.append(self.parse_expression())
            self._expect_punct(")")
            return ast.InList(left, tuple(items), negated)
        if self._accept_keyword("LIKE"):
            return ast.Like(left, self._parse_additive(), negated)
        if self._accept_keyword("IS"):
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(left, is_negated)
        if negated:  # pragma: no cover - unreachable given lookahead
            raise self._error("dangling NOT")
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            op = self._accept_operator("+", "-", "||")
            if not op:
                return left
            left = ast.BinaryOp(op, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if not op:
                return left
            left = ast.BinaryOp(op, left, self._parse_unary())

    def _parse_unary(self) -> ast.Expression:
        if self._accept_operator("-"):
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self._accept_operator("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._current

        if token.kind in (TokenKind.INTEGER, TokenKind.FLOAT, TokenKind.STRING):
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)

        if token.is_keyword(*ast.AGGREGATES):
            name = self._advance().text
            self._expect_punct("(")
            distinct = self._accept_keyword("DISTINCT")
            if self._current.kind is TokenKind.OPERATOR and self._current.text == "*":
                self._advance()
                args: tuple[ast.Expression, ...] = (ast.Star(),)
            else:
                args = tuple(self._parse_expression_list())
            self._expect_punct(")")
            return ast.FunctionCall(name, args, distinct)

        if token.kind is TokenKind.OPERATOR and token.text == "*":
            self._advance()
            return ast.Star()

        if token.kind is TokenKind.IDENTIFIER:
            name = self._advance().text
            if self._accept_punct("."):
                nxt = self._current
                if nxt.kind is TokenKind.OPERATOR and nxt.text == "*":
                    self._advance()
                    return ast.Star(table=name)
                column = self._expect_identifier("column name after '.'")
                return ast.ColumnRef(column, table=name)
            return ast.ColumnRef(name)

        if self._accept_punct("("):
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr

        raise self._error("expected an expression")


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement (a trailing ``;`` is allowed)."""
    parser = _Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser._accept_punct(";")
    if parser._current.kind is not TokenKind.EOF:
        raise parser._error("unexpected trailing input")
    return statement


def parse_script(sql: str) -> list[ast.ScriptStatement]:
    """Parse a ``;``-separated script of CREATE TABLE / INSERT / SELECT."""
    parser = _Parser(tokenize(sql))
    statements: list[ast.ScriptStatement] = []
    while parser._current.kind is not TokenKind.EOF:
        statements.append(parser.parse_script_statement())
        had_semicolon = parser._accept_punct(";")
        if parser._current.kind is TokenKind.EOF:
            break
        if not had_semicolon:
            raise parser._error("expected ';' between statements")
    return statements


def parse_expression(sql: str) -> ast.Expression:
    """Parse a standalone expression (used by tests and the REPL-ish API)."""
    parser = _Parser(tokenize(sql))
    expr = parser.parse_expression()
    if parser._current.kind is not TokenKind.EOF:
        raise parser._error("unexpected trailing input")
    return expr
