"""Render AST nodes back to SQL text.

``parse(to_sql(stmt))`` returns an AST equal to ``stmt`` (tested with
hypothesis); the printed form is normalised (upper-case keywords, explicit
parentheses only where precedence requires them).
"""

from __future__ import annotations

from repro.sql import ast

_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    # comparisons 4, additive 5, multiplicative 6 (below)
}


def _escape_string(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


def _literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return _escape_string(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _precedence(expr: ast.Expression) -> int:
    if isinstance(expr, ast.BinaryOp):
        if expr.op in ("OR",):
            return 1
        if expr.op in ("AND",):
            return 2
        if expr.op in ast.COMPARISONS:
            return 4
        if expr.op in ("+", "-", "||"):
            return 5
        return 6
    if isinstance(expr, ast.UnaryOp):
        return 3 if expr.op == "NOT" else 7
    if isinstance(expr, (ast.InList, ast.Between, ast.Like, ast.IsNull)):
        return 4
    return 10  # atoms


def expression_to_sql(expr: ast.Expression) -> str:
    """Render one expression."""
    if isinstance(expr, ast.Literal):
        return _literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return str(expr)
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, ast.BinaryOp):
        mine = _precedence(expr)
        left = expression_to_sql(expr.left)
        right = expression_to_sql(expr.right)
        # comparisons are non-associative in the grammar (one predicate per
        # level), so comparison-level operands always need parentheses;
        # other operators parse left-associatively, so only an equal- or
        # lower-precedence right child needs them
        left_prec = _precedence(expr.left)
        if left_prec < mine or (left_prec == mine and expr.op in ast.COMPARISONS):
            left = f"({left})"
        if _precedence(expr.right) <= mine:
            right = f"({right})"
        return f"{left} {expr.op} {right}"
    if isinstance(expr, ast.UnaryOp):
        inner = expression_to_sql(expr.operand)
        if _precedence(expr.operand) < _precedence(expr):
            inner = f"({inner})"
        return f"NOT {inner}" if expr.op == "NOT" else f"-{inner}"
    if isinstance(expr, ast.InList):
        op = "NOT IN" if expr.negated else "IN"
        items = ", ".join(expression_to_sql(i) for i in expr.items)
        return f"{_operand(expr.operand)} {op} ({items})"
    if isinstance(expr, ast.Between):
        op = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{_operand(expr.operand)} {op} "
            f"{_operand(expr.low)} AND {_operand(expr.high)}"
        )
    if isinstance(expr, ast.Like):
        op = "NOT LIKE" if expr.negated else "LIKE"
        return f"{_operand(expr.operand)} {op} {_operand(expr.pattern)}"
    if isinstance(expr, ast.IsNull):
        op = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{_operand(expr.operand)} {op}"
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(expression_to_sql(a) for a in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{args})"
    raise TypeError(f"cannot print expression {expr!r}")  # pragma: no cover


def _operand(expr: ast.Expression) -> str:
    text = expression_to_sql(expr)
    if _precedence(expr) <= 4 and not isinstance(
        expr, (ast.Literal, ast.ColumnRef, ast.Star, ast.FunctionCall)
    ):
        return f"({text})"
    return text


def _from_item(item: ast.FromItem) -> str:
    if isinstance(item, ast.TableRef):
        return f"{item.name} AS {item.alias}" if item.alias else item.name
    left = _from_item(item.left)
    right = _from_item(item.right)
    if item.kind == "CROSS":
        return f"{left} CROSS JOIN {right}"
    keyword = "JOIN" if item.kind == "INNER" else f"{item.kind} JOIN"
    condition = f" ON {expression_to_sql(item.condition)}" if item.condition else ""
    return f"{left} {keyword} {right}{condition}"


def _select_to_sql(stmt: ast.SelectStatement) -> str:
    parts: list[str] = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    rendered_items = []
    for item in stmt.items:
        text = expression_to_sql(item.expression)
        if item.alias:
            text += f" AS {item.alias}"
        rendered_items.append(text)
    parts.append(", ".join(rendered_items))
    if stmt.from_items:
        parts.append("FROM " + ", ".join(_from_item(i) for i in stmt.from_items))
    if stmt.where is not None:
        parts.append("WHERE " + expression_to_sql(stmt.where))
    if stmt.group_by:
        parts.append("GROUP BY " + ", ".join(expression_to_sql(e) for e in stmt.group_by))
    if stmt.having is not None:
        parts.append("HAVING " + expression_to_sql(stmt.having))
    if stmt.order_by:
        rendered = []
        for order in stmt.order_by:
            text = expression_to_sql(order.expression)
            rendered.append(text if order.ascending else f"{text} DESC")
        parts.append("ORDER BY " + ", ".join(rendered))
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
        if stmt.offset is not None:
            parts.append(f"OFFSET {stmt.offset}")
    return " ".join(parts)


def to_sql(statement: ast.Statement) -> str:
    """Render a statement (SELECT block or set operation) as SQL text."""
    if isinstance(statement, ast.SelectStatement):
        return _select_to_sql(statement)
    if isinstance(statement, ast.SetOperation):
        left = to_sql(statement.left)
        right = to_sql(statement.right)
        keyword = statement.op + (" ALL" if statement.all else "")
        if isinstance(statement.left, ast.SetOperation):
            left = f"({left})"
        if isinstance(statement.right, ast.SetOperation):
            right = f"({right})"
        return f"{left} {keyword} {right}"
    raise TypeError(f"cannot print statement {statement!r}")  # pragma: no cover
