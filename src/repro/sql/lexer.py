"""Hand-written SQL lexer.

Produces a list of :class:`~repro.sql.tokens.Token` ending with an EOF
token. Handles line comments (``--``), block comments (``/* ... */``),
single-quoted strings with ``''`` escaping, double-quoted identifiers,
numbers (integer/float with exponent), keywords, operators, punctuation.
"""

from __future__ import annotations

from repro.errors import LexerError
from repro.sql.tokens import KEYWORDS, OPERATORS, PUNCTUATION, Token, TokenKind


def _is_digit(ch: str) -> bool:
    """ASCII digits only — ``str.isdigit`` accepts Unicode digits like '²'
    that ``int()`` rejects."""
    return "0" <= ch <= "9"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into SQL tokens (EOF-terminated)."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def location() -> tuple[int, int, int]:
        return i, line, i - line_start + 1

    def error(message: str) -> LexerError:
        pos, ln, col = location()
        return LexerError(message, pos, ln, col)

    while i < n:
        ch = text[i]

        # -- whitespace -------------------------------------------------
        if ch in " \t\r":
            i += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            line_start = i
            continue

        # -- comments ---------------------------------------------------
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end == -1 else end
            continue
        if ch == "/" and text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise error("unterminated block comment")
            line += text.count("\n", i, end)
            if "\n" in text[i:end]:
                line_start = i + text[i:end].rfind("\n") + 1
            i = end + 2
            continue

        pos, ln, col = location()

        # -- string literal ----------------------------------------------
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise error("unterminated string literal")
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                if text[j] == "\n":
                    line += 1
                    line_start = j + 1
                parts.append(text[j])
                j += 1
            value = "".join(parts)
            tokens.append(Token(TokenKind.STRING, text[i : j + 1], value, pos, ln, col))
            i = j + 1
            continue

        # -- quoted identifier --------------------------------------------
        if ch == '"':
            j = text.find('"', i + 1)
            if j == -1:
                raise error("unterminated quoted identifier")
            name = text[i + 1 : j]
            if not name:
                raise error("empty quoted identifier")
            tokens.append(Token(TokenKind.IDENTIFIER, name, name, pos, ln, col))
            i = j + 1
            continue

        # -- number --------------------------------------------------------
        if _is_digit(ch) or (ch == "." and i + 1 < n and _is_digit(text[i + 1])):
            j = i
            is_float = False
            while j < n and _is_digit(text[j]):
                j += 1
            if j < n and text[j] == "." and (j + 1 >= n or text[j + 1] != "."):
                is_float = True
                j += 1
                while j < n and _is_digit(text[j]):
                    j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and _is_digit(text[k]):
                    is_float = True
                    j = k
                    while j < n and _is_digit(text[j]):
                        j += 1
            literal = text[i:j]
            if is_float:
                tokens.append(
                    Token(TokenKind.FLOAT, literal, float(literal), pos, ln, col)
                )
            else:
                tokens.append(
                    Token(TokenKind.INTEGER, literal, int(literal), pos, ln, col)
                )
            i = j
            continue

        # -- identifier / keyword -------------------------------------------
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, upper, pos, ln, col))
            else:
                tokens.append(Token(TokenKind.IDENTIFIER, word, word, pos, ln, col))
            i = j
            continue

        # -- operators (longest match) ----------------------------------------
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenKind.OPERATOR, op, op, pos, ln, col))
                i += len(op)
                matched = True
                break
        if matched:
            continue

        # -- punctuation -------------------------------------------------------
        if ch in PUNCTUATION:
            tokens.append(Token(TokenKind.PUNCTUATION, ch, ch, pos, ln, col))
            i += 1
            continue

        raise error(f"unexpected character {ch!r}")

    pos, ln, col = location()
    tokens.append(Token(TokenKind.EOF, "", None, pos, ln, col))
    return tokens
