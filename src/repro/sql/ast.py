"""Abstract syntax tree for the SQL subset.

All nodes are frozen dataclasses: hashable, comparable by value, safe to
share between plans. Expression nodes and statement nodes live in one
module because the grammar is small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Expression:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: int, float, str, bool, or None (NULL)."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A possibly-qualified column reference (``t.c`` or ``c``)."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``t.*`` (select list and COUNT(*))."""

    table: Optional[str] = None


#: Comparison operators normalised by the parser (``!=`` becomes ``<>``).
COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")
ARITHMETIC = ("+", "-", "*", "/", "%", "||")
BOOLEAN_OPS = ("AND", "OR")


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operator: arithmetic, comparison, or AND/OR."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary operator: ``NOT`` or arithmetic negation ``-``."""

    op: str  # 'NOT' | '-'
    operand: Expression


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%``/``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class FunctionCall(Expression):
    """An aggregate call; ``COUNT(*)`` has a single :class:`Star` argument."""

    name: str  # upper-case
    args: tuple[Expression, ...]
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATES


# --------------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry with an optional output alias."""

    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A base-table reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """Name under which columns of this occurrence are addressed."""
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    """An explicit join between two FROM items."""

    kind: str  # 'INNER' | 'LEFT' | 'CROSS'
    left: "FromItem"
    right: "FromItem"
    condition: Optional[Expression] = None


FromItem = Union[TableRef, Join]


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement:
    """A single SELECT block."""

    items: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...] = ()
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class SetOperation:
    """``left UNION|INTERSECT|EXCEPT [ALL] right``."""

    op: str  # 'UNION' | 'INTERSECT' | 'EXCEPT'
    left: "Statement"
    right: "Statement"
    all: bool = False


Statement = Union[SelectStatement, SetOperation]


# --------------------------------------------------------------------------- #
# DDL / DML statements (CREATE TABLE, INSERT INTO ... VALUES)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ColumnDefinition:
    """One column of a CREATE TABLE: name + type name (validated later)."""

    name: str
    type_name: str  # 'int' | 'float' | 'string' | 'bool' | 'date' (aliases ok)


@dataclass(frozen=True)
class CreateTable:
    """``CREATE TABLE name (col type, ..., PRIMARY KEY (a, b))``."""

    name: str
    columns: tuple[ColumnDefinition, ...]
    primary_key: tuple[str, ...] = ()


@dataclass(frozen=True)
class InsertValues:
    """``INSERT INTO name [(cols)] VALUES (...), (...)``.

    Values are literals only (the fragment the loader needs).
    """

    table: str
    columns: tuple[str, ...]  # empty = positional
    rows: tuple[tuple[Expression, ...], ...]


ScriptStatement = Union[Statement, CreateTable, InsertValues]


# --------------------------------------------------------------------------- #
# traversal helpers
# --------------------------------------------------------------------------- #


def walk_expression(expr: Expression):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, BinaryOp):
        yield from walk_expression(expr.left)
        yield from walk_expression(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, InList):
        yield from walk_expression(expr.operand)
        for item in expr.items:
            yield from walk_expression(item)
    elif isinstance(expr, Between):
        yield from walk_expression(expr.operand)
        yield from walk_expression(expr.low)
        yield from walk_expression(expr.high)
    elif isinstance(expr, Like):
        yield from walk_expression(expr.operand)
        yield from walk_expression(expr.pattern)
    elif isinstance(expr, IsNull):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from walk_expression(arg)


def column_refs(expr: Expression) -> list[ColumnRef]:
    """All column references inside ``expr``, in syntactic order."""
    return [node for node in walk_expression(expr) if isinstance(node, ColumnRef)]


def contains_aggregate(expr: Expression) -> bool:
    return any(
        isinstance(node, FunctionCall) and node.is_aggregate
        for node in walk_expression(expr)
    )


def conjuncts(expr: Optional[Expression]) -> list[Expression]:
    """Split a predicate on top-level AND into a flat conjunct list."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(parts: list[Expression]) -> Optional[Expression]:
    """Rebuild a conjunction from a list of conjuncts (None when empty)."""
    result: Optional[Expression] = None
    for part in parts:
        result = part if result is None else BinaryOp("AND", result, part)
    return result
