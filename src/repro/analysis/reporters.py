"""beaslint output renderers: human text and machine JSON."""

from __future__ import annotations

import json

from repro.analysis.core import LintReport, all_checkers


def render_text(report: LintReport) -> str:
    """The human report: one line per finding, then a summary line."""
    lines = [finding.render() for finding in report.findings]
    summary = (
        f"beaslint: {len(report.findings)} finding"
        f"{'' if len(report.findings) == 1 else 's'} "
        f"({len(report.suppressed)} suppressed) across "
        f"{report.files_checked} files, rules: {', '.join(report.rules)}"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The CI report: stable keys, findings sorted by location."""
    checkers = all_checkers()
    payload = {
        "files_checked": report.files_checked,
        "rules": {
            rule: checkers[rule].description
            for rule in report.rules
            if rule in checkers
        },
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "column": f.column,
                "message": f.message,
            }
            for f in report.findings
        ],
        "suppressed": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in report.suppressed
        ],
        "clean": report.clean,
    }
    return json.dumps(payload, indent=2, sort_keys=False)
