"""beaslint core: findings, suppressions, the checker registry, the runner.

A *checker* encodes one house invariant as an AST pass over a single
module. Checkers are registered via :func:`register` and run by
:func:`run_lint` over every ``*.py`` file of the ``repro`` package (or
an explicit file list). Each checker names the rule it enforces; a rule
can be suppressed at one site with a justified marker::

    something_flagged()  # beaslint: ok(rule-name) - the reason it is sound

The marker *requires* a reason after `` - `` — a bare ``ok(rule)`` is
reported as a malformed suppression (rule ``suppression``), as is one
naming a rule no checker registers. A comment-only marker line
suppresses findings on the line directly below it; a trailing marker
suppresses findings on its own line.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

#: rule id used for malformed/unknown suppression markers themselves
SUPPRESSION_RULE = "suppression"

_SUPPRESS_RE = re.compile(r"#\s*beaslint:\s*ok\(([^)]*)\)(.*)$")
_REASON_RE = re.compile(r"^\s*-\s*\S")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # as given to the runner (repo-relative for package runs)
    line: int
    column: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class _Suppression:
    """A parsed ``beaslint: ok(...)`` marker."""

    rules: frozenset[str]
    lines: frozenset[int]  # finding lines this marker covers
    marker_line: int


class ModuleContext:
    """One module under analysis: source, AST, suppressions, helpers."""

    def __init__(self, source: str, relpath: str, path: Optional[str] = None):
        self.source = source
        #: path relative to the ``repro`` package root (posix separators);
        #: checkers scope themselves by this (e.g. ``"serving/server.py"``)
        self.relpath = relpath.replace("\\", "/")
        #: display path used in findings
        self.path = path if path is not None else relpath
        self.tree = ast.parse(source)
        self.lines = source.splitlines()
        self.suppressions: list[_Suppression] = []
        self.suppression_findings: list[Finding] = []
        self._parents: Optional[dict[ast.AST, ast.AST]] = None
        self._parse_suppressions()

    # ------------------------------------------------------------------ #
    def _iter_comments(self) -> list[tuple[int, int, str]]:
        """(line, column, text) of every real comment token.

        Tokenizing (rather than regex over raw lines) keeps markers in
        string literals and docstrings from parsing as suppressions.
        """
        out: list[tuple[int, int, str]] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    out.append((token.start[0], token.start[1], token.string))
        except tokenize.TokenError:  # pragma: no cover - ast.parse already passed
            pass
        return out

    def _parse_suppressions(self) -> None:
        for number, column, text in self._iter_comments():
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if not rules or not _REASON_RE.match(match.group(2)):
                self.suppression_findings.append(
                    Finding(
                        rule=SUPPRESSION_RULE,
                        path=self.path,
                        line=number,
                        column=column + match.start() + 1,
                        message=(
                            "malformed suppression: expected "
                            "`# beaslint: ok(<rule>) - <reason>` with a "
                            "non-empty reason"
                        ),
                    )
                )
                continue
            comment_only = self.lines[number - 1][:column].strip() == ""
            covered = {number + 1} if comment_only else {number}
            self.suppressions.append(
                _Suppression(
                    rules=rules, lines=frozenset(covered), marker_line=number
                )
            )

    def suppressed(self, finding: Finding) -> bool:
        return any(
            finding.rule in s.rules and finding.line in s.lines
            for s in self.suppressions
        )

    def unknown_rule_findings(self, known: frozenset[str]) -> list[Finding]:
        out: list[Finding] = []
        for marker in self.suppressions:
            for rule in sorted(marker.rules - known):
                out.append(
                    Finding(
                        rule=SUPPRESSION_RULE,
                        path=self.path,
                        line=marker.marker_line,
                        column=1,
                        message=f"suppression names unknown rule {rule!r}",
                    )
                )
        return out

    # ------------------------------------------------------------------ #
    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """child node -> parent node, for upward walks."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


# --------------------------------------------------------------------------- #
# checkers + registry
# --------------------------------------------------------------------------- #
class Checker:
    """Base class: one rule, one AST pass per module."""

    #: rule id, kebab-case; used in reports and suppression markers
    rule: str = ""
    #: one-line description for ``lint --list-rules`` and the docs
    description: str = ""

    def applies_to(self, relpath: str) -> bool:
        return True

    def check(self, module: ModuleContext) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError


_REGISTRY: dict[str, Checker] = {}


def register(checker_class: type) -> type:
    """Class decorator: instantiate and register one checker."""
    checker = checker_class()
    if not checker.rule:
        raise ValueError(f"{checker_class.__name__} declares no rule id")
    if checker.rule in _REGISTRY:
        raise ValueError(f"duplicate checker for rule {checker.rule!r}")
    _REGISTRY[checker.rule] = checker
    return checker_class


def all_checkers() -> dict[str, Checker]:
    """rule id -> checker instance, registration order preserved."""
    return dict(_REGISTRY)


# --------------------------------------------------------------------------- #
# the runner
# --------------------------------------------------------------------------- #
@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def package_root() -> Path:
    """The ``repro`` package directory (the default lint target)."""
    return Path(__file__).resolve().parent.parent


def iter_source_files(root: Optional[Path] = None) -> list[Path]:
    base = root if root is not None else package_root()
    return sorted(base.rglob("*.py"))


def _select(rules: Optional[Sequence[str]]) -> list[Checker]:
    registry = all_checkers()
    if rules is None:
        return list(registry.values())
    selected: list[Checker] = []
    for rule in rules:
        if rule not in registry:
            raise KeyError(
                f"unknown rule {rule!r}; known: {', '.join(sorted(registry))}"
            )
        selected.append(registry[rule])
    return selected


def _lint_module(
    module: ModuleContext, checkers: Iterable[Checker], report: LintReport
) -> None:
    known = frozenset(all_checkers()) | {SUPPRESSION_RULE}
    produced = list(module.suppression_findings)
    produced.extend(module.unknown_rule_findings(known))
    for checker in checkers:
        if not checker.applies_to(module.relpath):
            continue
        produced.extend(checker.check(module))
    for finding in produced:
        if module.suppressed(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    *,
    rules: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Lint ``paths`` (default: every module of the ``repro`` package).

    ``root`` anchors the checker-scoping relpaths; files outside it are
    scoped by their bare filename. Findings are sorted by location.
    """
    base = root if root is not None else package_root()
    targets = list(paths) if paths is not None else iter_source_files(base)
    checkers = _select(rules)
    report = LintReport(rules=[c.rule for c in checkers])
    for target in targets:
        target = Path(target)
        try:
            relpath = target.resolve().relative_to(base.resolve()).as_posix()
        except ValueError:
            relpath = target.name
        module = ModuleContext(
            target.read_text(encoding="utf-8"), relpath, path=str(target)
        )
        _lint_module(module, checkers, report)
        report.files_checked += 1
    key: Callable[[Finding], tuple] = lambda f: (f.path, f.line, f.column, f.rule)
    report.findings.sort(key=key)
    report.suppressed.sort(key=key)
    return report


def lint_source(
    source: str, relpath: str, *, rules: Optional[Sequence[str]] = None
) -> LintReport:
    """Lint one in-memory module (the fixture-test entry point).

    ``relpath`` plays the package-relative path used for checker
    scoping, e.g. ``"engine/expressions.py"`` to opt a snippet into the
    predicate-evaluation rules.
    """
    module = ModuleContext(source, relpath)
    report = LintReport(rules=[c.rule for c in _select(rules)])
    _lint_module(module, _select(rules), report)
    report.files_checked = 1
    return report
