"""beaslint — the house static-analysis pass.

Every soundness bug this repo has shipped belongs to a small set of
recurring classes: unguarded NULL/3VL comparisons (PRs 3, 6, 7),
metrics-accounting holes like a hardcoded ``seconds=0.0`` (PR 7),
missing version-vector/generation guards on cache serves (PR 6), and
lock-order / env-validation discipline (PRs 2, 5). ``beaslint`` turns
those invariants into machine-checked rules instead of test-only
folklore — the same move the symbolic query-equivalence line makes for
semantic soundness (see ``docs/invariants.md`` for the catalogue).

Usage::

    python -m repro.cli lint [--format text|json] [--rule RULE ...]

or programmatically::

    from repro.analysis import run_lint
    report = run_lint()          # lints the whole repro package
    assert not report.findings

Findings are suppressed per site with a justified marker::

    risky_call()  # beaslint: ok(rule-name) - why this site is sound

A suppression without a reason is itself a finding.
"""

from repro.analysis.core import (
    Checker,
    Finding,
    LintReport,
    ModuleContext,
    all_checkers,
    lint_source,
    register,
    run_lint,
)
from repro.analysis.reporters import render_json, render_text

# importing the package registers every house checker
from repro.analysis import checkers as _checkers  # noqa: F401  (registration)

__all__ = [
    "Checker",
    "Finding",
    "LintReport",
    "ModuleContext",
    "all_checkers",
    "lint_source",
    "register",
    "render_json",
    "render_text",
    "run_lint",
]
