"""storage-codec: value coding on storage boundaries lives in codec.py.

The bug class (PR 9): every serialization boundary that invented its own
value-to-text coding drifted from the others — CSV round-trips lost the
distinction between NULL and the empty string, a pickled snapshot wire
minted fresh NaN objects that failed bucket-identity accounting, and
float cells printed through ``str`` stopped round-tripping at 17
significant digits.  ``repro/storage/codec.py`` now owns the one
canonical codec (:func:`~repro.storage.codec.encode_value` /
:func:`~repro.storage.codec.decode_value` and the NaN canonicalisation
family); any ad-hoc ``float(...)`` parse or ``repr(...)`` print inside
the other storage modules is a second, divergent codec waiting to
happen and is flagged here.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Finding, ModuleContext, register

_CODING_CALLS = frozenset({"float", "repr"})


@register
class StorageCodecChecker(Checker):
    rule = "storage-codec"
    description = (
        "ad-hoc float(...)/repr(...) value coding in storage modules "
        "belongs in repro/storage/codec.py's canonical codec"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("storage/") and relpath != "storage/codec.py"

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _CODING_CALLS:
                findings.append(
                    module.finding(
                        self.rule,
                        node,
                        f"`{func.id}(...)` in a storage module — encode/"
                        f"decode values through repro.storage.codec so the "
                        f"CSV, WAL, and mmap formats cannot drift apart",
                    )
                )
        return findings
