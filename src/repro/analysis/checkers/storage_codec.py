"""storage-codec: value coding on storage boundaries lives in codec.py.

The bug class (PR 9): every serialization boundary that invented its own
value-to-text coding drifted from the others — CSV round-trips lost the
distinction between NULL and the empty string, a pickled snapshot wire
minted fresh NaN objects that failed bucket-identity accounting, and
float cells printed through ``str`` stopped round-tripping at 17
significant digits.  ``repro/storage/codec.py`` now owns the one
canonical codec (:func:`~repro.storage.codec.encode_value` /
:func:`~repro.storage.codec.decode_value` and the NaN canonicalisation
family); any ad-hoc ``float(...)`` parse or ``repr(...)`` print inside
the other storage modules is a second, divergent codec waiting to
happen and is flagged here.

PR 10 widened the rule to ``repro/distributed/``: the serving fleet's
socket wire carries the same values, so its modules must route cells
through the codec and frames through the WAL's framing helpers
(``frame_record``/``split_frame_header``).  There, hand-rolled
``struct.pack``/``struct.unpack`` framing is the wire-format twin of the
ad-hoc value codec and is flagged too (``storage/wal.py`` itself owns
the one ``struct`` frame header, so storage modules are exempt from
that half of the rule).
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Finding, ModuleContext, register

_CODING_CALLS = frozenset({"float", "repr"})

#: Only the fleet's wire modules are banned from ``struct`` — the WAL
#: legitimately defines the canonical frame header with it.
_STRUCT_BANNED_PREFIX = "distributed/"


@register
class StorageCodecChecker(Checker):
    rule = "storage-codec"
    description = (
        "ad-hoc float(...)/repr(...) value coding in storage/distributed "
        "modules belongs in repro/storage/codec.py's canonical codec "
        "(and wire framing in the WAL's framing helpers)"
    )

    def applies_to(self, relpath: str) -> bool:
        if relpath.startswith("distributed/"):
            return True
        return relpath.startswith("storage/") and relpath != "storage/codec.py"

    def check(self, module: ModuleContext) -> list[Finding]:
        ban_struct = module.relpath.startswith(_STRUCT_BANNED_PREFIX)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _CODING_CALLS:
                findings.append(
                    module.finding(
                        self.rule,
                        node,
                        f"`{func.id}(...)` in a storage-boundary module — "
                        f"encode/decode values through repro.storage.codec "
                        f"so the CSV, WAL, mmap, and socket formats cannot "
                        f"drift apart",
                    )
                )
            elif (
                ban_struct
                and isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "struct"
            ):
                findings.append(
                    module.finding(
                        self.rule,
                        node,
                        f"`struct.{func.attr}(...)` in a distributed wire "
                        f"module — frame wire bytes through "
                        f"repro.storage.wal's frame_record/"
                        f"split_frame_header so pipe, file, and socket "
                        f"framing cannot drift apart",
                    )
                )
        return findings
