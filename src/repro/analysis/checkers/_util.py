"""Shared AST helpers for the house checkers."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

#: nodes that open a new variable scope
SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a receiver chain: ``self.a.b`` -> ``"b"``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return terminal_name(node.func)
    if isinstance(node, ast.Subscript):
        return terminal_name(node.value)
    return None


def expr_key(node: ast.AST) -> str:
    """A canonical text key for an expression (``row[index]``, ``self.low``)."""
    try:
        return ast.unparse(node)
    except Exception:  # noqa: BLE001 - unparse failure degrades to node dump
        return ast.dump(node)


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s subtree without descending into nested scopes.

    ``ClassDef`` is a boundary too: class-body names are not visible to
    the methods inside, so facts collected there must not leak out.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (*SCOPE_NODES, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(child))


def enclosing_scopes(
    node: ast.AST, parents: dict[ast.AST, ast.AST], tree: ast.AST
) -> list[ast.AST]:
    """Scope chain from the innermost function/lambda out to the module."""
    chain: list[ast.AST] = []
    current = parents.get(node)
    while current is not None:
        if isinstance(current, SCOPE_NODES):
            chain.append(current)
        current = parents.get(current)
    chain.append(tree)
    return chain
