"""except-discipline: broad excepts need a spelled-out justification.

The bug class: ``except Exception: pass`` swallowed a real soundness
error more than once during review (a dropped table mid-batch, a
compile failure silently degrading a subsumption probe). Broad catches
are sometimes right — worker-pool fallback boundaries, ``__del__`` —
but the *reason* must be on the line, either as
``# noqa: BLE001 - <reason>`` or a
``# beaslint: ok(except-discipline) - <reason>`` marker. Anything
narrower than ``Exception``/``BaseException`` passes unconditionally.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import Checker, Finding, ModuleContext, register

_BROAD = frozenset({"Exception", "BaseException"})
_NOQA_REASON_RE = re.compile(r"noqa:\s*BLE001\s*-\s*\S")


def _is_broad(handler_type: ast.AST) -> bool:
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _BROAD
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(element) for element in handler_type.elts)
    return False


@register
class ExceptDisciplineChecker(Checker):
    rule = "except-discipline"
    description = (
        "broad `except Exception`/bare `except` requires an on-line "
        "justification (`# noqa: BLE001 - reason` or a beaslint marker)"
    )

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is not None and not _is_broad(node.type):
                continue
            line = ""
            if 1 <= node.lineno <= len(module.lines):
                line = module.lines[node.lineno - 1]
            if _NOQA_REASON_RE.search(line):
                continue
            shape = "bare `except:`" if node.type is None else (
                f"broad `except {ast.unparse(node.type)}`"
            )
            findings.append(
                module.finding(
                    self.rule,
                    node,
                    f"{shape} without a justification — narrow the type, or "
                    f"state the reason with `# noqa: BLE001 - <reason>` or "
                    f"`# beaslint: ok(except-discipline) - <reason>`",
                )
            )
        return findings
