"""The house checkers. Importing this package registers every rule."""

from repro.analysis.checkers import (  # noqa: F401  (registration imports)
    cache_guard,
    env_access,
    except_discipline,
    lock_discipline,
    metrics_accounting,
    null_guard,
    storage_codec,
)
