"""metrics-accounting: ExecutionMetrics sites must account honestly.

The bug class (PR 7): cache-hit and subsumed serves constructed
``ExecutionMetrics(..., seconds=0.0)``, so the learned router trained
on "free" latencies and the cost-aware admission compared against
zeros. A construction site may only write fields the dataclass
declares, and must never hardcode a zero latency — measure it
(``time.perf_counter()`` deltas) or leave the field to its default.
"""

from __future__ import annotations

import ast
import dataclasses

from repro.analysis.checkers._util import terminal_name
from repro.analysis.core import Checker, Finding, ModuleContext, register


def _declared_fields() -> frozenset[str]:
    from repro.engine.metrics import ExecutionMetrics

    return frozenset(f.name for f in dataclasses.fields(ExecutionMetrics))


def _is_zero_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == 0
    )


@register
class MetricsAccountingChecker(Checker):
    rule = "metrics-accounting"
    description = (
        "ExecutionMetrics sites may only write declared fields and must "
        "never hardcode seconds=0 — measure the latency or use the default"
    )

    def check(self, module: ModuleContext) -> list[Finding]:
        declared = _declared_fields()
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                if terminal_name(node.func) != "ExecutionMetrics":
                    continue
                findings.extend(self._check_call(module, node, declared))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "seconds"
                        and _is_zero_literal(node.value)
                    ):
                        findings.append(
                            module.finding(
                                self.rule,
                                node,
                                "`.seconds = 0` literal — measure the "
                                "latency (perf_counter delta) instead of "
                                "zeroing it",
                            )
                        )
        return findings

    def _check_call(
        self, module: ModuleContext, node: ast.Call, declared: frozenset[str]
    ) -> list[Finding]:
        findings: list[Finding] = []
        if node.args:
            findings.append(
                module.finding(
                    self.rule,
                    node,
                    "positional ExecutionMetrics args — use keywords so the "
                    "field being written is auditable",
                )
            )
        for keyword in node.keywords:
            if keyword.arg is None:
                findings.append(
                    module.finding(
                        self.rule,
                        node,
                        "`**kwargs` into ExecutionMetrics hides which fields "
                        "are written — spell them out",
                    )
                )
            elif keyword.arg not in declared:
                findings.append(
                    module.finding(
                        self.rule,
                        node,
                        f"unknown ExecutionMetrics field `{keyword.arg}` — "
                        f"declare it on the dataclass first",
                    )
                )
            elif keyword.arg == "seconds" and _is_zero_literal(keyword.value):
                findings.append(
                    module.finding(
                        self.rule,
                        node,
                        "hardcoded `seconds=0` — measure the serve latency "
                        "(perf_counter delta); zero latencies poison the "
                        "router's cost model",
                    )
                )
        return findings
