"""cache-guard: serving-path cache reads must check freshness.

The bug class (PR 6, and the PR 2 invariant it refined): a cached
result served without re-validating the table version vector / catalog
schema generation can return rows from before a maintenance batch — a
stale read the differential suites exist to catch. Any serving-path
function that pulls rows out of a cache (``.lookup(...)`` /
``.peek(...)``) must, in the same function, reference the freshness
machinery (``_entry_fresh``, ``schema_generation``, version vectors).

``serving/shard.py`` and ``serving/cache.py`` are out of scope: they
*implement* the guarded containers this rule forces callers through.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers._util import terminal_name, walk_scope
from repro.analysis.core import Checker, Finding, ModuleContext, register

#: names whose presence marks a freshness check
FRESHNESS_TOKENS = frozenset(
    {
        "_entry_fresh",
        "schema_generation",
        "generation",
        "table_versions",
        "versions",
        "observe_version",
        "version",
    }
)

_READ_ATTRS = frozenset({"lookup", "peek"})

#: modules that implement (rather than consume) the guarded containers
_EXEMPT = frozenset({"serving/shard.py", "serving/cache.py"})


@register
class CacheGuardChecker(Checker):
    rule = "cache-guard"
    description = (
        "serving-path cache reads returning rows must sit in a function "
        "that validates version-vector / schema-generation freshness"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("serving/") and relpath not in _EXEMPT

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            reads: list[ast.Call] = []
            fresh = False
            for node in walk_scope(scope):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _READ_ATTRS
                ):
                    reads.append(node)
                if isinstance(node, ast.Attribute) and node.attr in FRESHNESS_TOKENS:
                    fresh = True
                elif isinstance(node, ast.Name) and node.id in FRESHNESS_TOKENS:
                    fresh = True
                elif (
                    isinstance(node, ast.Call)
                    and (terminal_name(node.func) or "") in FRESHNESS_TOKENS
                ):
                    fresh = True
            if reads and not fresh:
                for call in reads:
                    attr = terminal_name(call.func)
                    findings.append(
                        module.finding(
                            self.rule,
                            call,
                            f"cache read `.{attr}(...)` in `{scope.name}` "
                            f"with no freshness check in the same function "
                            f"— validate the version vector or schema "
                            f"generation before serving cached rows",
                        )
                    )
        return findings
