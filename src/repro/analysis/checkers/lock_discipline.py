"""lock-discipline: shard locks only via the canonical-order helpers.

The bug class (PR 2): multi-shard operations deadlock unless every
path acquires shard locks in the canonical ``order_shards`` order, and
holding a leaf mutex while dispatching work (pool, engine execution)
inverts the lock hierarchy. ``serving/shard.py`` owns the canonical
helpers (``acquire_read_ordered``, ``ShardLock.read/write``); everyone
else must go through them.

Three rules:

1. ``.acquire_read()`` / ``.acquire_write()`` outside ``serving/shard.py``
   is flagged unless the receiver is the level-0 ``_schema_lock``.
2. Inside a ``with`` on a leaf mutex (``_mutex``, ``_lock``, ...), no
   further lock acquisition and no dispatch/execute call may appear.
3. A serving-path function that takes a write lock must not also
   dispatch engine execution while structuring that critical section.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers._util import SCOPE_NODES, terminal_name, walk_scope
from repro.analysis.core import Checker, Finding, ModuleContext, register

#: leaf (level-max) mutex names — nothing may be acquired under these
LEAF_LOCKS = frozenset({"_mutex", "_admin_lock", "_dep_lock", "_lock", "mutex"})

#: calls that hand work to the pool or the engine
DISPATCH_CALLS = frozenset(
    {
        "execute",
        "execute_decided",
        "_execute_decided",
        "run_plan",
        "run_chunks",
        "dispatch",
        "serve",
    }
)

_ACQUIRE_ATTRS = frozenset({"acquire_read", "acquire_write"})


def _is_leaf_lock_context(expr: ast.AST) -> bool:
    """Does this ``with`` item hold a leaf mutex?"""
    if isinstance(expr, ast.Call):
        name = terminal_name(expr.func)
        if name in {"read", "write"} and isinstance(expr.func, ast.Attribute):
            receiver = terminal_name(expr.func.value) or ""
            return receiver in LEAF_LOCKS
        return False
    return (terminal_name(expr) or "") in LEAF_LOCKS


def _is_lock_acquisition(node: ast.Call) -> bool:
    name = terminal_name(node.func)
    if name in _ACQUIRE_ATTRS:
        return True
    if name in {"read", "write"} and isinstance(node.func, ast.Attribute):
        receiver = (terminal_name(node.func.value) or "").lower()
        return receiver in LEAF_LOCKS or "lock" in receiver
    return False


@register
class LockDisciplineChecker(Checker):
    rule = "lock-discipline"
    description = (
        "shard locks must go through serving/shard.py's canonical-order "
        "helpers; no acquisition or dispatch while a leaf mutex is held"
    )

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        if module.relpath != "serving/shard.py":
            findings.extend(self._raw_acquires(module))
        if (
            module.relpath.startswith("serving/")
            and module.relpath != "serving/shard.py"
        ) or module.relpath == "bounded/subsume.py":
            findings.extend(self._leaf_regions(module))
        if module.relpath.startswith("serving/"):
            findings.extend(self._write_then_dispatch(module))
        return findings

    # -- rule 1 -------------------------------------------------------- #
    def _raw_acquires(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _ACQUIRE_ATTRS:
                continue
            receiver = terminal_name(node.func.value) or ""
            if receiver == "_schema_lock":
                continue  # level-0 schema lock: always first, always safe
            findings.append(
                module.finding(
                    self.rule,
                    node,
                    f"raw `{node.func.attr}` on `{receiver or '<expr>'}` "
                    f"outside serving/shard.py — use the canonical-order "
                    f"helpers (acquire_read_ordered / ShardLock.read/write)",
                )
            )
        return findings

    # -- rule 2 -------------------------------------------------------- #
    def _leaf_regions(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(_is_leaf_lock_context(i.context_expr) for i in node.items):
                continue
            for stmt in node.body:
                for inner in self._walk_no_scopes(stmt):
                    if not isinstance(inner, ast.Call):
                        continue
                    name = terminal_name(inner.func) or ""
                    if _is_lock_acquisition(inner):
                        findings.append(
                            module.finding(
                                self.rule,
                                inner,
                                f"lock acquisition `{name}` while a leaf "
                                f"mutex is held (lock-order inversion)",
                            )
                        )
                    elif name in DISPATCH_CALLS:
                        findings.append(
                            module.finding(
                                self.rule,
                                inner,
                                f"dispatch call `{name}` while a leaf mutex "
                                f"is held — release before handing work to "
                                f"the pool/engine",
                            )
                        )
        return findings

    # -- rule 3 -------------------------------------------------------- #
    def _write_then_dispatch(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            write_taken = False
            dispatches: list[ast.Call] = []
            for node in walk_scope(scope):
                if not isinstance(node, ast.Call):
                    continue
                name = terminal_name(node.func) or ""
                if name == "acquire_write":
                    write_taken = True
                elif name == "write" and isinstance(node.func, ast.Attribute):
                    receiver = (terminal_name(node.func.value) or "").lower()
                    if "lock" in receiver or receiver in LEAF_LOCKS:
                        write_taken = True
                elif name in DISPATCH_CALLS:
                    dispatches.append(node)
            if write_taken:
                for call in dispatches:
                    findings.append(
                        module.finding(
                            self.rule,
                            call,
                            f"function `{scope.name}` takes a write lock and "
                            f"dispatches `{terminal_name(call.func)}` — keep "
                            f"engine execution out of write critical sections",
                        )
                    )
        return findings

    @staticmethod
    def _walk_no_scopes(node: ast.AST):
        yield node
        if isinstance(node, SCOPE_NODES):
            return
        yield from walk_scope(node)
