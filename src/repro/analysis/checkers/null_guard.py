"""null-guard: ordered/equality comparisons on possibly-NULL values.

The bug class (PRs 3, 6, 7): SQL rows carry NULLs, and Python happily
evaluates ``row[index] >= low`` as a plain comparison — either crashing
on ``None >= int`` or, worse, treating NULL like a value and silently
breaking three-valued logic. Every prior NULL soundness bug in the
predicate-evaluation modules was exactly this shape, e.g. PR 6's
interval comparator that had to become
``(v := row[index]) is not None and v >= low``.

The rule: inside the predicate-evaluation modules, a comparand that can
be NULL — a subscript load like ``row[i]``, or a name assigned from a
subscript / attribute / non-builtin call / ``None`` — may only appear
under ``< <= > >= == !=`` if the same expression is tested with
``is None`` / ``is not None`` somewhere in the enclosing function scope
chain. Comparing *to* a ``None`` literal with ``==``/``!=`` is always
flagged (use ``is``).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.checkers._util import enclosing_scopes, expr_key, walk_scope
from repro.analysis.core import Checker, Finding, ModuleContext, register

#: the modules whose comparisons operate on row/constant values
SCOPED_MODULES = frozenset(
    {
        "bounded/subsume.py",
        "engine/expressions.py",
        "engine/columnar.py",
        "catalog/statistics.py",
    }
)

#: calls whose results are never NULL rows/constants
SAFE_BUILTINS = frozenset(
    {
        "len",
        "int",
        "float",
        "str",
        "bool",
        "abs",
        "hash",
        "min",
        "max",
        "sum",
        "sorted",
        "list",
        "tuple",
        "set",
        "dict",
        "frozenset",
        "range",
        "enumerate",
        "zip",
        "repr",
        "round",
        "id",
        "isinstance",
        "getattr",
        "type",
    }
)

_ORDERED_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _is_nullable_value(node: ast.AST) -> bool:
    """Can this *assigned value* be NULL? (row loads, attrs, opaque calls)"""
    if isinstance(node, ast.Subscript):
        return True
    if isinstance(node, ast.Attribute):
        return True
    if isinstance(node, ast.Constant) and node.value is None:
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id not in SAFE_BUILTINS
        if isinstance(func, ast.Attribute):
            # dict.get with an explicit default can't return None-by-miss
            return func.attr == "get" and len(node.args) < 2
        return True
    if isinstance(node, ast.IfExp):
        return _is_nullable_value(node.body) or _is_nullable_value(node.orelse)
    if isinstance(node, ast.NamedExpr):
        return _is_nullable_value(node.value)
    return False


class _ScopeInfo:
    """Per-scope facts: None-guard keys and nullable-assigned names."""

    def __init__(self, scope: ast.AST):
        self.guards: set[str] = set()
        self.nullable_names: set[str] = set()
        for node in walk_scope(scope):
            if isinstance(node, ast.Compare) and len(node.ops) == 1:
                if isinstance(node.ops[0], (ast.Is, ast.IsNot)):
                    self._collect_guard(node)
            if isinstance(node, ast.Assign):
                if _is_nullable_value(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.nullable_names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if node.value is not None and _is_nullable_value(node.value):
                    if isinstance(node.target, ast.Name):
                        self.nullable_names.add(node.target.id)
            elif isinstance(node, ast.NamedExpr):
                if _is_nullable_value(node.value):
                    if isinstance(node.target, ast.Name):
                        self.nullable_names.add(node.target.id)

    def _collect_guard(self, node: ast.Compare) -> None:
        left, right = node.left, node.comparators[0]
        for tested, other in ((left, right), (right, left)):
            if isinstance(other, ast.Constant) and other.value is None:
                if isinstance(tested, ast.NamedExpr):
                    self.guards.add(expr_key(tested.target))
                    self.guards.add(expr_key(tested.value))
                else:
                    self.guards.add(expr_key(tested))


@register
class NullGuardChecker(Checker):
    rule = "null-guard"
    description = (
        "comparisons on row/constant values in predicate-evaluation "
        "modules must be dominated by an `is None` guard (3VL soundness)"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath in SCOPED_MODULES

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        scope_info: dict[ast.AST, _ScopeInfo] = {}

        def info(scope: ast.AST) -> _ScopeInfo:
            if scope not in scope_info:
                scope_info[scope] = _ScopeInfo(scope)
            return scope_info[scope]

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not all(isinstance(op, _ORDERED_OPS) for op in node.ops):
                continue
            scopes = enclosing_scopes(node, module.parents, module.tree)
            comparands = [node.left, *node.comparators]
            for comparand in comparands:
                if isinstance(comparand, ast.Constant) and comparand.value is None:
                    findings.append(
                        module.finding(
                            self.rule,
                            node,
                            "equality with a None literal — use `is None` / "
                            "`is not None` (3VL: `== NULL` is never true)",
                        )
                    )
                    continue
                keys = self._nullable_keys(comparand, scopes, info)
                if keys is None:
                    continue
                guarded = any(
                    key in info(scope).guards for key in keys for scope in scopes
                )
                if not guarded:
                    findings.append(
                        module.finding(
                            self.rule,
                            comparand,
                            f"comparison on possibly-NULL value "
                            f"`{expr_key(comparand)}` without an `is None` "
                            f"guard in the enclosing scope",
                        )
                    )
        return findings

    def _nullable_keys(
        self,
        comparand: ast.AST,
        scopes: list[ast.AST],
        info,
    ) -> Optional[list[str]]:
        """Keys to look up in the guard sets, or None if not nullable."""
        if isinstance(comparand, ast.Subscript):
            return [expr_key(comparand)]
        if isinstance(comparand, ast.Name):
            if any(comparand.id in info(scope).nullable_names for scope in scopes):
                return [comparand.id]
            return None
        if isinstance(comparand, ast.NamedExpr):
            if _is_nullable_value(comparand.value):
                return [expr_key(comparand.target), expr_key(comparand.value)]
            return None
        return None
