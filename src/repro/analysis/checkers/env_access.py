"""env-access: all BEAS_* environment reads live in repro/config.py.

The bug class (PR 5): knobs read ad hoc from ``os.environ`` scattered
across modules drifted out of sync with the validated `ExecutionOptions`
chain — a typo'd variable silently fell back to a default instead of
raising. `repro/config.py` centralises every environment read behind
validation; any other ``os.environ`` / ``os.getenv`` access bypasses it.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Finding, ModuleContext, register

_ENV_NAMES = frozenset({"environ", "getenv"})


@register
class EnvAccessChecker(Checker):
    rule = "env-access"
    description = (
        "os.environ/os.getenv reads belong in repro/config.py's validated "
        "accessors, nowhere else"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath != "config.py"

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                if (
                    node.attr in _ENV_NAMES
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "os"
                ):
                    findings.append(
                        module.finding(
                            self.rule,
                            node,
                            f"`os.{node.attr}` outside repro/config.py — "
                            f"read knobs through the validated config "
                            f"accessors instead",
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "os":
                    for alias in node.names:
                        if alias.name in _ENV_NAMES:
                            findings.append(
                                module.finding(
                                    self.rule,
                                    node,
                                    f"`from os import {alias.name}` outside "
                                    f"repro/config.py — read knobs through "
                                    f"the validated config accessors instead",
                                )
                            )
        return findings
