"""Profile candidate constraints against the data.

For each mined candidate ``R(X -> Y)`` the profiler computes, in one
group-by pass over ``R``:

* the tightest cardinality bound ``N`` the data supports (the paper's
  constants — 500, 12, 2000 in Example 1 — are "upper bounds aggregated
  from historical datasets", so a slack factor can inflate the observed
  maximum to leave headroom for future data);
* the index storage cost in value cells (keys + bucket entries), checked
  against the discovery storage limit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.access.constraint import AccessConstraint
from repro.discovery.candidates import CandidateConstraint
from repro.storage.database import Database


@dataclass(frozen=True)
class ProfiledCandidate:
    """A candidate with data-derived bound and storage cost."""

    candidate: CandidateConstraint
    n: int  # declared bound (observed max, inflated by slack)
    observed_max: int  # tightest bound the current data supports
    key_count: int
    entry_count: int
    storage_cells: int

    def to_constraint(self, name: Optional[str] = None) -> AccessConstraint:
        return AccessConstraint(
            self.candidate.relation,
            self.candidate.x,
            self.candidate.y,
            self.n,
            name=name,
        )

    @property
    def supporting_queries(self) -> frozenset[int]:
        return self.candidate.supporting_queries


def profile_candidate(
    database: Database,
    candidate: CandidateConstraint,
    *,
    slack: float = 1.0,
    max_n: Optional[int] = None,
) -> Optional[ProfiledCandidate]:
    """Profile one candidate; ``None`` when its bound would exceed ``max_n``.

    ``slack >= 1.0`` inflates the observed maximum group size, mirroring
    how the paper's constants are aggregated upper bounds rather than
    exact maxima.
    """
    table = database.table(candidate.relation)
    x_positions = table.schema.positions(candidate.x)
    y_positions = table.schema.positions(candidate.y)

    groups: dict[tuple, set[tuple]] = {}
    for row in table.rows:
        key = tuple(row[i] for i in x_positions)
        groups.setdefault(key, set()).add(tuple(row[i] for i in y_positions))

    observed = max((len(v) for v in groups.values()), default=0)
    declared = max(int(math.ceil(observed * slack)), observed, 1)
    if max_n is not None and declared > max_n:
        return None
    entries = sum(len(v) for v in groups.values())
    storage = len(groups) * len(candidate.x) + entries * len(candidate.y)
    return ProfiledCandidate(
        candidate=candidate,
        n=declared,
        observed_max=observed,
        key_count=len(groups),
        entry_count=entries,
        storage_cells=storage,
    )


def profile_candidates(
    database: Database,
    candidates: Iterable[CandidateConstraint],
    *,
    slack: float = 1.0,
    max_n: Optional[int] = None,
) -> list[ProfiledCandidate]:
    """Profile many candidates, dropping those whose bound is too loose."""
    out: list[ProfiledCandidate] = []
    for candidate in candidates:
        profiled = profile_candidate(database, candidate, slack=slack, max_n=max_n)
        if profiled is not None:
            out.append(profiled)
    return out
