"""Greedy multi-criteria selection of an access schema.

The selector chooses a subset of profiled candidates that maximises the
discovery objective subject to the index storage limit, then registers the
winners as an :class:`~repro.access.schema.AccessSchema`. Objectives
(paper §3: "a choice of the objective function"):

* ``COVERAGE`` — maximise the number of (weighted) workload queries that
  become boundedly evaluable;
* ``COVERAGE_PER_STORAGE`` — the same, but each step picks the candidate
  with the best newly-covered-queries / storage-cells ratio;
* ``MIN_BOUND`` — among schemas with maximal coverage, prefer the one
  whose covered queries have the smallest total deduced access bound
  (bounded-evaluation *performance*, criterion (a) of the paper).

Each greedy step re-runs the BE Checker over the workload with the
tentative schema — coverage is measured by the actual planner, not a
proxy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.access.schema import AccessSchema
from repro.catalog.schema import DatabaseSchema
from repro.sql import ast
from repro.storage.database import Database
from repro.bounded.coverage import BoundedEvaluabilityChecker
from repro.discovery.candidates import mine_candidates
from repro.discovery.profiler import ProfiledCandidate, profile_candidates

Query = Union[str, ast.Statement]


class DiscoveryObjective(enum.Enum):
    COVERAGE = "coverage"
    COVERAGE_PER_STORAGE = "coverage_per_storage"
    MIN_BOUND = "min_bound"


@dataclass
class DiscoveryResult:
    """Outcome of a discovery run (what Fig. 2(D)/(E) displays)."""

    schema: AccessSchema
    selected: list[ProfiledCandidate]
    covered_queries: set[int]
    storage_used: int
    storage_budget: Optional[int]
    objective: DiscoveryObjective
    total_access_bound: int  # sum of deduced bounds over covered queries
    candidates_considered: int = 0
    rejected_over_budget: int = 0

    def coverage_ratio(self, workload_size: int) -> float:
        return len(self.covered_queries) / workload_size if workload_size else 0.0

    def describe(self) -> str:
        lines = [
            f"discovered {len(self.selected)} constraints "
            f"({self.storage_used} storage cells"
            + (
                f" of {self.storage_budget} budget"
                if self.storage_budget is not None
                else ""
            )
            + f"), covering {len(self.covered_queries)} queries "
            f"[objective: {self.objective.value}]",
        ]
        lines.extend(str(p.to_constraint(name=f"d{i}")) for i, p in enumerate(self.selected))
        return "\n".join(lines)


def _workload_coverage(
    db_schema: DatabaseSchema,
    schema: AccessSchema,
    workload: Sequence[Query],
    weights: Sequence[float],
) -> tuple[set[int], float, int]:
    """(covered query indices, weighted coverage, total access bound)."""
    checker = BoundedEvaluabilityChecker(db_schema, schema)
    covered: set[int] = set()
    weighted = 0.0
    total_bound = 0
    for index, query in enumerate(workload):
        decision = checker.check(query)
        if decision.covered:
            covered.add(index)
            weighted += weights[index]
            total_bound += decision.access_bound or 0
    return covered, weighted, total_bound


def _query_batch(
    db_schema,
    selected,
    remaining,
    workload,
    weights,
    storage_used,
    storage_budget,
    current_weighted,
    build_schema,
):
    """Best-effort batch step: all candidates of one uncovered query.

    Returns ``(profiles, covered, weighted, bound)`` for the first query
    (heaviest first) whose candidate batch fits the budget and raises
    weighted coverage, or ``None``.
    """
    covered_now, _, _ = _workload_coverage(
        db_schema, build_schema(selected), workload, weights
    )
    uncovered = [
        i for i in range(len(workload)) if i not in covered_now and weights[i] > 0
    ]
    uncovered.sort(key=lambda i: -weights[i])
    for query_index in uncovered:
        batch = [
            p for p in remaining if query_index in p.supporting_queries
        ]
        if not batch:
            continue
        batch_storage = sum(p.storage_cells for p in batch)
        if (
            storage_budget is not None
            and storage_used + batch_storage > storage_budget
        ):
            continue
        tentative = build_schema(selected + batch)
        covered, weighted, bound = _workload_coverage(
            db_schema, tentative, workload, weights
        )
        if weighted > current_weighted:
            return batch, covered, weighted, bound
    return None


def select_constraints(
    database: Database,
    profiled: Sequence[ProfiledCandidate],
    workload: Sequence[Query],
    *,
    storage_budget: Optional[int] = None,
    objective: DiscoveryObjective = DiscoveryObjective.COVERAGE,
    weights: Optional[Sequence[float]] = None,
    schema_name: str = "discovered",
) -> DiscoveryResult:
    """Greedy selection under the storage budget."""
    weights = list(weights) if weights is not None else [1.0] * len(workload)
    if len(weights) != len(workload):
        raise ValueError("weights must match the workload length")

    db_schema = database.schema
    selected: list[ProfiledCandidate] = []
    storage_used = 0
    rejected_over_budget = 0

    def build_schema(candidates: Sequence[ProfiledCandidate]) -> AccessSchema:
        schema = AccessSchema(name=schema_name)
        for i, profile in enumerate(candidates):
            schema.add(profile.to_constraint(name=f"d{i}"))
        return schema

    covered, weighted, total_bound = _workload_coverage(
        db_schema, build_schema(selected), workload, weights
    )
    remaining = list(profiled)
    while remaining:
        best = None
        best_score: tuple = ()
        for profile in remaining:
            if (
                storage_budget is not None
                and storage_used + profile.storage_cells > storage_budget
            ):
                continue
            tentative = build_schema(selected + [profile])
            new_covered, new_weighted, new_bound = _workload_coverage(
                db_schema, tentative, workload, weights
            )
            gain = new_weighted - weighted
            if objective is DiscoveryObjective.COVERAGE_PER_STORAGE:
                score = (
                    gain / max(profile.storage_cells, 1),
                    gain,
                    -profile.storage_cells,
                )
            elif objective is DiscoveryObjective.MIN_BOUND:
                score = (gain, -new_bound, -profile.storage_cells)
            else:
                score = (gain, -profile.storage_cells, -profile.n)
            if gain > 0 and (best is None or score > best_score):
                best = (profile, new_covered, new_weighted, new_bound)
                best_score = score
        if best is None:
            # No single candidate covers a new query — multi-relation
            # queries need several constraints at once. Try, per uncovered
            # query (heaviest first), adding all of its candidates as a
            # batch; keep the batch if coverage improves and fits.
            batch = _query_batch(
                db_schema, selected, remaining, workload, weights,
                storage_used, storage_budget, weighted, build_schema,
            )
            if batch is None:
                break
            batch_profiles, covered, weighted, total_bound = batch
            selected.extend(batch_profiles)
            storage_used += sum(p.storage_cells for p in batch_profiles)
            remaining = [p for p in remaining if p not in batch_profiles]
            continue
        profile, covered, weighted, total_bound = best
        selected.append(profile)
        storage_used += profile.storage_cells
        remaining = [p for p in remaining if p is not profile]

    # prune redundant picks: drop any constraint whose removal keeps the
    # weighted coverage intact (batch steps can over-select)
    pruned = True
    while pruned:
        pruned = False
        for candidate in sorted(selected, key=lambda p: -p.storage_cells):
            trimmed = [p for p in selected if p is not candidate]
            _, trimmed_weighted, _ = _workload_coverage(
                db_schema, build_schema(trimmed), workload, weights
            )
            if trimmed_weighted >= weighted:
                selected = trimmed
                storage_used -= candidate.storage_cells
                pruned = True
                break
    covered, weighted, total_bound = _workload_coverage(
        db_schema, build_schema(selected), workload, weights
    )

    if storage_budget is not None:
        rejected_over_budget = sum(
            1 for p in profiled if p.storage_cells > storage_budget
        )

    return DiscoveryResult(
        schema=build_schema(selected),
        selected=selected,
        covered_queries=covered,
        storage_used=storage_used,
        storage_budget=storage_budget,
        objective=objective,
        total_access_bound=total_bound,
        candidates_considered=len(profiled),
        rejected_over_budget=rejected_over_budget,
    )


def discover(
    database: Database,
    workload: Sequence[Query],
    *,
    storage_budget: Optional[int] = None,
    objective: DiscoveryObjective = DiscoveryObjective.COVERAGE,
    weights: Optional[Sequence[float]] = None,
    slack: float = 1.0,
    max_n: Optional[int] = None,
    schema_name: str = "discovered",
) -> DiscoveryResult:
    """End-to-end discovery: mine -> profile -> select.

    This is the offline service of Fig. 2(D): input a dataset, a set of
    query patterns, and an objective; output a registered access schema.
    """
    candidates = mine_candidates(workload, database.schema)
    profiled = profile_candidates(database, candidates, slack=slack, max_n=max_n)
    return select_constraints(
        database,
        profiled,
        workload,
        storage_budget=storage_budget,
        objective=objective,
        weights=weights,
        schema_name=schema_name,
    )
