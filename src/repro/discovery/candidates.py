"""Mine candidate access constraints from historical query patterns.

For each relation occurrence in each workload query, the attributes bound
by constants or reachable through equi-join atoms are exactly the ones a
bounded plan could present as fetch keys (``X``); the remaining attributes
the query needs from that occurrence must come back from the index
(``Y``). Every such (R, X, Y) shape is a candidate; variants with
constants-only keys are added because they seed plans (a fetch whose whole
key is constant can always run first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from repro.catalog.schema import DatabaseSchema
from repro.errors import NormalizationError, SQLError
from repro.sql import ast
from repro.sql.normalize import ConjunctiveQuery, normalize
from repro.sql.parser import parse


@dataclass(frozen=True)
class CandidateConstraint:
    """An un-profiled candidate ``R(X -> Y)`` with workload provenance."""

    relation: str
    x: tuple[str, ...]
    y: tuple[str, ...]
    supporting_queries: frozenset[int] = frozenset()

    def key(self) -> tuple:
        return (self.relation, self.x, self.y)


def _occurrence_candidates(
    cq: ConjunctiveQuery, query_index: int
) -> list[CandidateConstraint]:
    out: list[CandidateConstraint] = []
    # attributes equated with a *different* occurrence (join keys)
    join_attrs: dict[str, set[str]] = {}
    for a, b in cq.equalities:
        if a.binding != b.binding:
            join_attrs.setdefault(a.binding, set()).add(a.column)
            join_attrs.setdefault(b.binding, set()).add(b.column)

    for binding, relation in cq.occurrences.items():
        needed = cq.attributes_of(binding)
        constants = {
            attr.column for attr in cq.selections if attr.binding == binding
        }
        joins = join_attrs.get(binding, set())

        shapes: set[tuple[tuple[str, ...], tuple[str, ...]]] = set()
        for x_set in ({*constants, *joins}, constants):
            x = tuple(sorted(set(x_set) & needed))
            y = tuple(sorted(needed - set(x)))
            if y:
                shapes.add((x, y))
        for x, y in shapes:
            out.append(
                CandidateConstraint(
                    relation=relation,
                    x=x,
                    y=y,
                    supporting_queries=frozenset({query_index}),
                )
            )
    return out


def mine_candidates(
    workload: Sequence[Union[str, ast.Statement]],
    schema: DatabaseSchema,
) -> list[CandidateConstraint]:
    """Extract deduplicated candidates from ``workload``.

    Queries that fail to parse or fall outside the SPJA fragment are
    skipped (they cannot be boundedly evaluated anyway). Candidates
    occurring in several queries merge their provenance sets.
    """
    merged: dict[tuple, CandidateConstraint] = {}
    for query_index, query in enumerate(workload):
        try:
            statement = parse(query) if isinstance(query, str) else query
            blocks = _select_blocks(statement)
        except SQLError:
            continue
        for block in blocks:
            try:
                cq = normalize(block, schema)
            except (NormalizationError, SQLError):
                continue
            for candidate in _occurrence_candidates(cq, query_index):
                key = candidate.key()
                if key in merged:
                    existing = merged[key]
                    merged[key] = CandidateConstraint(
                        relation=existing.relation,
                        x=existing.x,
                        y=existing.y,
                        supporting_queries=existing.supporting_queries
                        | candidate.supporting_queries,
                    )
                else:
                    merged[key] = candidate
    # queries sharing a key shape (relation, X) get a union-Y variant too:
    # one wider index can then serve several queries at once
    by_key_shape: dict[tuple, list[CandidateConstraint]] = {}
    for candidate in merged.values():
        by_key_shape.setdefault((candidate.relation, candidate.x), []).append(candidate)
    for (relation, x), group in by_key_shape.items():
        if len(group) < 2:
            continue
        union_y = tuple(sorted({col for c in group for col in c.y} - set(x)))
        if not union_y:
            continue
        provenance = frozenset().union(*(c.supporting_queries for c in group))
        key = (relation, x, union_y)
        if key in merged:
            provenance |= merged[key].supporting_queries
        merged[key] = CandidateConstraint(
            relation=relation,
            x=x,
            y=union_y,
            supporting_queries=provenance,
        )

    # deterministic order: most-supported first, then by shape
    return sorted(
        merged.values(),
        key=lambda c: (-len(c.supporting_queries), c.relation, c.x, c.y),
    )


def _select_blocks(statement: ast.Statement) -> Iterable[ast.SelectStatement]:
    if isinstance(statement, ast.SelectStatement):
        return [statement]
    blocks: list[ast.SelectStatement] = []
    stack: list[ast.Statement] = [statement]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.SetOperation):
            stack.extend([node.left, node.right])
        else:
            blocks.append(node)
    return blocks
