"""Access schema discovery (S7).

Paper §3, Discovery module: *"Given an application, it automatically
discovers an access schema from its real-life datasets. It is a
multi-criteria optimization problem that covers (a) the performance of
bounded evaluation of the query load, (b) storage limit for indices, (c)
historical query patterns, and (d) statistics of datasets in the
application."* The algorithm itself was deferred to a later publication;
this package implements a principled instantiation honouring exactly those
inputs and outputs (see DESIGN.md §1):

1. :mod:`repro.discovery.candidates` mines candidate ``R(X -> Y)`` shapes
   from the workload's query patterns (constants and join attributes form
   ``X``; the attributes the query needs form ``Y``);
2. :mod:`repro.discovery.profiler` computes the tightest bound ``N`` and
   the index storage cost of each candidate from the data;
3. :mod:`repro.discovery.selector` greedily selects candidates under the
   storage budget, maximising the chosen objective (queries covered,
   coverage per storage cell, or minimum total access bound).
"""

from repro.discovery.candidates import CandidateConstraint, mine_candidates
from repro.discovery.profiler import ProfiledCandidate, profile_candidate, profile_candidates
from repro.discovery.selector import (
    DiscoveryObjective,
    DiscoveryResult,
    discover,
    select_constraints,
)

__all__ = [
    "CandidateConstraint",
    "mine_candidates",
    "ProfiledCandidate",
    "profile_candidate",
    "profile_candidates",
    "DiscoveryObjective",
    "DiscoveryResult",
    "discover",
    "select_constraints",
]
