"""Central configuration: every ``BEAS_*`` environment variable.

One place reads and validates the environment knobs the engine honours,
replacing the ad-hoc ``os.environ`` parses that had grown in
``engine.columnar`` (``BEAS_EXECUTOR``, ``BEAS_ROWS_PER_BATCH``),
``engine.pool`` (``BEAS_PARALLELISM``, ``BEAS_POOL_START_METHOD``) and
the fuzz suites (``BEAS_FUZZ_SEEDS``). Every reader raises
:class:`~repro.errors.BEASError` at *construction* time on a malformed
value — a typo in CI or a deployment manifest fails with a clear
message, never as a downstream execution error.

The variables, and where they sit in the option-precedence chain
(call > Query > Session > :class:`~repro.engine.profiles.EngineProfile`
> environment — see ``docs/api.md``):

===========================  ==============================================
``BEAS_EXECUTOR``            bounded execution mode: ``row`` | ``columnar``
``BEAS_ROWS_PER_BATCH``      columnar batch size (positive int)
``BEAS_PARALLELISM``         engine-pool worker processes (positive int)
``BEAS_POOL_START_METHOD``   multiprocessing start method for the pool
``BEAS_RESULT_REUSE``        result-cache matching: ``exact`` | ``subsume``
``BEAS_ROUTING``             executor routing: ``static`` | ``learned``
``BEAS_ROUTING_EPSILON``     learned-routing exploration rate (float in [0, 1])
``BEAS_STORAGE``             storage engine: ``memory`` | ``mmap``
``BEAS_STORAGE_DIR``         store directory for ``mmap`` (non-empty path)
``BEAS_REPLICAS``            serving replicas (positive int; >= 2 = fleet)
``BEAS_FLEET_PORT_BASE``     first replica TCP port (int in [1024, 65000])
``BEAS_FUZZ_SEEDS``          seed count for the differential fuzz suites
===========================  ==============================================
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import BEASError

ENV_EXECUTOR = "BEAS_EXECUTOR"
ENV_ROWS_PER_BATCH = "BEAS_ROWS_PER_BATCH"
ENV_PARALLELISM = "BEAS_PARALLELISM"
ENV_POOL_START_METHOD = "BEAS_POOL_START_METHOD"
ENV_RESULT_REUSE = "BEAS_RESULT_REUSE"
ENV_ROUTING = "BEAS_ROUTING"
ENV_ROUTING_EPSILON = "BEAS_ROUTING_EPSILON"
ENV_STORAGE = "BEAS_STORAGE"
ENV_STORAGE_DIR = "BEAS_STORAGE_DIR"
ENV_REPLICAS = "BEAS_REPLICAS"
ENV_FLEET_PORT_BASE = "BEAS_FLEET_PORT_BASE"
ENV_FUZZ_SEEDS = "BEAS_FUZZ_SEEDS"

#: Bounded-pipeline execution modes.
EXECUTOR_MODES = ("row", "columnar")

#: Engine-pool dispatch strategies.
DISPATCH_MODES = ("auto", "plan", "batch")

#: Result-cache matching modes: ``exact`` serves only
#: presentation-equal fingerprints; ``subsume`` additionally answers a
#: query from a cached bounded superset by re-filtering its rows
#: (:mod:`repro.bounded.subsume`).
RESULT_REUSE_MODES = ("exact", "subsume")

#: Executor-routing modes: ``static`` runs every covered query on the
#: resolved ``executor``; ``learned`` routes each covered query to the
#: mode an online per-template cost model predicts fastest
#: (:mod:`repro.engine.router`).
ROUTING_MODES = ("static", "learned")

#: Storage engines: ``memory`` keeps indices and caches process-local
#: (the historical behaviour); ``mmap`` persists access-index buckets,
#: the WAL, and the result cache to a disk-backed store
#: (:mod:`repro.storage.mmapstore`) and ships pool snapshots through
#: shared memory.
STORAGE_MODES = ("memory", "mmap")

#: Default number of rows per processing batch in columnar mode.
DEFAULT_ROWS_PER_BATCH = 4096

#: Default epsilon-greedy exploration rate for learned routing.
DEFAULT_ROUTING_EPSILON = 0.1

#: Default first TCP port of the serving fleet's replicas (replica ``i``
#: listens on ``port_base + i``, loopback only).
DEFAULT_FLEET_PORT_BASE = 7641

#: Replica listen ports must leave the privileged range and stay low
#: enough that ``port_base + replicas`` cannot overflow the port space.
FLEET_PORT_MIN = 1024
FLEET_PORT_MAX = 65000


# --------------------------------------------------------------------------- #
# validators (shared by env readers, BEAS construction, ExecutionOptions)
# --------------------------------------------------------------------------- #
def validate_executor(mode: str, *, source: str = "executor") -> str:
    if mode not in EXECUTOR_MODES:
        raise BEASError(
            f"unknown {source} mode {mode!r} (expected "
            f"{' or '.join(repr(m) for m in EXECUTOR_MODES)})"
        )
    return mode


def _validate_positive_int(value: object, source: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise BEASError(
            f"{source} must be an int, got {type(value).__name__} ({value!r})"
        )
    if value < 1:
        raise BEASError(f"{source} must be >= 1, got {value}")
    return value


def validate_rows_per_batch(value: object, *, source: str = "rows_per_batch") -> int:
    return _validate_positive_int(value, source)


def validate_parallelism(value: object, *, source: str = "parallelism") -> int:
    return _validate_positive_int(value, source)


def validate_replicas(value: object, *, source: str = "replicas") -> int:
    """Serving replica count: 1 serves in-process, >= 2 spawns the fleet."""
    return _validate_positive_int(value, source)


def validate_fleet_port_base(
    value: object, *, source: str = "fleet_port_base"
) -> int:
    port = _validate_positive_int(value, source)
    if not FLEET_PORT_MIN <= port <= FLEET_PORT_MAX:
        raise BEASError(
            f"{source} must be in [{FLEET_PORT_MIN}, {FLEET_PORT_MAX}], "
            f"got {port}"
        )
    return port


def validate_dispatch(mode: str, *, source: str = "parallel_dispatch") -> str:
    if mode not in DISPATCH_MODES:
        raise BEASError(
            f"unknown {source} {mode!r} (expected one of "
            f"{', '.join(DISPATCH_MODES)})"
        )
    return mode


def validate_result_reuse(mode: str, *, source: str = "result_reuse") -> str:
    if mode not in RESULT_REUSE_MODES:
        raise BEASError(
            f"unknown {source} {mode!r} (expected "
            f"{' or '.join(repr(m) for m in RESULT_REUSE_MODES)})"
        )
    return mode


def validate_routing(mode: str, *, source: str = "routing") -> str:
    if mode not in ROUTING_MODES:
        raise BEASError(
            f"unknown {source} {mode!r} (expected "
            f"{' or '.join(repr(m) for m in ROUTING_MODES)})"
        )
    return mode


def validate_routing_epsilon(
    value: object, *, source: str = "routing epsilon"
) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BEASError(
            f"{source} must be a float, got {type(value).__name__} ({value!r})"
        )
    epsilon = float(value)
    if not 0.0 <= epsilon <= 1.0:
        raise BEASError(f"{source} must be in [0, 1], got {epsilon}")
    return epsilon


def validate_storage(mode: str, *, source: str = "storage") -> str:
    if mode not in STORAGE_MODES:
        raise BEASError(
            f"unknown {source} mode {mode!r} (expected "
            f"{' or '.join(repr(m) for m in STORAGE_MODES)})"
        )
    return mode


def validate_storage_dir(value: object, *, source: str = "storage_dir") -> str:
    if isinstance(value, os.PathLike):
        value = os.fspath(value)
    if not isinstance(value, str) or not value:
        raise BEASError(
            f"{source} must be a non-empty path string, got {value!r}"
        )
    return value


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise BEASError(f"{name} must be an integer, got {raw!r}") from None


# --------------------------------------------------------------------------- #
# environment readers (None when the variable is unset/empty)
# --------------------------------------------------------------------------- #
def env_executor() -> Optional[str]:
    raw = os.environ.get(ENV_EXECUTOR)
    if not raw:
        return None
    return validate_executor(raw, source=ENV_EXECUTOR)


def env_rows_per_batch() -> Optional[int]:
    value = _env_int(ENV_ROWS_PER_BATCH)
    if value is None:
        return None
    return validate_rows_per_batch(value, source=ENV_ROWS_PER_BATCH)


def env_parallelism() -> Optional[int]:
    value = _env_int(ENV_PARALLELISM)
    if value is None:
        return None
    return validate_parallelism(value, source=ENV_PARALLELISM)


def env_pool_start_method() -> Optional[str]:
    raw = os.environ.get(ENV_POOL_START_METHOD)
    if not raw:
        return None
    available = multiprocessing.get_all_start_methods()
    if raw not in available:
        raise BEASError(
            f"{ENV_POOL_START_METHOD} must be one of "
            f"{', '.join(available)}, got {raw!r}"
        )
    return raw


def env_result_reuse() -> Optional[str]:
    raw = os.environ.get(ENV_RESULT_REUSE)
    if not raw:
        return None
    return validate_result_reuse(raw, source=ENV_RESULT_REUSE)


def env_routing() -> Optional[str]:
    raw = os.environ.get(ENV_ROUTING)
    if not raw:
        return None
    return validate_routing(raw, source=ENV_ROUTING)


def env_routing_epsilon() -> Optional[float]:
    raw = os.environ.get(ENV_ROUTING_EPSILON)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise BEASError(
            f"{ENV_ROUTING_EPSILON} must be a float, got {raw!r}"
        ) from None
    return validate_routing_epsilon(value, source=ENV_ROUTING_EPSILON)


def env_storage() -> Optional[str]:
    raw = os.environ.get(ENV_STORAGE)
    if not raw:
        return None
    return validate_storage(raw, source=ENV_STORAGE)


def env_storage_dir() -> Optional[str]:
    raw = os.environ.get(ENV_STORAGE_DIR)
    if not raw:
        return None
    return validate_storage_dir(raw, source=ENV_STORAGE_DIR)


def env_replicas() -> Optional[int]:
    value = _env_int(ENV_REPLICAS)
    if value is None:
        return None
    return validate_replicas(value, source=ENV_REPLICAS)


def env_fleet_port_base() -> Optional[int]:
    value = _env_int(ENV_FLEET_PORT_BASE)
    if value is None:
        return None
    return validate_fleet_port_base(value, source=ENV_FLEET_PORT_BASE)


def env_fuzz_seeds(default: int = 8) -> int:
    value = _env_int(ENV_FUZZ_SEEDS)
    if value is None:
        return default
    if value < 1:
        raise BEASError(f"{ENV_FUZZ_SEEDS} must be >= 1, got {value}")
    return value


# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class EnvConfig:
    """A validated snapshot of every ``BEAS_*`` environment variable.

    ``None`` fields were unset; loading raises
    :class:`~repro.errors.BEASError` when any variable is malformed, so
    one :func:`load_env_config` call at startup surfaces every
    environment problem before the first query runs.
    """

    executor: Optional[str] = None
    rows_per_batch: Optional[int] = None
    parallelism: Optional[int] = None
    pool_start_method: Optional[str] = None
    result_reuse: Optional[str] = None
    routing: Optional[str] = None
    routing_epsilon: Optional[float] = None
    storage: Optional[str] = None
    storage_dir: Optional[str] = None
    replicas: Optional[int] = None
    fleet_port_base: Optional[int] = None
    fuzz_seeds: int = 8

    def describe(self) -> str:
        pairs = [
            (ENV_EXECUTOR, self.executor),
            (ENV_ROWS_PER_BATCH, self.rows_per_batch),
            (ENV_PARALLELISM, self.parallelism),
            (ENV_POOL_START_METHOD, self.pool_start_method),
            (ENV_RESULT_REUSE, self.result_reuse),
            (ENV_ROUTING, self.routing),
            (ENV_ROUTING_EPSILON, self.routing_epsilon),
            (ENV_STORAGE, self.storage),
            (ENV_STORAGE_DIR, self.storage_dir),
            (ENV_REPLICAS, self.replicas),
            (ENV_FLEET_PORT_BASE, self.fleet_port_base),
            (ENV_FUZZ_SEEDS, self.fuzz_seeds),
        ]
        return "\n".join(
            f"{name}={'(unset)' if value is None else value}"
            for name, value in pairs
        )


def load_env_config(*, fuzz_default: int = 8) -> EnvConfig:
    """Read and validate the whole ``BEAS_*`` environment at once."""
    return EnvConfig(
        executor=env_executor(),
        rows_per_batch=env_rows_per_batch(),
        parallelism=env_parallelism(),
        pool_start_method=env_pool_start_method(),
        result_reuse=env_result_reuse(),
        routing=env_routing(),
        routing_epsilon=env_routing_epsilon(),
        storage=env_storage(),
        storage_dir=env_storage_dir(),
        replicas=env_replicas(),
        fleet_port_base=env_fleet_port_base(),
        fuzz_seeds=env_fuzz_seeds(fuzz_default),
    )
