"""Incremental maintenance of access indices under data updates.

The invariant (property-tested): after any sequence of inserts/deletes
routed through :class:`MaintenanceManager`, every access index equals a
from-scratch rebuild over the updated table, at cost proportional to the
batch size — the observable contract of the "optimal incremental
algorithms" the paper cites from [5].

Inserts can violate a cardinality bound (an X-value gaining an
(N+1)-th distinct Y-value). The violation policy decides what happens:

* ``REJECT`` — refuse the whole batch atomically (the default; datasets
  must keep conforming so deduced bounds stay trustworthy);
* ``ADJUST`` — accept and *widen* the constraint's N to the new maximum,
  re-registering the adjusted constraint (the paper's "periodically
  adjusts constraints in A").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.access.catalog import ASCatalog
from repro.access.constraint import AccessConstraint
from repro.errors import ConformanceError, MaintenanceError


class ViolationPolicy(enum.Enum):
    REJECT = "reject"
    ADJUST = "adjust"


@dataclass
class UpdateBatch:
    """Summary of one applied batch.

    ``table_version`` is the table's :attr:`~repro.storage.table.Table.
    version` after the batch committed — the data generation every
    result computed over this batch carries. Concurrent clients (and the
    differential fuzz harness) use it to pin which snapshot an answer
    reflects.
    """

    table: str
    inserted: int = 0
    deleted: int = 0
    adjusted_constraints: list[str] = field(default_factory=list)
    table_version: int = 0


class MaintenanceManager:
    """Routes table updates through the catalog's indices."""

    def __init__(
        self,
        catalog: ASCatalog,
        *,
        policy: ViolationPolicy = ViolationPolicy.REJECT,
    ):
        self._catalog = catalog
        self.policy = policy

    # ------------------------------------------------------------------ #
    def insert(self, table_name: str, rows: Sequence[Sequence[Any]]) -> UpdateBatch:
        """Insert ``rows`` into the table and all affected indices.

        Under ``REJECT``, a bound violation rolls the whole batch back
        (table and indices are left exactly as before).
        """
        table = self._catalog.database.table(table_name)
        constraints = self._catalog.constraints_for(table_name)
        batch = UpdateBatch(table=table_name)

        applied: list[tuple] = []
        applied_index_rows: dict[str, int] = {c.name: 0 for c in constraints}
        try:
            for row in rows:
                stored = table.insert(row)
                applied.append(stored)
                for constraint in constraints:
                    index = self._catalog.index_for(constraint)
                    validate = self.policy is ViolationPolicy.REJECT
                    try:
                        index.insert_row(stored, validate=validate)
                    except ConformanceError:
                        # roll back this row from the table before re-raising
                        raise
                    applied_index_rows[constraint.name] += 1
                batch.inserted += 1
        except ConformanceError as error:
            self._rollback_inserts(table, constraints, applied, applied_index_rows)
            raise MaintenanceError(
                f"insert batch rejected: {error}"
            ) from error

        if self.policy is ViolationPolicy.ADJUST:
            batch.adjusted_constraints = self._adjust_bounds(constraints)
        batch.table_version = table.version
        return batch

    def _rollback_inserts(
        self,
        table,
        constraints: list[AccessConstraint],
        applied: list[tuple],
        applied_index_rows: dict[str, int],
    ) -> None:
        # remove inserted rows from the table (last occurrences)
        for row in applied:
            for position in range(len(table.rows) - 1, -1, -1):
                if table.rows[position] == row:
                    del table.rows[position]
                    break
        # undo the index insertions that did succeed
        for constraint in constraints:
            index = self._catalog.index_for(constraint)
            for row in applied[: applied_index_rows[constraint.name]]:
                index.delete_row(row)

    def _adjust_bounds(self, constraints: list[AccessConstraint]) -> list[str]:
        """Widen any constraint whose index now exceeds its declared N."""
        adjusted: list[str] = []
        for constraint in list(constraints):
            index = self._catalog.index_for(constraint)
            actual = index.max_bucket_size
            if actual > constraint.n:
                widened = AccessConstraint(
                    constraint.relation,
                    constraint.x,
                    constraint.y,
                    actual,
                    name=constraint.name,
                )
                # swap the constraint object, keeping the built index
                self._catalog.schema.remove(constraint.name)
                self._catalog.schema.add(widened)
                index.constraint = widened
                adjusted.append(constraint.name)
        if adjusted:
            # widened bounds change deduced plan bounds: cached coverage
            # decisions must be re-checked
            self._catalog.note_schema_change()
        return adjusted

    # ------------------------------------------------------------------ #
    def delete(self, table_name: str, rows: Sequence[Sequence[Any]]) -> UpdateBatch:
        """Delete one occurrence of each row (bag semantics) everywhere."""
        table = self._catalog.database.table(table_name)
        constraints = self._catalog.constraints_for(table_name)
        removed = table.delete_rows(rows)
        if len(removed) != len(list(rows)):
            # restore and refuse: a missing row means caller state is stale
            for row in removed:
                table.rows.append(row)
            raise MaintenanceError(
                "delete batch rejected: some rows are not present in "
                f"{table_name!r}"
            )
        for constraint in constraints:
            index = self._catalog.index_for(constraint)
            for row in removed:
                index.delete_row(row)
        return UpdateBatch(
            table=table_name, deleted=len(removed), table_version=table.version
        )
