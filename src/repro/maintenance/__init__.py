"""Access schema maintenance (S8).

Paper §3, Maintenance module: the catalog "(a) periodically adjusts
constraints in A based on the changes to the historical queries ... and
(b) incrementally updates the indices of A in response to changes to the
datasets". :mod:`repro.maintenance.incremental` implements (b) — exact
per-bucket delta maintenance under inserts and deletes — and
:mod:`repro.maintenance.monitor` implements (a)'s data half: bound drift
detection and re-estimation.
"""

from repro.maintenance.incremental import MaintenanceManager, UpdateBatch, ViolationPolicy
from repro.maintenance.monitor import BoundSuggestion, DriftMonitor, DriftReport

__all__ = [
    "MaintenanceManager",
    "UpdateBatch",
    "ViolationPolicy",
    "DriftMonitor",
    "DriftReport",
    "BoundSuggestion",
]
