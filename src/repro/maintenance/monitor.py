"""Bound drift monitoring and re-estimation.

The maintenance module periodically re-examines how tight each declared
bound ``N`` still is. A bound far above the observed maximum wastes the
deduced access bounds (plans look more expensive than they are, budget
checks reject answerable queries); an observed maximum at (or past) the
bound signals imminent violations. The monitor reports both and proposes
new bounds with a configurable slack factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.access.catalog import ASCatalog
from repro.access.constraint import AccessConstraint


@dataclass(frozen=True)
class BoundSuggestion:
    """Proposed adjustment for one constraint."""

    constraint_name: str
    declared_n: int
    observed_max: int
    suggested_n: int
    kind: str  # 'tighten' | 'widen' | 'keep'


@dataclass
class DriftReport:
    suggestions: list[BoundSuggestion] = field(default_factory=list)

    @property
    def drifting(self) -> list[BoundSuggestion]:
        return [s for s in self.suggestions if s.kind != "keep"]

    def describe(self) -> str:
        if not self.suggestions:
            return "no constraints registered"
        lines = []
        for s in self.suggestions:
            lines.append(
                f"{s.constraint_name}: declared N={s.declared_n}, observed "
                f"max={s.observed_max} -> {s.kind}"
                + (f" to {s.suggested_n}" if s.kind != "keep" else "")
            )
        return "\n".join(lines)


class DriftMonitor:
    """Compares declared bounds against the live index statistics."""

    def __init__(
        self,
        catalog: ASCatalog,
        *,
        slack: float = 1.2,
        tighten_threshold: float = 4.0,
    ):
        """``slack`` is the headroom multiplier applied to observed maxima;
        a constraint is proposed for tightening only when its declared N
        exceeds ``tighten_threshold`` times the slacked observation (small
        drift is not worth churning plans over)."""
        if slack < 1.0:
            raise ValueError("slack must be >= 1.0")
        self._catalog = catalog
        self._slack = slack
        self._tighten_threshold = tighten_threshold

    def report(self) -> DriftReport:
        report = DriftReport()
        for constraint in self._catalog.schema:
            index = self._catalog.index_for(constraint)
            observed = index.max_bucket_size
            slacked = max(int(math.ceil(observed * self._slack)), 1)
            if observed > constraint.n:
                kind, suggested = "widen", slacked
            elif constraint.n > slacked * self._tighten_threshold:
                kind, suggested = "tighten", slacked
            else:
                kind, suggested = "keep", constraint.n
            report.suggestions.append(
                BoundSuggestion(
                    constraint_name=constraint.name,
                    declared_n=constraint.n,
                    observed_max=observed,
                    suggested_n=suggested,
                    kind=kind,
                )
            )
        return report

    def apply(self, report: Optional[DriftReport] = None) -> list[str]:
        """Apply the report's non-'keep' suggestions; returns changed names."""
        if report is None:
            report = self.report()
        changed: list[str] = []
        for suggestion in report.drifting:
            constraint = self._catalog.schema.get(suggestion.constraint_name)
            adjusted = AccessConstraint(
                constraint.relation,
                constraint.x,
                constraint.y,
                suggestion.suggested_n,
                name=constraint.name,
            )
            index = self._catalog.index_for(constraint)
            self._catalog.schema.remove(constraint.name)
            self._catalog.schema.add(adjusted)
            index.constraint = adjusted
            changed.append(constraint.name)
        if changed:
            # adjusted bounds change deduced plan bounds: cached coverage
            # decisions (repro.serving) must be re-checked
            self._catalog.note_schema_change()
        return changed
