"""Prepared queries: parse and pin once, execute many times.

A :class:`PreparedQuery` does the frontend work a single time — parse,
stable fingerprint, dependency (table) set, parameter-slot extraction —
and then serves every execution through the owning
:class:`~repro.serving.server.BEASServer`'s caches. The coverage
decision and bounded plan for each distinct binding are pinned in the
server's decision cache, keyed by (fingerprint, access-schema
generation), so a repeated execute touches neither the parser, the
normalizer, nor the BE Checker.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.sql import ast
from repro.sql.fingerprint import statement_fingerprint, statement_tables
from repro.serving.params import (
    ParameterSlot,
    binding_signature,
    extract_slots,
    resolve_overrides,
    substitute,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.beas.result import BEASResult
    from repro.bounded.coverage import CoverageDecision
    from repro.serving.server import BEASServer

#: Distinct bindings whose substituted AST + fingerprint stay memoised.
_BINDING_CACHE_LIMIT = 64


class PreparedQuery:
    """One parsed template plus its parameterisable constant slots."""

    def __init__(
        self,
        server: "BEASServer",
        statement: ast.Statement,
        sql: str,
        name: Optional[str] = None,
        *,
        fingerprint: Optional[str] = None,
        tables: Optional[frozenset[str]] = None,
    ):
        self._server = server
        self.sql = sql
        self.statement = statement
        self.fingerprint = fingerprint or statement_fingerprint(statement)
        self.tables = tables if tables is not None else statement_tables(statement)
        self.slots: dict[str, ParameterSlot] = extract_slots(
            statement, server.database.schema
        )
        self.name = name or f"pq-{self.fingerprint[:12]}"
        self._bindings: OrderedDict[tuple, tuple[ast.Statement, str]] = (
            OrderedDict()
        )
        # one handle is shared by every thread executing the template;
        # the memo's OrderedDict reordering is not safe bare
        self._bindings_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def bind(
        self, params: Optional[Mapping[str, Any]] = None
    ) -> tuple[ast.Statement, str]:
        """The concrete (statement, fingerprint) for one set of overrides.

        With no overrides the template's own constants are used. Distinct
        bindings are memoised (LRU) so repeated executes skip both the
        substitution and the canonical re-print.
        """
        if not params:
            return self.statement, self.fingerprint
        schema = self._server.database.schema
        resolved = resolve_overrides(params, self.slots, self.statement, schema)
        signature = binding_signature(resolved)
        with self._bindings_lock:
            cached = self._bindings.get(signature)
            if cached is not None:
                self._bindings.move_to_end(signature)
                return cached
        statement = substitute(self.statement, resolved, schema)
        fingerprint = statement_fingerprint(statement)
        with self._bindings_lock:
            self._bindings[signature] = (statement, fingerprint)
            while len(self._bindings) > _BINDING_CACHE_LIMIT:
                self._bindings.popitem(last=False)
        return statement, fingerprint

    def clear_bindings(self) -> None:
        """Drop the per-binding memo (``BEASServer.reset_caches``)."""
        with self._bindings_lock:
            self._bindings.clear()

    # ------------------------------------------------------------------ #
    def execute(
        self,
        params: Optional[Mapping[str, Any]] = None,
        *,
        budget: Optional[int] = None,
        allow_partial: bool = True,
        approximate_over_budget: bool = False,
        use_result_cache: bool = True,
        executor: Optional[str] = None,
    ) -> "BEASResult":
        """Execute one binding through the serving caches.

        ``executor`` overrides the bounded execution mode
        ("row"/"columnar") for this call only.
        """
        return self._server.execute_prepared(
            self,
            params,
            budget=budget,
            allow_partial=allow_partial,
            approximate_over_budget=approximate_over_budget,
            use_result_cache=use_result_cache,
            executor=executor,
        )

    __call__ = execute

    def check(
        self,
        params: Optional[Mapping[str, Any]] = None,
        budget: Optional[int] = None,
    ) -> "CoverageDecision":
        """The (cached) coverage decision for one binding."""
        return self._server.check_prepared(self, params, budget=budget)

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        lines = [
            f"prepared {self.name}: {self.fingerprint[:12]}…",
            f"  tables: {', '.join(sorted(self.tables)) or '(none)'}",
            f"  slots: "
            + (
                "; ".join(
                    self.slots[name].describe() for name in sorted(self.slots)
                )
                or "(none)"
            ),
            f"  bindings memoised: {len(self._bindings)}",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PreparedQuery({self.name}, slots={sorted(self.slots)}, "
            f"bindings={len(self._bindings)})"
        )
