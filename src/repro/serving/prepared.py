"""Prepared queries: parse and pin once, execute many times.

A :class:`PreparedQuery` does the frontend work a single time — parse,
stable fingerprint, dependency (table) set, parameter-slot extraction —
and then serves every execution through the owning
:class:`~repro.serving.server.BEASServer`'s caches. The coverage
decision and bounded plan for each distinct binding are pinned in the
server's decision cache, keyed by (fingerprint, access-schema
generation), so a repeated execute touches neither the parser, the
normalizer, nor the BE Checker.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.sql import ast
from repro.sql.fingerprint import statement_fingerprint, statement_tables
from repro.serving.params import (
    ParameterSlot,
    binding_signature,
    extract_slots,
    rebind_signature,
    resolve_overrides,
    substitute,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.beas.result import BEASResult
    from repro.bounded.coverage import CoverageDecision
    from repro.serving.server import BEASServer

#: Distinct bindings whose substituted AST + fingerprint stay memoised.
_BINDING_CACHE_LIMIT = 64


def binding_fingerprint(template_fingerprint: str, resolved: Mapping) -> str:
    """A stable fingerprint for (template, canonical overrides).

    Derived from the template's canonical fingerprint plus the resolved
    overrides (already deduped/sorted by ``canonical_values``), so it is
    computed in microseconds — without substituting and canonically
    re-printing the bound AST. The same bound query arriving as raw SQL
    text hashes under its own statement fingerprint instead; per
    ``sql.fingerprint``'s doctrine, a missed equivalence costs a cache
    miss, never a wrong answer.
    """
    preimage = (
        template_fingerprint + "|" + repr(tuple(sorted(resolved.items())))
    )
    return hashlib.sha256(preimage.encode("utf-8")).hexdigest()


class PreparedBinding:
    """One concrete binding of a prepared template.

    Carries everything the serving layer needs to execute the binding
    *and* to reuse a pinned plan across bindings: its fingerprint
    (result-cache key — the values matter for answers), the resolved
    slot overrides, and the binding's arity/type-class
    :func:`~repro.serving.params.rebind_signature` (rebind-template key
    — only the shape matters for plan reuse).

    The substituted ``statement`` is built **lazily**: a binding whose
    decision is served by rebinding (or from the exact decision cache)
    and whose plan covers the query never needs its own AST at decision
    time, so the common serving path skips the substitution entirely.
    """

    __slots__ = (
        "fingerprint",
        "overrides",
        "signature",
        "_statement",
        "_template_statement",
        "_schema",
    )

    def __init__(
        self,
        statement: Optional[ast.Statement],
        fingerprint: str,
        overrides: Optional[Mapping[str, tuple]] = None,
        signature: tuple = (),
        *,
        template_statement: Optional[ast.Statement] = None,
        schema=None,
    ):
        self._statement = statement
        self.fingerprint = fingerprint
        self.overrides: Mapping[str, tuple] = (
            overrides if overrides is not None else {}
        )
        self.signature = signature
        self._template_statement = template_statement
        self._schema = schema

    @property
    def statement(self) -> ast.Statement:
        statement = self._statement
        if statement is None:
            # pure + idempotent: a concurrent duplicate build is benign
            statement = substitute(
                self._template_statement, self.overrides, self._schema
            )
            self._statement = statement
        return statement

    @property
    def is_template(self) -> bool:
        """True when this binding is the template's own constants."""
        return not self.overrides

    def __repr__(self) -> str:
        return (
            f"PreparedBinding({self.fingerprint[:12]}…, "
            f"overrides={sorted(self.overrides)})"
        )


class PreparedQuery:
    """One parsed template plus its parameterisable constant slots."""

    def __init__(
        self,
        server: "BEASServer",
        statement: ast.Statement,
        sql: str,
        name: Optional[str] = None,
        *,
        fingerprint: Optional[str] = None,
        tables: Optional[frozenset[str]] = None,
    ):
        self._server = server
        self.sql = sql
        self.statement = statement
        self.fingerprint = fingerprint or statement_fingerprint(statement)
        self.tables = tables if tables is not None else statement_tables(statement)
        self.slots: dict[str, ParameterSlot] = extract_slots(
            statement, server.database.schema
        )
        self.name = name or f"pq-{self.fingerprint[:12]}"
        self._template_binding = PreparedBinding(statement, self.fingerprint)
        self._bindings: OrderedDict[tuple, PreparedBinding] = OrderedDict()
        # one handle is shared by every thread executing the template;
        # the memo's OrderedDict reordering is not safe bare
        self._bindings_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def binding(
        self, params: Optional[Mapping[str, Any]] = None
    ) -> PreparedBinding:
        """The concrete :class:`PreparedBinding` for one set of overrides.

        With no overrides the template's own constants are used. Distinct
        bindings are memoised (LRU) so repeated executes skip the
        substitution, the canonical re-print, and the signature build.
        """
        if not params:
            return self._template_binding
        schema = self._server.database.schema
        resolved = resolve_overrides(params, self.slots, self.statement, schema)
        memo_key = binding_signature(resolved)
        with self._bindings_lock:
            cached = self._bindings.get(memo_key)
            if cached is not None:
                self._bindings.move_to_end(memo_key)
                return cached
        bound = PreparedBinding(
            statement=None,  # substituted lazily, on first .statement use
            fingerprint=binding_fingerprint(self.fingerprint, resolved),
            overrides=MappingProxyType(dict(resolved)),
            signature=rebind_signature(resolved),
            template_statement=self.statement,
            schema=schema,
        )
        with self._bindings_lock:
            self._bindings[memo_key] = bound
            while len(self._bindings) > _BINDING_CACHE_LIMIT:
                self._bindings.popitem(last=False)
        return bound

    def bind(
        self, params: Optional[Mapping[str, Any]] = None
    ) -> tuple[ast.Statement, str]:
        """The concrete (statement, fingerprint) for one set of overrides
        (the narrow view of :meth:`binding`, kept for callers that only
        need the substituted AST)."""
        bound = self.binding(params)
        return bound.statement, bound.fingerprint

    def clear_bindings(self) -> None:
        """Drop the per-binding memo (``BEASServer.reset_caches``)."""
        with self._bindings_lock:
            self._bindings.clear()

    # ------------------------------------------------------------------ #
    def execute(
        self,
        params: Optional[Mapping[str, Any]] = None,
        *,
        budget: Optional[int] = None,
        allow_partial: bool = True,
        approximate_over_budget: bool = False,
        use_result_cache: bool = True,
        executor: Optional[str] = None,
        result_reuse: str = "exact",
        routing: str = "static",
    ) -> "BEASResult":
        """Execute one binding through the serving caches.

        ``executor`` overrides the bounded execution mode
        ("row"/"columnar") for this call only; ``result_reuse="subsume"``
        additionally lets a cached bounded superset binding answer this
        one by re-filtering its rows; ``routing="learned"`` delegates
        the mode choice to the server's online cost model.
        """
        return self._server.execute_prepared(
            self,
            params,
            budget=budget,
            allow_partial=allow_partial,
            approximate_over_budget=approximate_over_budget,
            use_result_cache=use_result_cache,
            executor=executor,
            result_reuse=result_reuse,
            routing=routing,
        )

    __call__ = execute

    def check(
        self,
        params: Optional[Mapping[str, Any]] = None,
        budget: Optional[int] = None,
    ) -> "CoverageDecision":
        """The (cached) coverage decision for one binding."""
        return self._server.check_prepared(self, params, budget=budget)

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        lines = [
            f"prepared {self.name}: {self.fingerprint[:12]}…",
            f"  tables: {', '.join(sorted(self.tables)) or '(none)'}",
            f"  slots: "
            + (
                "; ".join(
                    self.slots[name].describe() for name in sorted(self.slots)
                )
                or "(none)"
            ),
            f"  bindings memoised: {len(self._bindings)}",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PreparedQuery({self.name}, slots={sorted(self.slots)}, "
            f"bindings={len(self._bindings)})"
        )
