"""Parameterised constant slots for prepared queries.

A prepared template's *slots* are the constants of its WHERE clause that
bounded evaluation treats as enumerable bindings: top-level conjuncts of
the form ``attr = constant`` and ``attr IN (constants)``. One template
then serves many bindings — ``PreparedQuery.execute({"call.date":
"2016-06-02"})`` substitutes fresh constants into a copy of the AST
without re-parsing the text.

Slots are named by their resolved attribute (``binding.column``); an
unqualified column name is accepted in overrides when it is unambiguous
across the template's FROM items, mirroring the normalizer's resolution
rules. Constants appearing anywhere else (range predicates, LIKE
patterns, HAVING, …) stay fixed in the template.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence, Union

from repro.catalog.schema import DatabaseSchema
from repro.errors import (
    NormalizationError,
    ReproError,
    ServingError,
    UnknownParameterError,
)
from repro.sql import ast
from repro.sql.fingerprint import _and_conjuncts, _rebuild_and
from repro.sql.normalize import _Resolver, _collect_occurrences


@dataclass(frozen=True)
class ParameterSlot:
    """One parameterisable constant position of a template."""

    name: str  # "binding.column"
    kind: str  # "eq" | "in"
    values: tuple  # the template's own constants

    def describe(self) -> str:
        rendered = ", ".join(repr(v) for v in self.values)
        return f"{self.name} {self.kind} ({rendered})"


def _slot_conjunct(
    conjunct: ast.Expression, resolver: _Resolver
) -> Optional[tuple[str, str, tuple]]:
    """Recognise ``attr = const`` / ``attr IN (consts)``; None otherwise."""
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
        sides = (conjunct.left, conjunct.right)
        for ref, lit in (sides, sides[::-1]):
            if (
                isinstance(ref, ast.ColumnRef)
                and isinstance(lit, ast.Literal)
                and lit.value is not None
            ):
                resolved = resolver.resolve_ref(ref)
                return (str(resolved), "eq", (lit.value,))
        return None
    if (
        isinstance(conjunct, ast.InList)
        and not conjunct.negated
        and isinstance(conjunct.operand, ast.ColumnRef)
        and all(
            isinstance(item, ast.Literal) and item.value is not None
            for item in conjunct.items
        )
    ):
        resolved = resolver.resolve_ref(conjunct.operand)
        values = tuple(item.value for item in conjunct.items)
        return (str(resolved), "in", values)
    return None


def _template_parts(
    statement: ast.SelectStatement, db_schema: DatabaseSchema
) -> Optional[tuple[_Resolver, list[ast.Expression]]]:
    if statement.where is None:
        return None
    try:
        occurrences, _ = _collect_occurrences(statement.from_items)
        resolver = _Resolver(db_schema, occurrences)
    except (NormalizationError, ReproError):
        return None  # outside the resolvable fragment: no slots
    return resolver, _and_conjuncts(statement.where)


def extract_slots(
    statement: ast.Statement, db_schema: DatabaseSchema
) -> dict[str, ParameterSlot]:
    """The parameterisable slots of a template (empty for set operations)."""
    if not isinstance(statement, ast.SelectStatement):
        return {}
    parts = _template_parts(statement, db_schema)
    if parts is None:
        return {}
    resolver, conjuncts = parts
    slots: dict[str, ParameterSlot] = {}
    ambiguous: set[str] = set()
    for conjunct in conjuncts:
        try:
            recognised = _slot_conjunct(conjunct, resolver)
        except ReproError:
            recognised = None
        if recognised is None:
            continue
        name, kind, values = recognised
        if name in slots:
            # the same attribute constrained twice: not parameterisable
            ambiguous.add(name)
            continue
        slots[name] = ParameterSlot(name, kind, values)
    for name in ambiguous:
        slots.pop(name, None)
    return slots


def canonical_values(value: Any) -> tuple:
    """Coerce one override (scalar or sequence) to a canonical value tuple."""
    if isinstance(value, (list, tuple, set, frozenset)):
        values = tuple(value)
    else:
        values = (value,)
    if not values:
        raise ServingError("a parameter override needs at least one value")
    for v in values:
        if v is None:
            raise ServingError(
                "NULL is not a valid parameter value (x = NULL never holds)"
            )
    return tuple(sorted(set(values), key=lambda v: (str(type(v)), repr(v))))


def resolve_slot_name(key: str, slots: Mapping[str, ParameterSlot]) -> str:
    """Resolve one override key to its slot name.

    Keys may be fully qualified (``binding.column``) or bare column names
    when unambiguous among the slots; unknown or ambiguous keys raise.
    """
    if key in slots:
        return key
    if "." not in key:
        matches = [s for s in slots if s.split(".", 1)[1] == key]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise ServingError(
                f"parameter {key!r} is ambiguous among slots: "
                f"{', '.join(matches)}"
            )
    raise UnknownParameterError(key, sorted(slots))


def resolve_overrides(
    overrides: Mapping[str, Any],
    slots: Mapping[str, ParameterSlot],
    statement: ast.Statement,
    db_schema: DatabaseSchema,
) -> dict[str, tuple]:
    """Map override keys to slot names, canonicalising the values."""
    return {
        resolve_slot_name(key, slots): canonical_values(value)
        for key, value in overrides.items()
    }


def substitute(
    statement: ast.SelectStatement,
    overrides: Mapping[str, tuple],
    db_schema: DatabaseSchema,
) -> ast.SelectStatement:
    """A copy of ``statement`` with slot constants replaced.

    ``overrides`` must already be resolved (slot name -> value tuple, via
    :func:`resolve_overrides`). Conjuncts that are not overridden slots
    are shared, not copied — AST nodes are immutable.
    """
    if not overrides:
        return statement
    parts = _template_parts(statement, db_schema)
    if parts is None:  # pragma: no cover - callers check slots first
        raise ServingError("template has no parameterisable WHERE clause")
    resolver, conjuncts = parts
    replaced: set[str] = set()
    rebuilt: list[ast.Expression] = []
    for conjunct in conjuncts:
        recognised = _slot_conjunct(conjunct, resolver)
        if recognised is None or recognised[0] not in overrides:
            rebuilt.append(conjunct)
            continue
        name = recognised[0]
        values = overrides[name]
        operand: ast.Expression
        if isinstance(conjunct, ast.InList):
            operand = conjunct.operand
        else:
            left, right = conjunct.left, conjunct.right
            operand = left if isinstance(left, ast.ColumnRef) else right
        if len(values) == 1:
            rebuilt.append(ast.BinaryOp("=", operand, ast.Literal(values[0])))
        else:
            rebuilt.append(
                ast.InList(operand, tuple(ast.Literal(v) for v in values))
            )
        replaced.add(name)
    missing = set(overrides) - replaced
    if missing:  # pragma: no cover - resolve_overrides guards this
        raise ServingError(
            f"slots not found in template: {', '.join(sorted(missing))}"
        )
    return ast.SelectStatement(
        items=statement.items,
        from_items=statement.from_items,
        where=_rebuild_and(rebuilt),
        group_by=statement.group_by,
        having=statement.having,
        order_by=statement.order_by,
        limit=statement.limit,
        offset=statement.offset,
        distinct=statement.distinct,
    )


def binding_signature(overrides: Mapping[str, tuple]) -> tuple:
    """A hashable, order-independent key for one set of resolved overrides."""
    return tuple(sorted(overrides.items()))


def rebind_signature(overrides: Mapping[str, tuple]) -> tuple:
    """The binding's *shape*: slot names, IN-list arities, and per-value
    type classes — everything the checker's verdict and bound arithmetic
    can depend on, with the constant values abstracted away.

    The serving layer keys pinned rebind templates by this signature
    (plus the template fingerprint and access-schema generation), so two
    bindings share a pinned plan exactly when constraint-preserving
    rebinding is sound for them: equal arity and type class per slot.
    NULL-ness never appears — :func:`canonical_values` rejects NULL
    overrides outright (``x = NULL`` never holds), so a NULL-bearing
    binding cannot reach the rebind path at all.
    """
    return tuple(
        (name, len(values), tuple(type(v).__name__ for v in values))
        for name, values in sorted(overrides.items())
    )


Override = Union[Any, Sequence[Any]]
