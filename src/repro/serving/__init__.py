"""Prepared-query serving layer (online amortisation of BEAS frontends).

BEAS's promise — answers under a fixed access bound regardless of
``|D|`` — fits repeated analytic workloads, but the seed prototype paid
parse + normalize + BE Checker cost on every ``BEAS.execute()``. This
package amortises that cost behind prepared statements and a multi-level
cache hierarchy, partitioned by table so concurrent traffic scales:

* :class:`~repro.serving.prepared.PreparedQuery` — parse/fingerprint
  once, parameterised constant slots, per-binding memoisation;
* :class:`~repro.serving.server.BEASServer` — the **sharded** serving
  core: per-table reader/writer locks over table data + access indices
  + result-cache slices, a striped coverage-decision cache, ordered
  multi-shard read locking for joins, and admit-on-second-hit result
  admission — all with maintenance-aware invalidation (access-schema
  generation + per-table data versions);
* :class:`~repro.serving.async_server.AsyncBEASServer` — the asyncio
  front end: bounded worker pool, admission control, per-shard
  maintenance queues with batched draining;
* :class:`~repro.serving.shard.TableShard` / ``ShardLock`` /
  ``StripedCache`` — the sharding primitives;
* :class:`~repro.serving.cache.LRUCache` / ``CacheStats`` — the shared
  budgeted-LRU primitive and its counters.

Entry points::

    server = beas.serve()                       # sharded, thread-safe
    pq = server.prepare("SELECT ... WHERE call.date = '2016-06-01' ...")
    r1 = pq()                                   # cold: plan pinned
    r2 = pq()                                   # admitted to the cache
    r3 = pq({"call.date": "2016-06-02"})        # new binding, same template
    print(server.stats().describe())            # incl. per-shard counters

    aserver = beas.serve_async()                # asyncio front end
    results = await asyncio.gather(*(aserver.execute(q) for q in queries))
"""

from repro.serving.async_server import AsyncBEASServer, AsyncServingStats
from repro.serving.cache import CacheStats, LRUCache, approx_size
from repro.serving.params import (
    ParameterSlot,
    extract_slots,
    rebind_signature,
    substitute,
)
from repro.serving.prepared import PreparedBinding, PreparedQuery
from repro.serving.server import BEASServer, ServingStats
from repro.serving.shard import (
    LockStats,
    ShardLock,
    ShardStats,
    StripedCache,
    TableShard,
)

__all__ = [
    "AsyncBEASServer",
    "AsyncServingStats",
    "BEASServer",
    "CacheStats",
    "LockStats",
    "LRUCache",
    "ParameterSlot",
    "PreparedBinding",
    "PreparedQuery",
    "ServingStats",
    "rebind_signature",
    "ShardLock",
    "ShardStats",
    "StripedCache",
    "TableShard",
    "approx_size",
    "extract_slots",
    "substitute",
]
