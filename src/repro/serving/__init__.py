"""Prepared-query serving layer (online amortisation of BEAS frontends).

BEAS's promise — answers under a fixed access bound regardless of
``|D|`` — fits repeated analytic workloads, but the seed prototype paid
parse + normalize + BE Checker cost on every ``BEAS.execute()``. This
package amortises that cost behind prepared statements and a multi-level
cache hierarchy:

* :class:`~repro.serving.prepared.PreparedQuery` — parse/fingerprint
  once, parameterised constant slots, per-binding memoisation;
* :class:`~repro.serving.server.BEASServer` — parse / coverage-decision
  / result caches with maintenance-aware invalidation (access-schema
  generation + per-table data versions);
* :class:`~repro.serving.cache.LRUCache` / ``CacheStats`` — the shared
  budgeted-LRU primitive and its counters.

Entry point::

    server = beas.serve()
    pq = server.prepare("SELECT ... WHERE call.date = '2016-06-01' ...")
    r1 = pq()                                   # cold: plan pinned
    r2 = pq()                                   # warm: result-cache hit
    r3 = pq({"call.date": "2016-06-02"})        # new binding, same template
    print(server.stats().describe())
"""

from repro.serving.cache import CacheStats, LRUCache, approx_size
from repro.serving.params import ParameterSlot, extract_slots, substitute
from repro.serving.prepared import PreparedQuery
from repro.serving.server import BEASServer, ServingStats

__all__ = [
    "BEASServer",
    "CacheStats",
    "LRUCache",
    "ParameterSlot",
    "PreparedQuery",
    "ServingStats",
    "approx_size",
    "extract_slots",
    "substitute",
]
