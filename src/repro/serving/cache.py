"""Cache primitives for the serving layer.

One :class:`LRUCache` implementation backs all three serving caches
(parse, coverage-decision, result). Entries carry an approximate byte
size so the result cache can enforce a byte budget on top of the entry
budget; the cheaper caches pass ``sizeof=None`` and pay only the entry
budget. Every cache keeps a :class:`CacheStats` counter block that the
server surfaces through ``BEASServer.stats()`` and the CLI.

The cache itself is not thread-safe; :class:`~repro.serving.server.
BEASServer` serialises access behind one lock (the underlying engines
are single-threaded anyway).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Optional


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    name: str
    hits: int = 0
    misses: int = 0
    evictions: int = 0  # capacity-driven removals (LRU order / byte budget)
    invalidations: int = 0  # staleness-driven removals (generation bumps)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (
            f"{self.name}: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%}), {self.evictions} evictions, "
            f"{self.invalidations} invalidations"
        )


@dataclass
class _Entry:
    value: Any
    size: int


def approx_size(value: Any, _depth: int = 0) -> int:
    """Cheap recursive estimate of the in-memory footprint in bytes.

    Exact accounting is not the goal — the result cache only needs a
    stable, monotone measure to enforce its byte budget.
    """
    if _depth > 6:
        return 64
    if value is None or isinstance(value, bool):
        return 16
    if isinstance(value, (int, float)):
        return 28
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, bytes):
        return 33 + len(value)
    if isinstance(value, (tuple, list, set, frozenset)):
        return 56 + 8 * len(value) + sum(
            approx_size(item, _depth + 1) for item in value
        )
    if isinstance(value, dict):
        return 64 + sum(
            approx_size(k, _depth + 1) + approx_size(v, _depth + 1)
            for k, v in value.items()
        )
    return 128  # opaque object: flat charge


class LRUCache:
    """An LRU map with entry- and byte-budgets and counters.

    ``max_bytes=None`` disables byte accounting (``sizeof`` is then never
    called). A single value larger than ``max_bytes`` is refused rather
    than evicting the whole cache to make room.
    """

    def __init__(
        self,
        name: str,
        *,
        max_entries: int = 256,
        max_bytes: Optional[int] = None,
        sizeof: Optional[Callable[[Any], int]] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.stats = CacheStats(name)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._sizeof = sizeof or (lambda value: 0)
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._bytes = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def current_bytes(self) -> int:
        return self._bytes

    def keys(self) -> list[Hashable]:
        return list(self._entries.keys())

    # ------------------------------------------------------------------ #
    def get(self, key: Hashable, default: Any = None) -> Any:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Read a value without touching recency order or counters.

        The subsumption prober uses this to inspect candidate entries:
        a probe is speculative, so it must neither promote a candidate
        in LRU order nor distort the hit/miss accounting the exact
        lookup path reports.
        """
        entry = self._entries.get(key)
        return default if entry is None else entry.value

    def put(self, key: Hashable, value: Any) -> bool:
        """Insert/replace; returns False when the value exceeds the budget."""
        size = self._sizeof(value) if self.max_bytes is not None else 0
        if self.max_bytes is not None and size > self.max_bytes:
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.size
        self._entries[key] = _Entry(value, size)
        self._bytes += size
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None and self._bytes > self.max_bytes
        ):
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.size
            self.stats.evictions += 1
        return True

    # ------------------------------------------------------------------ #
    def invalidate(self, key: Hashable) -> bool:
        """Drop one key as stale (counted as an invalidation, not eviction)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._bytes -= entry.size
        self.stats.invalidations += 1
        return True

    def invalidate_where(self, predicate: Callable[[Hashable, Any], bool]) -> int:
        """Drop every entry for which ``predicate(key, value)`` holds."""
        stale = [
            key
            for key, entry in self._entries.items()
            if predicate(key, entry.value)
        ]
        for key in stale:
            entry = self._entries.pop(key)
            self._bytes -= entry.size
        self.stats.invalidations += len(stale)
        return len(stale)

    def invalidate_all(self) -> int:
        count = len(self._entries)
        self._entries.clear()
        self._bytes = 0
        self.stats.invalidations += count
        return count

    def items(self) -> Iterable[tuple[Hashable, Any]]:
        return [(key, entry.value) for key, entry in self._entries.items()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LRUCache({self.stats.name}, entries={len(self)}, "
            f"bytes={self._bytes})"
        )
