"""The prepared-query serving layer: the sharded ``BEASServer``.

Wraps one :class:`~repro.beas.system.BEAS` instance with the machinery a
high-traffic deployment needs to amortise per-query frontend cost:

* a **parse cache** (SQL text -> AST + fingerprint + table set),
* a **coverage-decision cache** keyed by (query fingerprint,
  access-schema generation) — the pinned BE Checker outcome and bounded
  plan for each distinct query/binding,
* an **LRU result cache** with entry and byte budgets, invalidated at
  per-table granularity by a monotonic data-generation counter
  (:attr:`~repro.storage.table.Table.version`) so an insert into
  ``call`` never evicts results computed over ``package`` only.

Concurrency model (the sharded architecture):

* Server state is **partitioned by table**: each table gets a
  :class:`~repro.serving.shard.TableShard` holding a reader/writer lock
  over the table's rows + access indices and this table's slice of the
  result cache. Single-table queries and maintenance batches on
  disjoint tables proceed fully in parallel; a multi-table join takes
  read locks on every dependency shard in **canonical table order**
  (deadlock-free), so its answer is computed against one consistent
  table-version vector — no torn reads across shards.
* The parse and decision caches are **lock-striped**
  (:class:`~repro.serving.shard.StripedCache`), keyed by text /
  fingerprint, so hot traffic on distinct queries does not serialise on
  one mutex.
* A coarse **schema lock** is held for read by every request and for
  write only by ``register``/``unregister`` — access-schema changes are
  rare and flush the decision + result caches wholesale.
* Cached results additionally record the access-schema generation and
  the exact table-version vector they were computed under; a hit is
  served only when both still match the live values, so a stale row can
  never be served even when a mutation bypassed the serving layer.

Result-cache admission is **admit-on-second-hit** by default (pass
``result_admission="always"`` to restore eager admission): the first
sighting of a (fingerprint, options) key only registers it in a
per-shard doorkeeper, so one-off ad-hoc or fuzz queries stop churning
the LRU; a key seen twice is cached for real.

``sharded=False`` collapses every table onto a single shard and every
stripe onto one — the global-lock baseline the concurrency benchmark
compares against.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Hashable, Mapping, Optional, Union

from repro.beas.result import BEASResult, ExecutionMode
from repro.bounded.plan import BoundedPlan
from repro.bounded.rebind import RebindTemplate, build_rebind_template
from repro.bounded.subsume import (
    Candidate,
    QuerySummary,
    SubsumptionIndex,
    apply_refilter,
    subsumes,
    summarize_statement,
)
from repro.config import env_routing_epsilon, validate_result_reuse, validate_routing
from repro.engine.columnar import resolve_executor_mode
from repro.engine.metrics import ExecutionMetrics
from repro.engine.pool import PoolStats
from repro.distributed.fleet import FleetStats
from repro.engine.router import ExecutorRouter, RouterStats, routing_features
from repro.errors import ServingError, UnknownTableError
from repro.sql import ast
from repro.sql.fingerprint import statement_fingerprint, statement_tables
from repro.sql.parser import parse
from repro.serving.cache import CacheStats, LRUCache, approx_size
from repro.serving.prepared import PreparedBinding, PreparedQuery
from repro.storage.mmapstore import StorageStats
from repro.serving.shard import (
    LockStats,
    ShardLock,
    ShardStats,
    StripedCache,
    TableShard,
    acquire_read_ordered,
    order_shards,
    release_read_ordered,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.access.constraint import AccessConstraint
    from repro.beas.system import BEAS
    from repro.bounded.coverage import CoverageDecision
    from repro.maintenance.incremental import UpdateBatch

#: Shard name used when ``sharded=False`` (every table maps here) and for
#: queries with an empty dependency set.
GLOBAL_SHARD = "__global__"


@dataclass
class _CachedResult:
    """One result-cache entry plus the generations it depends on.

    ``summary`` is the entry's predicate-lattice summary, present only
    when the server runs with ``result_reuse="subsume"`` and the entry
    is an eligible subsumption source (BOUNDED mode, reusable shape);
    ``template_fingerprint`` records the pinned rebind template the
    answer derived from, so a merged-arity fallback can drop candidates
    with stale plan provenance.
    """

    columns: list[str]
    rows: list[tuple]
    mode: ExecutionMode
    decision: "CoverageDecision"
    table_versions: dict[str, int]
    schema_generation: int
    summary: Optional[QuerySummary] = None
    template_fingerprint: Optional[str] = None


def _result_size(entry: _CachedResult) -> int:
    return approx_size(entry.columns) + approx_size(entry.rows)


@dataclass(frozen=True)
class _RebindRequest:
    """Plan-reuse context for one prepared binding.

    The decision cache holds, next to the per-binding exact entries, one
    *pinned template* per (template fingerprint, arity signature,
    schema generation): the first binding of each signature pays a full
    BE Checker run and pins its decision plus a
    :class:`~repro.bounded.rebind.RebindTemplate`; every later
    equal-signature binding patches the pinned plan's constant key parts
    directly — zero checker runs. A binding that changes a slot's
    IN-list arity, NULL-ness, or type class lands on a different
    signature (or trips the rebinder's merged-arity guard) and re-checks.
    """

    template_fingerprint: str
    signature: tuple
    overrides: Mapping[str, tuple]

    def cache_key(self, generation: int) -> tuple:
        return ("rebind", self.template_fingerprint, self.signature, generation)


@dataclass
class ServingStats:
    """Aggregated serving counters (``BEASServer.stats()``)."""

    parse: CacheStats
    decision: CacheStats
    result: CacheStats
    result_entries: int = 0
    result_bytes: int = 0
    prepared_queries: int = 0
    executions: int = 0
    schema_generation: int = 0
    table_versions: dict[str, int] = field(default_factory=dict)
    shards: dict[str, ShardStats] = field(default_factory=dict)
    schema_lock: Optional[LockStats] = None
    admission_declines: int = 0
    # plan-rebinding counters: decisions served by patching a pinned
    # plan's constants (no BE Checker run), guard-triggered fallbacks to
    # a full re-check, and the underlying checker's lifetime run count
    rebinds: int = 0
    rebind_fallbacks: int = 0
    checker_runs: int = 0
    # subsumption counters (result_reuse="subsume"): queries answered by
    # re-filtering a cached bounded superset, probes that found no sound
    # source, and candidates dropped for stale plan provenance (rebind
    # fallbacks abandoning the pinned plan they derived from)
    subsumed_hits: int = 0
    subsumption_rejects: int = 0
    subsumption_invalidations: int = 0
    # engine-pool counters (None while no pool has started): requests on
    # this server dispatch bounded work to the BEAS instance's worker
    # processes when it was built with parallelism >= 2
    pool: Optional[PoolStats] = None
    # serving-fleet counters (None while no replica fleet has spawned):
    # covered bounded requests on this server are answered by the BEAS
    # instance's socket-connected read replicas when it was built with
    # replicas >= 2
    fleet: Optional[FleetStats] = None
    # learned-routing counters (routing="learned" requests): per-route
    # decisions, exploration rate, training observations, cost-aware
    # admission declines
    routing: Optional[RouterStats] = None
    # persistent-storage counters (None while the BEAS instance runs the
    # in-memory engine): warm-start provenance, WAL traffic, checkpoint
    # and shared-memory snapshot activity
    storage: Optional[StorageStats] = None

    @property
    def lock_wait_seconds(self) -> float:
        """Total time requests spent blocked on shard + schema locks."""
        total = sum(s.lock.wait_seconds for s in self.shards.values())
        if self.schema_lock is not None:
            total += self.schema_lock.wait_seconds
        return total

    @property
    def contended_acquisitions(self) -> int:
        total = sum(s.lock.contended_acquisitions for s in self.shards.values())
        if self.schema_lock is not None:
            total += self.schema_lock.contended_acquisitions
        return total

    def describe(self) -> str:
        lines = [
            "serving stats:",
            f"  {self.parse.describe()}",
            f"  {self.decision.describe()}",
            f"  {self.result.describe()}",
            f"  result cache: {self.result_entries} entries, "
            f"{self.result_bytes} bytes, "
            f"{self.admission_declines} admissions declined",
            f"  prepared queries: {self.prepared_queries}",
            f"  executions served: {self.executions}",
            f"  plan rebinds: {self.rebinds} served without the BE Checker "
            f"({self.rebind_fallbacks} guard fallbacks, "
            f"{self.checker_runs} checker runs total)",
            f"  subsumption: {self.subsumed_hits} subsumed hits, "
            f"{self.subsumption_rejects} rejects, "
            f"{self.subsumption_invalidations} candidates invalidated",
            f"  access-schema generation: {self.schema_generation}",
            f"  lock contention: {self.contended_acquisitions} contended "
            f"acquisitions, waited {self.lock_wait_seconds * 1000:.2f} ms",
        ]
        if self.pool is not None:
            lines.append(f"  {self.pool.describe()}")
        if self.fleet is not None:
            lines.append(f"  {self.fleet.describe()}")
        if self.storage is not None:
            for line in self.storage.describe().splitlines():
                lines.append(f"  {line}")
        if self.routing is not None and self.routing.decisions:
            for line in self.routing.describe().splitlines():
                lines.append(f"  {line}")
        for name in sorted(self.shards):
            lines.append(f"  {self.shards[name].describe()}")
        return "\n".join(lines)


class BEASServer:
    """Prepare/execute front end over one BEAS instance (see module doc)."""

    def __init__(
        self,
        beas: "BEAS",
        *,
        parse_cache_entries: int = 512,
        decision_cache_entries: int = 1024,
        result_cache_entries: int = 512,
        result_cache_bytes: Optional[int] = 8 << 20,
        sharded: bool = True,
        decision_stripes: int = 8,
        result_admission: str = "second-hit",
    ):
        if result_admission not in ("second-hit", "always"):
            raise ServingError(
                f"unknown result_admission {result_admission!r} "
                "(expected 'second-hit' or 'always')"
            )
        self._beas = beas
        self._sharded = sharded
        self._admission = result_admission
        self._schema_lock = ShardLock("schema")
        #: leaf mutex guarding prepared registry, execution counter, and
        #: the observed schema generation
        self._admin_lock = threading.Lock()
        #: leaf mutex guarding the table -> {result key -> home shard}
        #: dependency index used for cross-shard invalidation
        self._dep_lock = threading.Lock()
        self._dep_index: dict[str, dict[Hashable, str]] = {}

        stripes = decision_stripes if sharded else 1
        self._parse_cache = StripedCache(
            "parse", max_entries=parse_cache_entries, stripes=min(4, stripes)
        )
        self._decision_cache = StripedCache(
            "decision", max_entries=decision_cache_entries, stripes=stripes
        )
        # predicate-lattice summaries, keyed by fingerprint — pure
        # functions of the statement, so never flushed for freshness
        self._summary_cache = StripedCache(
            "summary", max_entries=parse_cache_entries, stripes=min(4, stripes)
        )
        self._subsume_index = SubsumptionIndex()

        self._result_entries_budget = result_cache_entries
        self._result_bytes_budget = result_cache_bytes
        table_names = [table.schema.name for table in beas.database]
        shard_names = table_names if sharded else [GLOBAL_SHARD]
        self._shards: dict[str, TableShard] = {}
        for name in shard_names:
            self._shards[name] = self._new_shard(name, len(shard_names))
        if sharded:
            # home for queries with an empty dependency set
            self._shards.setdefault(
                GLOBAL_SHARD, self._new_shard(GLOBAL_SHARD, len(shard_names))
            )
        for shard in self._shards.values():
            if shard.table in beas.database:
                shard.version = beas.database.table(shard.table).version

        self._prepared: dict[str, PreparedQuery] = {}
        self._executions = 0
        self._rebinds = 0
        self._rebind_fallbacks = 0
        self._subsumed_hits = 0
        self._subsumption_rejects = 0
        self._subsumption_invalidations = 0
        self._schema_generation = beas.catalog.schema_generation
        self._router = ExecutorRouter(
            parallelism=beas.parallelism, epsilon=env_routing_epsilon()
        )
        if beas.store is not None:
            self._prewarm_result_cache()

    def _new_shard(self, name: str, shard_count: int) -> TableShard:
        entries = max(8, self._result_entries_budget // max(shard_count, 1))
        byte_budget = self._result_bytes_budget
        if byte_budget is not None:
            byte_budget = max(1 << 16, byte_budget // max(shard_count, 1))
        return TableShard(
            name,
            result_entries=entries,
            result_bytes=byte_budget,
            sizeof=_result_size,
            admit_on_second_hit=self._admission == "second-hit",
        )

    # ------------------------------------------------------------------ #
    @property
    def beas(self) -> "BEAS":
        return self._beas

    @property
    def router(self) -> ExecutorRouter:
        """The learned executor router (consulted only by
        ``routing="learned"`` requests; always constructed so its state
        accumulates across routing-mode changes)."""
        return self._router

    @property
    def database(self):
        return self._beas.database

    @property
    def sharded(self) -> bool:
        return self._sharded

    def shard(self, table_name: str) -> TableShard:
        """The shard a table maps to (the global shard when unsharded).

        Names that do not exist in the database map to the global shard
        instead of minting a permanent phantom shard — the request will
        fail with ``UnknownTableError`` downstream anyway.
        """
        if not self._sharded:
            return self._shards[GLOBAL_SHARD]
        shard = self._shards.get(table_name)
        if shard is None:
            if table_name not in self._beas.database:
                return self._shards[GLOBAL_SHARD]
            with self._admin_lock:
                shard = self._shards.get(table_name)
                if shard is None:  # table added after server construction
                    shard = self._new_shard(table_name, len(self._shards))
                    self._shards[table_name] = shard
        return shard

    def shards(self) -> dict[str, TableShard]:
        """A snapshot of the shard map (inspection / tests)."""
        with self._admin_lock:
            return dict(self._shards)

    def _shards_for(self, tables: frozenset[str]) -> list[TableShard]:
        return order_shards(self.shard(name) for name in tables)

    def _home_shard(self, tables: frozenset[str]) -> TableShard:
        if not tables:
            return self._shards[GLOBAL_SHARD]
        return self.shard(min(tables))

    # ------------------------------------------------------------------ #
    # prepare
    # ------------------------------------------------------------------ #
    def prepare(self, sql: str, name: Optional[str] = None) -> PreparedQuery:
        """Parse/fingerprint once; returns the reusable prepared handle.

        Preparing the same text again returns the existing handle (under
        its existing name when ``name`` is not given).
        """
        statement, fingerprint, tables, _ = self._frontend(sql)
        with self._admin_lock:
            for existing in self._prepared.values():
                if existing.fingerprint == fingerprint and (
                    name is None or existing.name == name
                ):
                    return existing
            prepared = PreparedQuery(
                self, statement, sql, name,
                fingerprint=fingerprint, tables=tables,
            )
            if prepared.name in self._prepared:
                raise ServingError(
                    f"a different query is already prepared as "
                    f"{prepared.name!r}"
                )
            self._prepared[prepared.name] = prepared
            return prepared

    def prepared(self, name: str) -> PreparedQuery:
        with self._admin_lock:
            try:
                return self._prepared[name]
            except KeyError:
                raise ServingError(f"no prepared query named {name!r}") from None

    def prepared_names(self) -> list[str]:
        with self._admin_lock:
            return sorted(self._prepared)

    # ------------------------------------------------------------------ #
    # execute
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Union[str, ast.Statement],
        *,
        budget: Optional[int] = None,
        allow_partial: bool = True,
        approximate_over_budget: bool = False,
        use_result_cache: bool = True,
        executor: Optional[str] = None,
        result_reuse: str = "exact",
        routing: str = "static",
    ) -> BEASResult:
        """One-shot execution through the serving caches (no prepare).

        ``executor`` selects the bounded execution mode ("row" or
        "columnar") for this query only; answers are mode-independent,
        so cached results are shared across modes. ``result_reuse``
        selects the cache-matching policy: ``"exact"`` serves only
        presentation-equal fingerprints; ``"subsume"`` additionally
        answers from a cached bounded superset by re-filtering its rows
        (:mod:`repro.bounded.subsume`). ``routing="learned"`` hands the
        mode choice for covered bounded plans to the online cost model
        (:mod:`repro.engine.router`) instead of ``executor``.
        """
        statement, fingerprint, tables, parse_hit = self._frontend(query)
        return self._execute(
            statement,
            fingerprint,
            tables,
            budget=budget,
            allow_partial=allow_partial,
            approximate_over_budget=approximate_over_budget,
            use_result_cache=use_result_cache,
            parse_hit=parse_hit,
            executor=executor,
            result_reuse=result_reuse,
            routing=routing,
        )

    def execute_prepared(
        self,
        prepared: Union[str, PreparedQuery],
        params: Optional[Mapping[str, Any]] = None,
        *,
        budget: Optional[int] = None,
        allow_partial: bool = True,
        approximate_over_budget: bool = False,
        use_result_cache: bool = True,
        executor: Optional[str] = None,
        result_reuse: str = "exact",
        routing: str = "static",
    ) -> BEASResult:
        """Execute a prepared query (by handle or name) for one binding.

        A binding whose arity signature matches an earlier one reuses
        that binding's pinned plan via constraint-preserving rebinding —
        the BE Checker runs once per signature, not once per binding.
        With ``result_reuse="subsume"``, a binding whose predicate
        region is contained in an earlier cached binding's is answered
        by re-filtering that binding's rows — no execution at all.
        """
        if isinstance(prepared, str):
            prepared = self.prepared(prepared)
        bound = prepared.binding(params)
        return self._execute(
            bound.statement,
            bound.fingerprint,
            prepared.tables,
            budget=budget,
            allow_partial=allow_partial,
            approximate_over_budget=approximate_over_budget,
            use_result_cache=use_result_cache,
            parse_hit=True,  # the template parse is amortised
            executor=executor,
            rebind=self._rebind_request(prepared, bound),
            result_reuse=result_reuse,
            routing=routing,
        )

    def check(
        self, query: Union[str, ast.Statement], budget: Optional[int] = None
    ) -> "CoverageDecision":
        """The (cached) BE Checker outcome for a query."""
        statement, fingerprint, _, _ = self._frontend(query)
        with self._schema_lock.read():
            # observed under the read lock: a completed register/unregister
            # (write section) is guaranteed visible here
            generation = self._observe_schema_generation()
            decision, _ = self._decision(statement, fingerprint, generation)
        return self._with_budget(decision, budget)

    def check_prepared(
        self,
        prepared: Union[str, PreparedQuery],
        params: Optional[Mapping[str, Any]] = None,
        *,
        budget: Optional[int] = None,
    ) -> "CoverageDecision":
        return self.decide_prepared(prepared, params, budget=budget)[0]

    def decide_prepared(
        self,
        prepared: Union[str, PreparedQuery],
        params: Optional[Mapping[str, Any]] = None,
        *,
        budget: Optional[int] = None,
    ) -> tuple["CoverageDecision", str]:
        """The coverage decision for one binding plus its provenance:
        ``"fresh"`` (full BE Checker run), ``"cached"`` (exact
        decision-cache hit), or ``"rebound"`` (pinned plan patched for
        this binding, no checker run)."""
        if isinstance(prepared, str):
            prepared = self.prepared(prepared)
        bound = prepared.binding(params)
        with self._schema_lock.read():
            generation = self._observe_schema_generation()
            decision, provenance = self._decision(
                # lazy: a rebound or cached decision never substitutes
                # the binding's AST at all
                lambda: bound.statement,
                bound.fingerprint,
                generation,
                rebind=self._rebind_request(prepared, bound),
            )
        return self._with_budget(decision, budget), provenance

    @staticmethod
    def _rebind_request(
        prepared: PreparedQuery, bound: PreparedBinding
    ) -> Optional[_RebindRequest]:
        if not bound.overrides:
            return None  # the template's own constants: exact key suffices
        return _RebindRequest(
            template_fingerprint=prepared.fingerprint,
            signature=bound.signature,
            overrides=bound.overrides,
        )

    # ------------------------------------------------------------------ #
    # maintenance (per-shard write locks; disjoint tables run in parallel)
    # ------------------------------------------------------------------ #
    def insert(
        self, table_name: str, rows, *, adjust_bounds: bool = False
    ) -> "UpdateBatch":
        return self._maintain(
            table_name,
            lambda: self._beas.insert(
                table_name, rows, adjust_bounds=adjust_bounds
            ),
        )

    def delete(self, table_name: str, rows) -> "UpdateBatch":
        return self._maintain(
            table_name, lambda: self._beas.delete(table_name, rows)
        )

    def _maintain(self, table_name: str, apply) -> "UpdateBatch":
        self._observe_schema_generation()
        self._schema_lock.acquire_read()
        try:
            # raises UnknownTableError before any shard state is touched
            self._beas.database.table(table_name)
            shard = self.shard(table_name)
            # beaslint: ok(lock-discipline) - single-shard maintenance write under the schema read lock; one shard is canonical by construction
            shard.lock.acquire_write()
            try:
                try:
                    batch = apply()
                finally:
                    # even a rejected (rolled-back) batch bumps
                    # Table.version, so dependent entries must still go
                    self._after_table_write(table_name, shard)
            finally:
                shard.lock.release_write()
        finally:
            self._schema_lock.release_read()
        # an ADJUST batch may have widened a bound (schema generation)
        self._observe_schema_generation()
        return batch

    def _after_table_write(self, table_name: str, shard: TableShard) -> None:
        try:
            version = self._beas.database.table(table_name).version
        except UnknownTableError:  # pragma: no cover - table dropped mid-batch
            version = shard.version + 1
        shard.note_maintenance(version)
        self._invalidate_dependents(table_name)

    def _invalidate_dependents(self, table_name: str) -> None:
        """Drop every cached result depending on ``table_name``, wherever
        its home shard is. Runs under the table's write lock, so no new
        dependent entry can appear concurrently (any query depending on
        the table would need its read lock)."""
        with self._dep_lock:
            dependents = self._dep_index.pop(table_name, None)
        if not dependents:
            return
        by_home: dict[str, list[Hashable]] = {}
        for key, home in dependents.items():
            by_home.setdefault(home, []).append(key)
        for home, keys in by_home.items():
            home_shard = self._shards.get(home)
            if home_shard is not None:
                home_shard.invalidate_keys(keys)

    def _register_dependents(
        self, key: Hashable, tables: frozenset[str], home: str
    ) -> None:
        with self._dep_lock:
            for table in tables:
                index = self._dep_index.setdefault(table, {})
                index[key] = home
                # prune dangling refs left by capacity evictions
                if len(index) > 4 * max(self._result_entries_budget, 1):
                    live = {
                        k: h
                        for k, h in index.items()
                        if (shard := self._shards.get(h)) is not None
                        and shard.contains(k)
                    }
                    self._dep_index[table] = live

    def register(
        self, constraint: "AccessConstraint", *, validate: bool = True
    ) -> None:
        with self._schema_lock.write():
            self._beas.register(constraint, validate=validate)
        self._observe_schema_generation()

    def register_all(
        self, constraints, *, validate: bool = True
    ) -> None:
        """Register a batch under ONE schema write section: the checker
        and planner are rebuilt once, and the caches flush once instead
        of per constraint."""
        with self._schema_lock.write():
            self._beas.register_all(constraints, validate=validate)
        self._observe_schema_generation()

    def unregister(self, constraint_name: str) -> None:
        with self._schema_lock.write():
            self._beas.unregister(constraint_name)
        self._observe_schema_generation()

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def stats(self) -> ServingStats:
        self._observe_schema_generation()
        shards = self.shards()
        # Two-phase counter read, ordered against a request's own bump
        # order so concurrent traffic can never tear the snapshot's
        # invariants. Within one request the order is: executions (admin)
        # -> result-cache hit/miss (shard) -> rebind/subsumption counters
        # (admin). Monotonic counters stay consistent when each family is
        # read in the *reverse* of that order: the post-shard counters
        # first (anything they count already has its shard event), the
        # shard sweep second, and the pre-shard counters last (anything
        # the sweep counted already has its execution). A single
        # admin-lock block in either position reports torn totals — e.g.
        # subsumed_hits > result misses with the old sweep-first order.
        with self._admin_lock:
            rebinds = self._rebinds
            rebind_fallbacks = self._rebind_fallbacks
            subsumed_hits = self._subsumed_hits
            subsumption_rejects = self._subsumption_rejects
            subsumption_invalidations = self._subsumption_invalidations
        snapshots: dict[str, ShardStats] = {}
        result = CacheStats("result")
        entries = 0
        size = 0
        declines = 0
        live_versions: dict[str, int] = {
            table.schema.name: table.version for table in self._beas.database
        }
        for name, shard in shards.items():
            snap = shard.snapshot(live_versions.get(name, shard.version))
            snapshots[name] = snap
            result.hits += snap.cache.hits
            result.misses += snap.cache.misses
            result.evictions += snap.cache.evictions
            result.invalidations += snap.cache.invalidations
            entries += snap.entries
            size += snap.bytes
            declines += snap.admission_declines
        with self._admin_lock:
            executions = self._executions
            prepared_count = len(self._prepared)
            generation = self._schema_generation
        return ServingStats(
            rebinds=rebinds,
            rebind_fallbacks=rebind_fallbacks,
            subsumed_hits=subsumed_hits,
            subsumption_rejects=subsumption_rejects,
            subsumption_invalidations=subsumption_invalidations,
            checker_runs=self._beas.checker_runs,
            parse=self._parse_cache.stats(),
            decision=self._decision_cache.stats(),
            result=result,
            result_entries=entries,
            result_bytes=size,
            prepared_queries=prepared_count,
            executions=executions,
            schema_generation=generation,
            table_versions=live_versions,
            shards=snapshots,
            schema_lock=replace(self._schema_lock.stats),
            admission_declines=declines,
            pool=self._beas.pool_stats(),
            fleet=self._beas.fleet_stats(),
            routing=self._router.stats(),
            storage=self._beas.storage_stats(),
        )

    # ------------------------------------------------------------------ #
    # result-cache persistence (mmap storage engine only)
    # ------------------------------------------------------------------ #
    def persist_result_cache(self) -> int:
        """Spill every live result-cache entry to the BEAS instance's
        persistent store; no-op returning 0 on the in-memory engine.

        Safe to persist entries that will be stale by the next start:
        reloads pass through the same freshness gate as normal hits
        (``_entry_fresh`` checks the schema generation and the exact
        table-version vector), so a stale entry can never be served.
        """
        store = self._beas.store
        if store is None:
            return 0
        triples: list[tuple[str, Hashable, Any]] = []
        for name, shard in self.shards().items():
            for key, entry in shard.entries():
                if isinstance(entry, _CachedResult):
                    triples.append((name, key, entry))
        return store.save_results(triples)

    def _prewarm_result_cache(self) -> None:
        """Reinstall result-cache entries persisted by a prior process.

        Bypasses the admit-on-second-hit doorkeeper — these keys earned
        admission in the previous run — but not the freshness gate: a
        reloaded entry whose version vector or schema generation moved
        on sits in the LRU until evicted and is never served.
        """
        store = self._beas.store
        if store is None:  # pragma: no cover - guarded by the caller
            return
        for home, key, entry in store.load_results():
            if not isinstance(entry, _CachedResult):
                continue
            shard = self._shards.get(home)
            if shard is None:
                # shard topology changed (sharded flag flipped, table
                # dropped) — the entry has no home here, skip it
                continue
            shard.install(key, entry)
            self._register_dependents(
                key, frozenset(entry.table_versions), shard.table
            )

    def reset_caches(self) -> None:
        """Drop all cached state (keeps prepared handles)."""
        self._parse_cache.invalidate_all()
        self._decision_cache.invalidate_all()
        self._summary_cache.invalidate_all()
        self._subsume_index.clear()
        for shard in self.shards().values():
            shard.flush()
        with self._dep_lock:
            self._dep_index.clear()
        with self._admin_lock:
            prepared = list(self._prepared.values())
        for handle in prepared:
            handle.clear_bindings()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _frontend(
        self, query: Union[str, ast.Statement]
    ) -> tuple[ast.Statement, str, frozenset[str], bool]:
        """Parse + fingerprint + dependency set, through the parse cache."""
        if not isinstance(query, str):
            return (
                query,
                statement_fingerprint(query),
                statement_tables(query),
                False,
            )
        cached = self._parse_cache.get(query)
        if cached is not None:
            return (*cached, True)
        statement = parse(query)
        fingerprint = statement_fingerprint(statement)
        tables = statement_tables(statement)
        self._parse_cache.put(query, (statement, fingerprint, tables))
        return statement, fingerprint, tables, False

    def _observe_schema_generation(self) -> int:
        """Notice access-schema changes made around ``register``/
        ``unregister`` (bound adjustments, direct catalog calls) and
        flush whatever they stale. Returns the current generation."""
        generation = self._beas.catalog.schema_generation
        if generation == self._schema_generation:
            return generation
        with self._admin_lock:
            if generation == self._schema_generation:
                return generation
            self._schema_generation = generation
            shards = dict(self._shards)
        # the decision cache is keyed by (fingerprint, generation) and the
        # result entries record their generation, so flushing here is a
        # memory measure, not a correctness one
        self._decision_cache.invalidate_all()
        # candidates are generation-stamped (the prober would skip them
        # anyway); clearing here keeps the index from holding references
        # to flushed entries across a bump
        self._subsume_index.clear()
        for shard in shards.values():
            shard.flush()
        with self._dep_lock:
            self._dep_index.clear()
        return generation

    def _decision(
        self,
        statement,  # an ast.Statement, or a zero-arg provider of one
        fingerprint: str,
        generation: int,
        rebind: Optional[_RebindRequest] = None,
    ) -> tuple["CoverageDecision", str]:
        """The budget-free coverage decision, through the decision cache.

        Returns ``(decision, provenance)`` with provenance ``"cached"``
        (exact per-binding hit), ``"rebound"`` (pinned plan patched for
        this binding — no BE Checker run), or ``"fresh"`` (full check).

        Exact entries are keyed by (binding fingerprint, access-schema
        generation): a decision pinned under an old schema can never be
        served after a change. Pinned rebind templates are keyed by
        (template fingerprint, arity signature, generation) — the values
        of a binding never enter that key, only its shape.
        """
        key = (fingerprint, generation)
        decision = self._decision_cache.get(key)
        if decision is not None:
            return decision, "cached"
        if rebind is not None:
            template_key = rebind.cache_key(generation)
            pinned = self._decision_cache.get(template_key)
            if isinstance(pinned, RebindTemplate):
                rebound = pinned.rebind(rebind.overrides)
                if rebound is not None:
                    # future executes of this exact binding hit directly
                    self._decision_cache.put(key, rebound)
                    with self._admin_lock:
                        self._rebinds += 1
                    return rebound, "rebound"
                with self._admin_lock:
                    self._rebind_fallbacks += 1
                # the pinned plan is being abandoned (merged-arity or
                # other guard): any subsumption candidate derived from
                # it carries stale plan provenance — stop offering them
                dropped = self._subsume_index.drop_template(
                    rebind.template_fingerprint
                )
                if dropped:
                    with self._admin_lock:
                        self._subsumption_invalidations += dropped
        if callable(statement):
            statement = statement()  # only the fresh path needs the AST
        decision = self._beas.check(statement)
        self._decision_cache.put(key, decision)
        if rebind is not None:
            template = build_rebind_template(decision, rebind.overrides)
            if template is not None:
                self._decision_cache.put(rebind.cache_key(generation), template)
        return decision, "fresh"

    @staticmethod
    def _with_budget(
        decision: "CoverageDecision", budget: Optional[int]
    ) -> "CoverageDecision":
        if budget is None or not decision.covered:
            return decision
        return replace(
            decision, within_budget=decision.access_bound <= budget
        )

    def _execute(
        self,
        statement: ast.Statement,
        fingerprint: str,
        tables: frozenset[str],
        *,
        budget: Optional[int],
        allow_partial: bool,
        approximate_over_budget: bool,
        use_result_cache: bool,
        parse_hit: bool,
        executor: Optional[str] = None,
        rebind: Optional[_RebindRequest] = None,
        result_reuse: str = "exact",
        routing: str = "static",
    ) -> BEASResult:
        if executor is not None:
            # fail on a bad per-query mode here, before any lock is taken
            # or the bounded pipeline is entered
            resolve_executor_mode(executor)
        validate_result_reuse(result_reuse)
        validate_routing(routing)
        # wall-clock anchor for the serve paths that never execute (result
        # cache, subsumption): their latency is what cost-aware admission
        # weighs re-execution against, so it must be real, not 0.0
        serve_start = time.perf_counter()
        with self._admin_lock:
            self._executions += 1
        hits = 1 if parse_hit else 0
        misses = 0 if parse_hit else 1

        lock_wait = self._schema_lock.acquire_read()
        try:
            shards = self._shards_for(tables)
            lock_wait += acquire_read_ordered(shards)
            try:
                # observed while holding the schema + shard read locks: a
                # completed register/unregister (schema write section) and
                # a completed adjust_bounds batch on any dependency table
                # (its shard write section) are both visible here, so a
                # decision or result pinned under the old schema can never
                # be consumed by this request
                generation = self._observe_schema_generation()
                return self._execute_locked(
                    statement,
                    fingerprint,
                    tables,
                    shards,
                    generation,
                    budget=budget,
                    allow_partial=allow_partial,
                    approximate_over_budget=approximate_over_budget,
                    use_result_cache=use_result_cache,
                    hits=hits,
                    misses=misses,
                    lock_wait=lock_wait,
                    executor=executor,
                    rebind=rebind,
                    result_reuse=result_reuse,
                    routing=routing,
                    serve_start=serve_start,
                )
            finally:
                release_read_ordered(shards)
        finally:
            self._schema_lock.release_read()

    def _execute_locked(
        self,
        statement: ast.Statement,
        fingerprint: str,
        tables: frozenset[str],
        shards: list[TableShard],
        generation: int,
        *,
        budget: Optional[int],
        allow_partial: bool,
        approximate_over_budget: bool,
        use_result_cache: bool,
        hits: int,
        misses: int,
        lock_wait: float,
        executor: Optional[str] = None,
        rebind: Optional[_RebindRequest] = None,
        result_reuse: str = "exact",
        routing: str = "static",
        serve_start: Optional[float] = None,
    ) -> BEASResult:
        if serve_start is None:
            serve_start = time.perf_counter()
        # the consistent table-version vector this request observes: read
        # under the shard read locks, so no dependency can move under us
        versions: dict[str, int] = {}
        database = self._beas.database
        for name in tables:
            if name in database:
                versions[name] = database.table(name).version
        for shard in shards:
            if shard.table in versions and shard.observe_version(
                versions[shard.table]
            ):
                # the table moved around the serving layer: sweep entries
                # homed here that depend on it (cross-homed dependents are
                # rejected by the per-hit freshness check below)
                moved = shard.table
                shard.invalidate_where(
                    lambda _key, entry: moved in entry.table_versions
                )

        home = self._home_shard(tables)
        result_key = (fingerprint, budget, allow_partial, approximate_over_budget)
        if use_result_cache:
            entry = home.lookup(result_key)
            if entry is not None and self._entry_fresh(
                entry, versions, generation
            ):
                serve_seconds = time.perf_counter() - serve_start
                self._router.note_lookup(serve_seconds)
                metrics = ExecutionMetrics(
                    rows_output=len(entry.rows),
                    seconds=serve_seconds,
                    served_from_cache=True,
                    cache_hits=hits + 1,
                    cache_misses=misses,
                    lock_wait_seconds=lock_wait,
                    table_versions=dict(versions),
                    decision_provenance="result-cache",
                )
                return BEASResult(
                    columns=list(entry.columns),
                    rows=list(entry.rows),
                    mode=entry.mode,
                    decision=entry.decision,
                    metrics=metrics,
                )
            if entry is not None:  # stale despite sweeps: drop defensively
                home.invalidate(result_key)
            misses += 1
            if result_reuse == "subsume":
                served = self._probe_subsumption(
                    statement,
                    fingerprint,
                    tables,
                    versions,
                    generation,
                    home,
                    result_key,
                    hits=hits,
                    misses=misses,
                    lock_wait=lock_wait,
                    serve_start=serve_start,
                )
                if served is not None:
                    return served

        decision, provenance = self._decision(
            statement, fingerprint, generation, rebind=rebind
        )
        decision_hit = provenance != "fresh"
        hits += 1 if decision_hit else 0
        misses += 0 if decision_hit else 1
        decision = self._with_budget(decision, budget)

        # learned routing: pick the execution mode for this covered
        # bounded plan from the per-template cost model. The choice is
        # made (and trained) per *template* fingerprint, so every
        # binding of one prepared query shares a model; answers are
        # mode-independent, so a wrong prediction costs latency only.
        route_choice = None
        features: Optional[tuple[float, ...]] = None
        template_fp = (
            rebind.template_fingerprint if rebind is not None else fingerprint
        )
        if (
            routing == "learned"
            and decision.covered
            and isinstance(decision.plan, BoundedPlan)
            and (budget is None or decision.within_budget)
        ):
            features = routing_features(
                decision.plan,
                # scoped to the locked dependency tables: never scans
                # (or races with) tables this request did not lock
                self._beas._host.statistics(tables=frozenset(tables)),
                rows_per_batch=self._beas._rows_per_batch,
                parallelism=self._beas.parallelism,
            )
            route_choice = self._router.route(template_fp, features)

        result = self._beas._execute_decided(
            statement,
            decision,
            budget=budget,
            allow_partial=allow_partial,
            approximate_over_budget=approximate_over_budget,
            executor=executor,
            route=route_choice.route if route_choice is not None else None,
        )
        result.metrics.cache_hits += hits
        result.metrics.cache_misses += misses
        result.metrics.lock_wait_seconds += lock_wait
        result.metrics.table_versions = dict(versions)
        result.metrics.decision_provenance = provenance
        if route_choice is not None and result.mode is ExecutionMode.BOUNDED:
            result.metrics.routed_mode = route_choice.route
            result.metrics.routing_explored = route_choice.explored
            self._router.observe(
                template_fp, route_choice.route, features, result.metrics
            )

        if (
            routing == "learned"
            and use_result_cache
            and result.mode is ExecutionMode.BOUNDED
            and not self._router.should_admit(result.metrics.seconds)
        ):
            # cost-aware admission: re-executing this answer is already
            # as cheap as a cache lookup, so keep it from displacing
            # entries whose re-execution is expensive
            use_result_cache = False

        if use_result_cache and result.mode is not ExecutionMode.APPROXIMATE:
            summary: Optional[QuerySummary] = None
            if result_reuse == "subsume" and result.mode is ExecutionMode.BOUNDED:
                # only a complete bounded answer is a sound subsumption
                # source (a PARTIAL answer's missing rows could be
                # exactly the tighter query's)
                candidate_summary = self._summary_of(statement, fingerprint)
                if candidate_summary.reusable:
                    summary = candidate_summary
            template_fp = (
                rebind.template_fingerprint if rebind is not None else None
            )
            admitted = home.admit(
                result_key,
                _CachedResult(
                    columns=list(result.columns),
                    rows=list(result.rows),
                    mode=result.mode,
                    decision=decision,
                    table_versions=dict(versions),
                    schema_generation=generation,
                    summary=summary,
                    template_fingerprint=template_fp,
                ),
            )
            if admitted:
                # registered while still holding every dependency's read
                # lock: a writer invalidating one of these tables cannot
                # run until we release, so it will see this entry
                self._register_dependents(result_key, tables, home.table)
                if summary is not None:
                    self._subsume_index.add(
                        Candidate(
                            shape_key=summary.shape_key,
                            result_key=result_key,
                            home=home.table,
                            generation=generation,
                            summary=summary,
                            template_fingerprint=template_fp,
                        )
                    )
        return result

    def _summary_of(
        self, statement: ast.Statement, fingerprint: str
    ) -> QuerySummary:
        """The statement's predicate-lattice summary, through the
        summary cache (a pure function of the statement, keyed by
        fingerprint — never flushed for freshness)."""
        summary = self._summary_cache.get(fingerprint)
        if summary is None:
            summary = summarize_statement(statement)
            self._summary_cache.put(fingerprint, summary)
        return summary

    def _probe_subsumption(
        self,
        statement: ast.Statement,
        fingerprint: str,
        tables: frozenset[str],
        versions: dict[str, int],
        generation: int,
        home: TableShard,
        result_key: tuple,
        *,
        hits: int,
        misses: int,
        lock_wait: float,
        serve_start: Optional[float] = None,
    ) -> Optional[BEASResult]:
        """Try to answer from a cached bounded superset after an exact
        result-cache miss. Returns the subsumed result, or ``None`` to
        fall through to a fresh decision + execution.

        Runs under the request's schema + dependency read locks, so the
        version-vector freshness check it applies to a candidate entry
        is made against the same consistent snapshot the fresh path
        would execute under. Candidates are only eligible when they were
        cached under the same (budget, allow_partial,
        approximate_over_budget) option triple — a subsumed answer must
        never out-run a budget refusal the fresh path would have issued.
        """
        summary = self._summary_of(statement, fingerprint)
        if not summary.reusable:
            with self._admin_lock:
                self._subsumption_rejects += 1
            return None
        candidates = self._subsume_index.candidates(summary.shape_key)
        examined = 0
        for candidate in candidates:
            if candidate.result_key == result_key:
                continue  # the exact lookup already missed on this key
            if candidate.result_key[1:] != result_key[1:]:
                continue  # different option triple: not comparable
            if candidate.generation != generation:
                self._subsume_index.discard(
                    summary.shape_key, candidate.result_key
                )
                continue
            shard = self._shards.get(candidate.home)
            entry = (
                shard.peek(candidate.result_key) if shard is not None else None
            )
            if entry is None:  # evicted/invalidated under the candidate
                self._subsume_index.discard(
                    summary.shape_key, candidate.result_key
                )
                continue
            if (
                entry.mode is not ExecutionMode.BOUNDED
                or entry.summary is None
                or not self._entry_fresh(entry, versions, generation)
            ):
                continue
            examined += 1
            plan = subsumes(entry.summary, summary)
            if plan is None:
                continue
            rows = apply_refilter(plan, entry.columns, entry.rows)
            if rows is None:
                continue
            with self._admin_lock:
                self._subsumed_hits += 1
            serve_seconds = (
                time.perf_counter() - serve_start
                if serve_start is not None
                else 0.0
            )
            # a subsumed serve is lookup + refilter: exactly the cost
            # cost-aware admission weighs re-execution against
            self._router.note_lookup(serve_seconds)
            metrics = ExecutionMetrics(
                rows_output=len(rows),
                seconds=serve_seconds,
                served_from_cache=True,
                cache_hits=hits + 1,
                cache_misses=misses,
                lock_wait_seconds=lock_wait,
                table_versions=dict(versions),
                decision_provenance="subsumed",
            )
            # The re-filtered answer is NOT re-admitted under its own
            # key, nor indexed as a candidate: it is strictly narrower
            # than its source, so the source answers every repeat and
            # every further refinement at probe cost, while a private
            # copy would double-cache the same rows and (if indexed)
            # evict broader sources from the per-shape LRU. Only the
            # source's recency is refreshed.
            self._subsume_index.touch(
                candidate.shape_key, candidate.result_key
            )
            return BEASResult(
                columns=list(entry.columns),
                rows=rows,
                mode=entry.mode,
                decision=entry.decision,
                metrics=metrics,
            )
        if examined:
            # live same-shape candidates existed but none subsumed this
            # binding's region (or post-filtering was refused)
            with self._admin_lock:
                self._subsumption_rejects += 1
        return None

    def _entry_fresh(
        self,
        entry: _CachedResult,
        versions: dict[str, int],
        generation: int,
    ) -> bool:
        """A hit is served only when the entry's recorded generations all
        equal the live ones observed under the current read locks."""
        if entry.schema_generation != generation:
            return False
        if entry.table_versions.keys() != versions.keys():
            return False
        return all(
            versions[name] == version
            for name, version in entry.table_versions.items()
        )

    def __repr__(self) -> str:
        mode = "sharded" if self._sharded else "global-lock"
        return (
            f"BEASServer({self._beas.database.name}: {mode}, "
            f"{len(self._prepared)} prepared, {self._executions} served)"
        )
