"""The prepared-query serving layer: ``BEASServer``.

Wraps one :class:`~repro.beas.system.BEAS` instance with the machinery a
high-traffic deployment needs to amortise per-query frontend cost:

* a **parse cache** (SQL text -> AST + fingerprint + table set),
* a **coverage-decision cache** keyed by (query fingerprint,
  access-schema generation) — the pinned BE Checker outcome and bounded
  plan for each distinct query/binding,
* an **LRU result cache** with entry and byte budgets, invalidated at
  per-table granularity by a monotonic data-generation counter
  (:attr:`~repro.storage.table.Table.version`) so an insert into
  ``call`` never evicts results computed over ``package`` only.

Maintenance-awareness: the access-schema generation
(:attr:`~repro.access.catalog.ASCatalog.schema_generation`, bumped by
``register``/``unregister`` and by constraint-bound adjustments) flushes
the decision *and* result caches — a schema change can flip the
execution mode, and a non-bag-exact bounded answer (set semantics) need
not equal a conventional one (bag semantics). Data updates routed
through :class:`~repro.maintenance.incremental.MaintenanceManager` (or
any path that mutates a :class:`~repro.storage.table.Table`) bump the
affected table's version; the server sweeps dependent result entries on
the next request and additionally validates every hit against the
current versions, so a stale row can never be served.

All public entry points serialise on one reentrant lock: the in-memory
engines are not internally thread-safe, and the lock makes a mixed
query/maintenance workload linearisable (see the thread-safety smoke
test).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping, Optional, Union

from repro.beas.result import BEASResult, ExecutionMode
from repro.engine.metrics import ExecutionMetrics
from repro.errors import ServingError
from repro.sql import ast
from repro.sql.fingerprint import statement_fingerprint, statement_tables
from repro.sql.parser import parse
from repro.serving.cache import CacheStats, LRUCache, approx_size
from repro.serving.prepared import PreparedQuery

if TYPE_CHECKING:  # pragma: no cover
    from repro.access.constraint import AccessConstraint
    from repro.beas.system import BEAS
    from repro.bounded.coverage import CoverageDecision
    from repro.maintenance.incremental import UpdateBatch


@dataclass
class _CachedResult:
    """One result-cache entry plus the data generations it depends on."""

    columns: list[str]
    rows: list[tuple]
    mode: ExecutionMode
    decision: "CoverageDecision"
    table_versions: dict[str, int]


def _result_size(entry: _CachedResult) -> int:
    return approx_size(entry.columns) + approx_size(entry.rows)


@dataclass
class ServingStats:
    """Aggregated serving counters (``BEASServer.stats()``)."""

    parse: CacheStats
    decision: CacheStats
    result: CacheStats
    result_entries: int = 0
    result_bytes: int = 0
    prepared_queries: int = 0
    executions: int = 0
    schema_generation: int = 0
    table_versions: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [
            "serving stats:",
            f"  {self.parse.describe()}",
            f"  {self.decision.describe()}",
            f"  {self.result.describe()}",
            f"  result cache: {self.result_entries} entries, "
            f"{self.result_bytes} bytes",
            f"  prepared queries: {self.prepared_queries}",
            f"  executions served: {self.executions}",
            f"  access-schema generation: {self.schema_generation}",
        ]
        return "\n".join(lines)


class BEASServer:
    """Prepare/execute front end over one BEAS instance (see module doc)."""

    def __init__(
        self,
        beas: "BEAS",
        *,
        parse_cache_entries: int = 512,
        decision_cache_entries: int = 1024,
        result_cache_entries: int = 512,
        result_cache_bytes: Optional[int] = 8 << 20,
    ):
        self._beas = beas
        self._lock = threading.RLock()
        self._parse_cache = LRUCache("parse", max_entries=parse_cache_entries)
        self._decision_cache = LRUCache(
            "decision", max_entries=decision_cache_entries
        )
        self._result_cache = LRUCache(
            "result",
            max_entries=result_cache_entries,
            max_bytes=result_cache_bytes,
            sizeof=_result_size,
        )
        self._prepared: dict[str, PreparedQuery] = {}
        self._executions = 0
        self._schema_generation = beas.catalog.schema_generation
        self._table_versions = {
            table.schema.name: table.version for table in beas.database
        }

    # ------------------------------------------------------------------ #
    @property
    def beas(self) -> "BEAS":
        return self._beas

    @property
    def database(self):
        return self._beas.database

    # ------------------------------------------------------------------ #
    # prepare
    # ------------------------------------------------------------------ #
    def prepare(self, sql: str, name: Optional[str] = None) -> PreparedQuery:
        """Parse/fingerprint once; returns the reusable prepared handle.

        Preparing the same text again returns the existing handle (under
        its existing name when ``name`` is not given).
        """
        with self._lock:
            statement, fingerprint, tables, _ = self._frontend(sql)
            for existing in self._prepared.values():
                if existing.fingerprint == fingerprint and (
                    name is None or existing.name == name
                ):
                    return existing
            prepared = PreparedQuery(
                self, statement, sql, name,
                fingerprint=fingerprint, tables=tables,
            )
            if prepared.name in self._prepared:
                raise ServingError(
                    f"a different query is already prepared as "
                    f"{prepared.name!r}"
                )
            self._prepared[prepared.name] = prepared
            return prepared

    def prepared(self, name: str) -> PreparedQuery:
        with self._lock:
            try:
                return self._prepared[name]
            except KeyError:
                raise ServingError(f"no prepared query named {name!r}") from None

    def prepared_names(self) -> list[str]:
        with self._lock:
            return sorted(self._prepared)

    # ------------------------------------------------------------------ #
    # execute
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Union[str, ast.Statement],
        *,
        budget: Optional[int] = None,
        allow_partial: bool = True,
        approximate_over_budget: bool = False,
        use_result_cache: bool = True,
    ) -> BEASResult:
        """One-shot execution through the serving caches (no prepare)."""
        with self._lock:
            statement, fingerprint, tables, parse_hit = self._frontend(query)
            return self._execute(
                statement,
                fingerprint,
                tables,
                budget=budget,
                allow_partial=allow_partial,
                approximate_over_budget=approximate_over_budget,
                use_result_cache=use_result_cache,
                parse_hit=parse_hit,
            )

    def execute_prepared(
        self,
        prepared: Union[str, PreparedQuery],
        params: Optional[Mapping[str, Any]] = None,
        *,
        budget: Optional[int] = None,
        allow_partial: bool = True,
        approximate_over_budget: bool = False,
        use_result_cache: bool = True,
    ) -> BEASResult:
        """Execute a prepared query (by handle or name) for one binding."""
        with self._lock:
            if isinstance(prepared, str):
                prepared = self.prepared(prepared)
            statement, fingerprint = prepared.bind(params)
            return self._execute(
                statement,
                fingerprint,
                prepared.tables,
                budget=budget,
                allow_partial=allow_partial,
                approximate_over_budget=approximate_over_budget,
                use_result_cache=use_result_cache,
                parse_hit=True,  # the template parse is amortised
            )

    def check(
        self, query: Union[str, ast.Statement], budget: Optional[int] = None
    ) -> "CoverageDecision":
        """The (cached) BE Checker outcome for a query."""
        with self._lock:
            statement, fingerprint, _, _ = self._frontend(query)
            self._sync_generations()
            decision, _ = self._decision(statement, fingerprint)
            return self._with_budget(decision, budget)

    def check_prepared(
        self,
        prepared: Union[str, PreparedQuery],
        params: Optional[Mapping[str, Any]] = None,
        *,
        budget: Optional[int] = None,
    ) -> "CoverageDecision":
        with self._lock:
            if isinstance(prepared, str):
                prepared = self.prepared(prepared)
            statement, fingerprint = prepared.bind(params)
            self._sync_generations()
            decision, _ = self._decision(statement, fingerprint)
            return self._with_budget(decision, budget)

    # ------------------------------------------------------------------ #
    # maintenance passthroughs (serialised with query execution)
    # ------------------------------------------------------------------ #
    def insert(
        self, table_name: str, rows, *, adjust_bounds: bool = False
    ) -> "UpdateBatch":
        with self._lock:
            batch = self._beas.insert(
                table_name, rows, adjust_bounds=adjust_bounds
            )
            self._sync_generations()
            return batch

    def delete(self, table_name: str, rows) -> "UpdateBatch":
        with self._lock:
            batch = self._beas.delete(table_name, rows)
            self._sync_generations()
            return batch

    def register(
        self, constraint: "AccessConstraint", *, validate: bool = True
    ) -> None:
        with self._lock:
            self._beas.register(constraint, validate=validate)
            self._sync_generations()

    def unregister(self, constraint_name: str) -> None:
        with self._lock:
            self._beas.unregister(constraint_name)
            self._sync_generations()

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def stats(self) -> ServingStats:
        with self._lock:
            return ServingStats(
                parse=replace(self._parse_cache.stats),
                decision=replace(self._decision_cache.stats),
                result=replace(self._result_cache.stats),
                result_entries=len(self._result_cache),
                result_bytes=self._result_cache.current_bytes,
                prepared_queries=len(self._prepared),
                executions=self._executions,
                schema_generation=self._schema_generation,
                table_versions=dict(self._table_versions),
            )

    def reset_caches(self) -> None:
        """Drop all cached state (keeps prepared handles)."""
        with self._lock:
            self._parse_cache.invalidate_all()
            self._decision_cache.invalidate_all()
            self._result_cache.invalidate_all()
            for prepared in self._prepared.values():
                prepared._bindings.clear()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _frontend(
        self, query: Union[str, ast.Statement]
    ) -> tuple[ast.Statement, str, frozenset[str], bool]:
        """Parse + fingerprint + dependency set, through the parse cache."""
        if not isinstance(query, str):
            return (
                query,
                statement_fingerprint(query),
                statement_tables(query),
                False,
            )
        cached = self._parse_cache.get(query)
        if cached is not None:
            return (*cached, True)
        statement = parse(query)
        fingerprint = statement_fingerprint(statement)
        tables = statement_tables(statement)
        self._parse_cache.put(query, (statement, fingerprint, tables))
        return statement, fingerprint, tables, False

    def _sync_generations(self) -> None:
        """Observe schema/data generations; drop whatever they stale."""
        catalog_generation = self._beas.catalog.schema_generation
        if catalog_generation != self._schema_generation:
            self._schema_generation = catalog_generation
            self._decision_cache.invalidate_all()
            # mode can flip (bounded set-semantics vs conventional bag
            # semantics), so results pinned under the old schema go too
            self._result_cache.invalidate_all()
        changed: set[str] = set()
        for table in self._beas.database:
            name = table.schema.name
            if self._table_versions.get(name) != table.version:
                changed.add(name)
                self._table_versions[name] = table.version
        if changed:
            self._result_cache.invalidate_where(
                lambda _key, entry: bool(changed & entry.table_versions.keys())
            )

    def _decision(
        self, statement: ast.Statement, fingerprint: str
    ) -> tuple["CoverageDecision", bool]:
        """The budget-free coverage decision, through the decision cache."""
        decision = self._decision_cache.get(fingerprint)
        if decision is not None:
            return decision, True
        decision = self._beas.check(statement)
        self._decision_cache.put(fingerprint, decision)
        return decision, False

    @staticmethod
    def _with_budget(
        decision: "CoverageDecision", budget: Optional[int]
    ) -> "CoverageDecision":
        if budget is None or not decision.covered:
            return decision
        return replace(
            decision, within_budget=decision.access_bound <= budget
        )

    def _execute(
        self,
        statement: ast.Statement,
        fingerprint: str,
        tables: frozenset[str],
        *,
        budget: Optional[int],
        allow_partial: bool,
        approximate_over_budget: bool,
        use_result_cache: bool,
        parse_hit: bool,
    ) -> BEASResult:
        self._executions += 1
        self._sync_generations()
        hits = 1 if parse_hit else 0
        misses = 0 if parse_hit else 1

        result_key = (fingerprint, budget, allow_partial, approximate_over_budget)
        if use_result_cache:
            entry = self._result_cache.get(result_key)
            if entry is not None and self._entry_fresh(entry):
                metrics = ExecutionMetrics(
                    rows_output=len(entry.rows),
                    served_from_cache=True,
                    cache_hits=hits + 1,
                    cache_misses=misses,
                )
                return BEASResult(
                    columns=list(entry.columns),
                    rows=list(entry.rows),
                    mode=entry.mode,
                    decision=entry.decision,
                    metrics=metrics,
                )
            if entry is not None:  # stale despite sync: drop defensively
                self._result_cache.invalidate(result_key)
            misses += 1

        decision, decision_hit = self._decision(statement, fingerprint)
        hits += 1 if decision_hit else 0
        misses += 0 if decision_hit else 1
        decision = self._with_budget(decision, budget)

        result = self._beas.execute_decided(
            statement,
            decision,
            budget=budget,
            allow_partial=allow_partial,
            approximate_over_budget=approximate_over_budget,
        )
        result.metrics.cache_hits += hits
        result.metrics.cache_misses += misses

        if use_result_cache and result.mode is not ExecutionMode.APPROXIMATE:
            self._result_cache.put(
                result_key,
                _CachedResult(
                    columns=list(result.columns),
                    rows=list(result.rows),
                    mode=result.mode,
                    decision=decision,
                    table_versions={
                        name: self._table_versions.get(name, 0)
                        for name in tables
                    },
                ),
            )
        return result

    def _entry_fresh(self, entry: _CachedResult) -> bool:
        """Belt-and-braces: validate a hit against the live table versions."""
        for name, version in entry.table_versions.items():
            try:
                table = self._beas.database.table(name)
            except Exception:  # table dropped: treat as stale
                return False
            if table.version != version:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"BEASServer({self._beas.database.name}: "
            f"{len(self._prepared)} prepared, {self._executions} served)"
        )
