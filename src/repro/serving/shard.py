"""Sharding primitives for the concurrent serving layer.

The serving layer partitions its state by table so that maintenance on
one relation never blocks reads of another:

* :class:`ShardLock` — an instrumented reader/writer lock (writer
  preference, lock-wait accounting) guarding one shard's table data,
  its access indices, and its slice of the result cache;
* :class:`TableShard` — one table's lock + result-cache slice + the
  admit-on-second-hit doorkeeper and per-shard counters;
* :class:`StripedCache` — a lock-striped LRU used for the parse and
  coverage-decision caches, so hot single-table traffic on different
  fingerprints does not serialise on one mutex.

Deadlock freedom: shard locks are only ever taken in **canonical table
order** (sorted by table name; see :func:`order_shards`), maintenance
takes exactly one shard write lock, and the per-shard cache mutexes are
leaves — held only for dictionary operations, never while acquiring a
shard or schema lock.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Optional, Sequence

from repro.serving.cache import CacheStats, LRUCache


# --------------------------------------------------------------------------- #
# the instrumented reader/writer lock
# --------------------------------------------------------------------------- #
@dataclass
class LockStats:
    """Contention counters for one :class:`ShardLock`."""

    name: str
    read_acquisitions: int = 0
    write_acquisitions: int = 0
    read_wait_seconds: float = 0.0
    write_wait_seconds: float = 0.0
    contended_acquisitions: int = 0  # acquisitions that had to block

    @property
    def wait_seconds(self) -> float:
        return self.read_wait_seconds + self.write_wait_seconds

    def describe(self) -> str:
        return (
            f"lock {self.name}: {self.read_acquisitions} reads / "
            f"{self.write_acquisitions} writes, "
            f"{self.contended_acquisitions} contended, "
            f"waited {self.wait_seconds * 1000:.2f} ms"
        )


class ShardLock:
    """A reader/writer lock with wait-time instrumentation.

    Multiple readers may hold the lock concurrently; writers are
    exclusive. Waiting writers block new readers (writer preference) so
    a steady read stream cannot starve maintenance. Not reentrant: a
    thread must not re-acquire a lock it already holds, which the
    serving layer guarantees by acquiring each shard at most once per
    request, in canonical order.
    """

    def __init__(self, name: str):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: Optional[int] = None
        self._waiting_writers = 0
        self.stats = LockStats(name)

    # ------------------------------------------------------------------ #
    def acquire_read(self) -> float:
        """Block until a read hold is granted; returns seconds waited."""
        waited = 0.0
        with self._cond:
            if self._writer is not None or self._waiting_writers:
                self.stats.contended_acquisitions += 1
                start = time.perf_counter()
                while self._writer is not None or self._waiting_writers:
                    self._cond.wait()
                waited = time.perf_counter() - start
                self.stats.read_wait_seconds += waited
            self._readers += 1
            self.stats.read_acquisitions += 1
        return waited

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> float:
        """Block until the exclusive hold is granted; returns seconds waited."""
        waited = 0.0
        with self._cond:
            self._waiting_writers += 1
            if self._readers or self._writer is not None:
                self.stats.contended_acquisitions += 1
                start = time.perf_counter()
                while self._readers or self._writer is not None:
                    self._cond.wait()
                waited = time.perf_counter() - start
                self.stats.write_wait_seconds += waited
            self._waiting_writers -= 1
            self._writer = threading.get_ident()
            self.stats.write_acquisitions += 1
        return waited

    def release_write(self) -> None:
        with self._cond:
            self._writer = None
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    class _ReadHold:
        def __init__(self, lock: "ShardLock"):
            self._lock = lock

        def __enter__(self):
            self._lock.acquire_read()
            return self._lock

        def __exit__(self, *exc):
            self._lock.release_read()
            return False

    class _WriteHold:
        def __init__(self, lock: "ShardLock"):
            self._lock = lock

        def __enter__(self):
            self._lock.acquire_write()
            return self._lock

        def __exit__(self, *exc):
            self._lock.release_write()
            return False

    def read(self) -> "ShardLock._ReadHold":
        return ShardLock._ReadHold(self)

    def write(self) -> "ShardLock._WriteHold":
        return ShardLock._WriteHold(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardLock({self.stats.name}, readers={self._readers})"


# --------------------------------------------------------------------------- #
# one table's shard
# --------------------------------------------------------------------------- #
@dataclass
class ShardStats:
    """A point-in-time snapshot of one shard (``ServingStats.shards``)."""

    table: str
    version: int
    entries: int
    bytes: int
    cache: CacheStats
    lock: LockStats
    maintenance_batches: int
    admission_declines: int

    def describe(self) -> str:
        return (
            f"shard {self.table}: v{self.version}, {self.entries} entries "
            f"({self.bytes} bytes), {self.cache.hits} hits / "
            f"{self.cache.misses} misses, {self.cache.evictions} evictions, "
            f"{self.cache.invalidations} invalidations, "
            f"{self.admission_declines} declined, "
            f"{self.maintenance_batches} maintenance batches; "
            f"reads {self.lock.read_acquisitions} / writes "
            f"{self.lock.write_acquisitions}, "
            f"{self.lock.contended_acquisitions} contended, "
            f"waited {self.lock.wait_seconds * 1000:.2f} ms"
        )


class TableShard:
    """One table's concurrency unit inside :class:`BEASServer`.

    Owns the reader/writer lock serialising access to the table's rows
    and access indices, plus this table's slice of the result cache. The
    slice is guarded by a leaf mutex of its own so that maintenance on a
    *different* table can surgically invalidate dependent entries homed
    here without taking this shard's full write lock.
    """

    #: doorkeeper capacity, as a multiple of the slice's entry budget
    _DOORKEEPER_FACTOR = 4

    def __init__(
        self,
        table: str,
        *,
        result_entries: int,
        result_bytes: Optional[int],
        sizeof: Optional[Callable[[Any], int]] = None,
        admit_on_second_hit: bool = True,
    ):
        self.table = table
        self.lock = ShardLock(table)
        self._mutex = threading.Lock()  # leaf: guards everything below
        self.results = LRUCache(
            f"result[{table}]",
            max_entries=result_entries,
            max_bytes=result_bytes,
            sizeof=sizeof,
        )
        self._admit_on_second_hit = admit_on_second_hit
        self._seen: OrderedDict[Hashable, bool] = OrderedDict()
        self.version: int = 0  # mirror of Table.version, for stats/sweeps
        self.maintenance_batches = 0
        self.admission_declines = 0

    # ------------------------------------------------------------------ #
    # the result-cache slice (call while holding this shard's read lock)
    # ------------------------------------------------------------------ #
    def lookup(self, key: Hashable) -> Any:
        with self._mutex:
            return self.results.get(key)

    def peek(self, key: Hashable) -> Any:
        """Speculative read: no recency promotion, no hit/miss counts.

        Used by the subsumption prober, whose candidate inspections must
        not distort the exact-lookup statistics or the LRU order.
        """
        with self._mutex:
            return self.results.peek(key)

    def admit(self, key: Hashable, entry: Any) -> bool:
        """Insert ``entry`` subject to the admission policy.

        With admit-on-second-hit, the first sighting of a key only
        registers it in the doorkeeper — a one-off query never churns
        the LRU. The second sighting (and any sighting of a key already
        admitted before) caches for real.
        """
        with self._mutex:
            if not self._admit_on_second_hit:
                return self.results.put(key, entry)  # no doorkeeper needed
            limit = self._DOORKEEPER_FACTOR * self.results.max_entries
            if key not in self._seen:
                self._seen[key] = True
                while len(self._seen) > limit:
                    self._seen.popitem(last=False)
                self.admission_declines += 1
                return False
            self._seen.move_to_end(key)
            return self.results.put(key, entry)

    def install(self, key: Hashable, entry: Any) -> bool:
        """Insert bypassing the admission doorkeeper.

        Used by the result-cache prewarm from persistent storage: a
        reloaded key already earned admission in a previous process, so
        first-sighting suppression does not apply. The key is seeded
        into the doorkeeper too, keeping a later re-admission of the
        same key a single-sighting affair.
        """
        with self._mutex:
            if self._admit_on_second_hit:
                self._seen[key] = True
                self._seen.move_to_end(key)
            return self.results.put(key, entry)

    def invalidate(self, key: Hashable) -> bool:
        with self._mutex:
            return self.results.invalidate(key)

    def invalidate_keys(self, keys: Iterable[Hashable]) -> int:
        dropped = 0
        with self._mutex:
            for key in keys:
                if self.results.invalidate(key):
                    dropped += 1
        return dropped

    def invalidate_where(
        self, predicate: Callable[[Hashable, Any], bool]
    ) -> int:
        with self._mutex:
            return self.results.invalidate_where(predicate)

    def flush(self) -> int:
        """Drop the whole slice and the doorkeeper (schema changes)."""
        with self._mutex:
            self._seen.clear()
            return self.results.invalidate_all()

    def entries(self) -> list[tuple[Hashable, Any]]:
        with self._mutex:
            return self.results.items()

    def contains(self, key: Hashable) -> bool:
        with self._mutex:
            return key in self.results

    # ------------------------------------------------------------------ #
    def note_maintenance(self, version: int) -> None:
        with self._mutex:
            self.version = version
            self.maintenance_batches += 1

    def observe_version(self, version: int) -> bool:
        """Reconcile the mirror with the live ``Table.version``.

        Returns True when the table moved out-of-band (mutated around
        the serving layer) since the last observation — the caller then
        sweeps entries depending on this table.
        """
        with self._mutex:
            if self.version == version:
                return False
            self.version = version
            return True

    def snapshot(self, live_version: int) -> ShardStats:
        from dataclasses import replace

        with self._mutex:
            return ShardStats(
                table=self.table,
                version=live_version,
                entries=len(self.results),
                bytes=self.results.current_bytes,
                cache=replace(self.results.stats),
                lock=replace(self.lock.stats),
                maintenance_batches=self.maintenance_batches,
                admission_declines=self.admission_declines,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TableShard({self.table}, entries={len(self.results)})"


def order_shards(shards: Iterable[TableShard]) -> list[TableShard]:
    """Deduplicate + sort shards into the canonical (deadlock-free)
    acquisition order: ascending table name."""
    unique: dict[str, TableShard] = {}
    for shard in shards:
        unique[shard.table] = shard
    return [unique[name] for name in sorted(unique)]


def acquire_read_ordered(shards: Sequence[TableShard]) -> float:
    """Take read holds on ``shards`` (already canonically ordered);
    returns the total seconds spent waiting."""
    waited = 0.0
    for shard in shards:
        waited += shard.lock.acquire_read()
    return waited


def release_read_ordered(shards: Sequence[TableShard]) -> None:
    for shard in reversed(shards):
        shard.lock.release_read()


# --------------------------------------------------------------------------- #
# the striped cache (parse + decision caches)
# --------------------------------------------------------------------------- #
class StripedCache:
    """An LRU cache split across N independently locked stripes.

    Keys are distributed by hash, so concurrent lookups of different
    fingerprints proceed in parallel; a stripe's mutex is only held for
    the dictionary operation itself. ``stripes=1`` degrades to a single
    mutexed LRU (the unsharded baseline).
    """

    def __init__(self, name: str, *, max_entries: int, stripes: int = 8):
        if stripes < 1:
            raise ValueError("stripes must be >= 1")
        self.name = name
        per_stripe = max(1, max_entries // stripes)
        self._stripes: list[tuple[threading.Lock, LRUCache]] = [
            (
                threading.Lock(),
                LRUCache(f"{name}[{i}]", max_entries=per_stripe),
            )
            for i in range(stripes)
        ]

    def _stripe(self, key: Hashable) -> tuple[threading.Lock, LRUCache]:
        return self._stripes[hash(key) % len(self._stripes)]

    def get(self, key: Hashable, default: Any = None) -> Any:
        mutex, cache = self._stripe(key)
        with mutex:
            return cache.get(key, default)

    def put(self, key: Hashable, value: Any) -> bool:
        mutex, cache = self._stripe(key)
        with mutex:
            return cache.put(key, value)

    def invalidate_all(self) -> int:
        count = 0
        for mutex, cache in self._stripes:
            with mutex:
                count += cache.invalidate_all()
        return count

    def __len__(self) -> int:
        return sum(len(cache) for _, cache in self._stripes)

    def stats(self) -> CacheStats:
        """Counters aggregated across stripes, under the cache's name."""
        merged = CacheStats(self.name)
        for mutex, cache in self._stripes:
            with mutex:
                merged.hits += cache.stats.hits
                merged.misses += cache.stats.misses
                merged.evictions += cache.stats.evictions
                merged.invalidations += cache.stats.invalidations
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StripedCache({self.name}, stripes={len(self._stripes)})"
