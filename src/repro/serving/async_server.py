"""``AsyncBEASServer``: the asyncio front end over the sharded server.

Many concurrent asyncio clients multiplex onto a bounded pool of worker
threads driving one sharded :class:`~repro.serving.server.BEASServer`:

* **Bounded worker pool** — queries run in a
  ``ThreadPoolExecutor`` sized to the host, so a burst of clients
  cannot oversubscribe the in-memory engines;
* **Admission control** — an ``asyncio`` semaphore bounds in-flight
  executes, shedding queueing into the event loop where awaiting is
  cheap, instead of into blocked threads;
* **Per-shard maintenance queues** — updates for one table are funneled
  through that table's FIFO queue and applied by a single drainer, so
  writers to the same table never contend on its write lock while
  writers to different tables proceed in parallel;
* **Batched admission of maintenance** — a drainer takes whatever jobs
  are pending for its table and applies them in one worker-thread hop,
  amortising executor latency while preserving per-batch atomicity
  (REJECT semantics are per submitted batch, exactly as in the
  synchronous API).
* **Engine-pool dispatch** — when the underlying BEAS was built with
  ``parallelism >= 2``, each worker thread's bounded execution ships its
  plan to a :class:`~repro.engine.pool.EnginePool` worker *process*, so
  concurrent CPU-bound clients escape the GIL instead of time-slicing
  it; the pool's counters surface through ``stats().serving.pool``.

Typical use (via :meth:`repro.beas.session.Session.serve_async`)::

    async with session.serve_async() as aserver:
        results = await asyncio.gather(
            *(aserver.execute(sql) for sql in queries)
        )
        await aserver.insert("call", rows)       # queued per table
        print((await aserver.stats()).describe())
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Any, Mapping, Optional, Union

from repro.errors import ServingError
from repro.serving.prepared import PreparedQuery
from repro.serving.server import BEASServer, ServingStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.beas.result import BEASResult
    from repro.beas.system import BEAS
    from repro.bounded.coverage import CoverageDecision
    from repro.maintenance.incremental import UpdateBatch


def _default_workers() -> int:
    return min(8, (os.cpu_count() or 2) + 2)


@dataclass
class _MaintenanceJob:
    kind: str  # "insert" | "delete"
    table: str
    rows: Any
    options: dict[str, Any]
    future: "asyncio.Future[UpdateBatch]"


@dataclass
class AsyncServingStats:
    """Front-end counters layered over ``ServingStats``."""

    serving: ServingStats
    workers: int = 0
    in_flight: int = 0
    peak_in_flight: int = 0
    queued_maintenance: dict[str, int] = field(default_factory=dict)
    drained_batches: int = 0
    drained_jobs: int = 0

    def describe(self) -> str:
        backlog = (
            ", ".join(
                f"{table}:{depth}"
                for table, depth in sorted(self.queued_maintenance.items())
                if depth
            )
            or "(empty)"
        )
        lines = [
            "async front end:",
            f"  workers: {self.workers}, in flight: {self.in_flight} "
            f"(peak {self.peak_in_flight})",
            f"  maintenance queues: {backlog}; drained "
            f"{self.drained_jobs} jobs in {self.drained_batches} passes",
            self.serving.describe(),
        ]
        return "\n".join(lines)


class AsyncBEASServer:
    """Asyncio facade over one (sharded) :class:`BEASServer`."""

    def __init__(
        self,
        server: Union[BEASServer, "BEAS"],
        *,
        max_workers: Optional[int] = None,
        admission_limit: Optional[int] = None,
    ):
        if not isinstance(server, BEASServer):
            server = server._serve()  # shared memoised backend, no shim
        self._server = server
        self._workers = max_workers or _default_workers()
        self._pool = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="beas-serve"
        )
        self._admission_limit = admission_limit or 2 * self._workers
        self._admission = asyncio.Semaphore(self._admission_limit)
        self._queues: dict[str, asyncio.Queue[_MaintenanceJob]] = {}
        self._drainers: dict[str, asyncio.Task] = {}
        self._in_flight = 0
        self._peak_in_flight = 0
        self._drained_batches = 0
        self._drained_jobs = 0
        # drain counters are bumped from worker-pool threads (one per
        # table's drainer can run concurrently)
        self._counter_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def server(self) -> BEASServer:
        return self._server

    async def __aenter__(self) -> "AsyncBEASServer":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Drain every maintenance queue, then shut the pool down."""
        self._closed = True
        drainers = list(self._drainers.values())
        for queue in self._queues.values():
            await queue.join()
        for task in drainers:
            task.cancel()
        for task in drainers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    async def _run(self, fn) -> Any:
        if self._closed:
            raise ServingError("AsyncBEASServer is closed")
        async with self._admission:
            # re-checked after the semaphore: a caller parked here while
            # aclose() shut the pool down must get the documented error,
            # not the executor's raw RuntimeError
            if self._closed:
                raise ServingError("AsyncBEASServer is closed")
            self._in_flight += 1
            self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
            try:
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(self._pool, fn)
            except RuntimeError as error:
                if self._closed:  # pool shut down between check and submit
                    raise ServingError("AsyncBEASServer is closed") from error
                raise
            finally:
                self._in_flight -= 1

    async def execute(self, query, **options) -> "BEASResult":
        """Options are forwarded to :meth:`BEASServer.execute` verbatim —
        including ``executor="columnar"`` for a per-query vectorised run
        and ``routing="learned"`` for cost-model executor routing."""
        return await self._run(partial(self._server.execute, query, **options))

    async def execute_prepared(
        self,
        prepared: Union[str, PreparedQuery],
        params: Optional[Mapping[str, Any]] = None,
        **options,
    ) -> "BEASResult":
        return await self._run(
            partial(self._server.execute_prepared, prepared, params, **options)
        )

    async def prepare(
        self, sql: str, name: Optional[str] = None
    ) -> PreparedQuery:
        return await self._run(partial(self._server.prepare, sql, name))

    async def check(self, query, budget=None) -> "CoverageDecision":
        return await self._run(partial(self._server.check, query, budget))

    async def decide_prepared(
        self,
        prepared: Union[str, PreparedQuery],
        params: Optional[Mapping[str, Any]] = None,
        *,
        budget: Optional[int] = None,
    ) -> tuple["CoverageDecision", str]:
        """The (possibly rebound) decision for one binding plus its
        cache provenance — see :meth:`BEASServer.decide_prepared`."""
        return await self._run(
            partial(
                self._server.decide_prepared, prepared, params, budget=budget
            )
        )

    # ------------------------------------------------------------------ #
    # maintenance: one FIFO queue + drainer per table
    # ------------------------------------------------------------------ #
    async def insert(
        self, table_name: str, rows, *, adjust_bounds: bool = False
    ) -> "UpdateBatch":
        return await self._enqueue(
            "insert", table_name, rows, {"adjust_bounds": adjust_bounds}
        )

    async def delete(self, table_name: str, rows) -> "UpdateBatch":
        return await self._enqueue("delete", table_name, rows, {})

    async def _enqueue(
        self, kind: str, table: str, rows, options: dict[str, Any]
    ) -> "UpdateBatch":
        if self._closed:
            raise ServingError("AsyncBEASServer is closed")
        loop = asyncio.get_running_loop()
        job = _MaintenanceJob(kind, table, rows, options, loop.create_future())
        queue = self._queues.get(table)
        if queue is None:
            queue = self._queues.setdefault(table, asyncio.Queue())
        await queue.put(job)
        if table not in self._drainers or self._drainers[table].done():
            self._drainers[table] = loop.create_task(
                self._drain(table, queue), name=f"beas-maint-{table}"
            )
        return await job.future

    async def _drain(self, table: str, queue: "asyncio.Queue") -> None:
        loop = asyncio.get_running_loop()
        while True:
            jobs = [await queue.get()]
            # batched admission: take whatever else is already pending for
            # this table and apply the lot in one worker-thread hop
            while True:
                try:
                    jobs.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                await loop.run_in_executor(
                    self._pool, partial(self._apply_jobs, jobs)
                )
            finally:
                for _ in jobs:
                    queue.task_done()

    def _apply_jobs(self, jobs: list[_MaintenanceJob]) -> None:
        """Worker-thread side: apply each job, settling its future.

        Jobs for one table run back to back under one queue, preserving
        submission order; each keeps its own atomicity (a REJECTed batch
        fails alone — later jobs still apply).
        """
        loop = jobs[0].future.get_loop()
        # counted before the futures settle, so a caller awaiting a batch
        # observes the drain that produced it
        with self._counter_lock:
            self._drained_batches += 1
            self._drained_jobs += len(jobs)
        for job in jobs:
            try:
                if job.kind == "insert":
                    batch = self._server.insert(job.table, job.rows, **job.options)
                else:
                    batch = self._server.delete(job.table, job.rows)
            except BaseException as error:  # noqa: BLE001 - relayed to caller
                loop.call_soon_threadsafe(_settle, job.future, None, error)
            else:
                loop.call_soon_threadsafe(_settle, job.future, batch, None)

    # ------------------------------------------------------------------ #
    async def stats(self) -> AsyncServingStats:
        serving = await self._run(self._server.stats)
        with self._counter_lock:
            drained_batches = self._drained_batches
            drained_jobs = self._drained_jobs
        return AsyncServingStats(
            serving=serving,
            workers=self._workers,
            in_flight=self._in_flight,
            peak_in_flight=self._peak_in_flight,
            queued_maintenance={
                table: queue.qsize() for table, queue in self._queues.items()
            },
            drained_batches=drained_batches,
            drained_jobs=drained_jobs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AsyncBEASServer(workers={self._workers}, "
            f"in_flight={self._in_flight})"
        )


def _settle(future: "asyncio.Future", result, error) -> None:
    if future.cancelled():
        return
    if error is not None:
        future.set_exception(error)
    else:
        future.set_result(result)
