"""Conventional planner: ConjunctiveQuery -> logical plan.

The planner mirrors a textbook System-R-lite pipeline [Ramakrishnan &
Gehrke]: push selections and single-occurrence filters into scans, pick a
greedy equi-join order from exact table statistics, apply residual filters
as soon as their occurrences are joined, then aggregate / project /
distinct / sort / limit on top.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.statistics import TableStatistics
from repro.errors import PlanningError
from repro.sql import ast
from repro.sql.normalize import Attribute, ConjunctiveQuery
from repro.engine.logical import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)


def _selection_predicate(cq: ConjunctiveQuery, binding: str) -> Optional[ast.Expression]:
    """Conjunction of constant selections + single-binding filters for one scan."""
    parts: list[ast.Expression] = []
    for attr, values in sorted(cq.selections.items()):
        if attr.binding != binding:
            continue
        ref = ast.ColumnRef(attr.column, table=attr.binding)
        if len(values) == 1:
            parts.append(ast.BinaryOp("=", ref, ast.Literal(values[0])))
        else:
            parts.append(
                ast.InList(ref, tuple(ast.Literal(v) for v in values), negated=False)
            )
    for predicate in cq.filters:
        bindings = {attr.binding for attr in predicate.attributes}
        if bindings == {binding}:
            parts.append(predicate.expression)
    # intra-occurrence equalities (e.g. t.a = t.b) are scan-local too
    for left, right in cq.equalities:
        if left.binding == binding and right.binding == binding:
            parts.append(
                ast.BinaryOp(
                    "=",
                    ast.ColumnRef(left.column, table=binding),
                    ast.ColumnRef(right.column, table=binding),
                )
            )
    return ast.conjoin(parts)


def _estimate_scan(
    cq: ConjunctiveQuery, binding: str, stats: TableStatistics
) -> float:
    rows = float(stats.row_count)
    for attr, values in cq.selections.items():
        if attr.binding != binding:
            continue
        distinct = max(stats.distinct(attr.column), 1)
        rows *= min(1.0, len(values) / distinct)
    for predicate in cq.filters:
        bindings = {a.binding for a in predicate.attributes}
        if bindings == {binding}:
            rows *= 0.5  # textbook default selectivity for a residual filter
    return max(rows, 0.0)


class _Component:
    """One connected component during greedy join ordering."""

    def __init__(self, node: PlanNode, bindings: set[str]):
        self.node = node
        self.bindings = bindings


def _join_pairs_between(
    cq: ConjunctiveQuery, left: set[str], right: set[str]
) -> list[tuple[Attribute, Attribute]]:
    pairs = []
    for a, b in cq.equalities:
        if a.binding in left and b.binding in right:
            pairs.append((a, b))
        elif b.binding in left and a.binding in right:
            pairs.append((b, a))
    return pairs


def _estimate_join(
    left: _Component, right: _Component, pairs: list
) -> float:
    size = left.node.estimated_rows * right.node.estimated_rows
    if pairs:
        # textbook estimate |L ⋈ R| = |L||R| / max(V(L,a), V(R,b)); with row
        # counts as the distinct-value proxy this is min(|L|, |R|) for the
        # first pair, each further pair shrinking the result again
        for _ in pairs:
            size /= max(
                left.node.estimated_rows, right.node.estimated_rows, 1.0
            )
    return max(size, 1.0)


def plan_conjunctive_query(
    cq: ConjunctiveQuery,
    statistics: dict[str, TableStatistics],
) -> PlanNode:
    """Build a logical plan for ``cq`` using ``statistics`` for ordering."""
    if not cq.occurrences:
        raise PlanningError("query has no relation occurrences")

    # ---- leaf scans with pushdown and early projection -------------------
    components: list[_Component] = []
    for binding, table_name in cq.occurrences.items():
        columns = sorted(cq.attributes_of(binding))
        scan = ScanNode(
            binding=binding,
            table_name=table_name,
            columns=columns,
            predicate=_selection_predicate(cq, binding),
        )
        stats = statistics.get(table_name, TableStatistics(table=table_name))
        scan.estimated_rows = _estimate_scan(cq, binding, stats)
        components.append(_Component(scan, {binding}))

    # residual filters that span several occurrences, applied once joined
    pending_filters = [
        predicate
        for predicate in cq.filters
        if len({a.binding for a in predicate.attributes}) > 1
    ]

    def apply_ready_filters(component: _Component) -> None:
        nonlocal pending_filters
        still_pending = []
        for predicate in pending_filters:
            bindings = {a.binding for a in predicate.attributes}
            if bindings <= component.bindings:
                component.node = FilterNode(component.node, predicate.expression)
            else:
                still_pending.append(predicate)
        pending_filters = still_pending

    # ---- greedy join ordering --------------------------------------------
    while len(components) > 1:
        best: Optional[tuple[float, int, int, list]] = None
        for i in range(len(components)):
            for j in range(i + 1, len(components)):
                pairs = _join_pairs_between(
                    cq, components[i].bindings, components[j].bindings
                )
                if not pairs:
                    continue
                cost = _estimate_join(components[i], components[j], pairs)
                if best is None or cost < best[0]:
                    best = (cost, i, j, pairs)
        if best is None:
            # no equi-edge anywhere: cross join the two smallest components
            components.sort(key=lambda c: c.node.estimated_rows)
            left, right = components[0], components[1]
            pairs = []
            cost = max(left.node.estimated_rows * right.node.estimated_rows, 1.0)
            i, j = 0, 1
        else:
            cost, i, j, pairs = best
            left, right = components[i], components[j]
        joined = JoinNode(left.node, right.node, pairs)
        joined.estimated_rows = cost
        component = _Component(joined, left.bindings | right.bindings)
        apply_ready_filters(component)
        components = [
            c for k, c in enumerate(components) if k not in (i, j)
        ] + [component]

    root = components[0]
    apply_ready_filters(root)
    if pending_filters:  # pragma: no cover - defensive
        raise PlanningError("residual filters could not be placed")
    return attach_tail(root.node, cq)


def aggregate_calls_of(cq: ConjunctiveQuery) -> list[ast.FunctionCall]:
    """All distinct aggregate calls appearing in output/HAVING/ORDER BY."""
    calls: list[ast.FunctionCall] = []
    seen: set[ast.FunctionCall] = set()
    sources: list[ast.Expression] = [i.expression for i in cq.output]
    if cq.having is not None:
        sources.append(cq.having)
    for order in cq.order_by:
        sources.append(order.expression)
    for source in sources:
        for sub in ast.walk_expression(source):
            if (
                isinstance(sub, ast.FunctionCall)
                and sub.is_aggregate
                and sub not in seen
            ):
                seen.add(sub)
                calls.append(sub)
    return calls


def attach_tail(
    node: PlanNode, cq: ConjunctiveQuery, *, force_distinct: bool = False
) -> PlanNode:
    """Append the aggregation / sort / project / distinct / limit tail.

    Shared between the conventional planner and the BE Plan Executor
    (which feeds a :class:`MaterializedNode` of fetched rows into the same
    tail). ``force_distinct`` makes the output set-semantic even when the
    query lacks DISTINCT (bounded plans that are not bag-exact).
    """
    if cq.has_aggregates or cq.group_by:
        node = AggregateNode(node, list(cq.group_by), aggregate_calls_of(cq), cq.having)

    # Sort below the projection: base attributes and aggregate columns are
    # still addressable there, and Project/Distinct preserve row order.
    # ORDER BY entries naming an output alias are first rewritten to the
    # aliased expression.
    if cq.order_by:
        by_name = {item.name: item.expression for item in cq.output}
        resolved_orders: list[ast.OrderItem] = []
        for order in cq.order_by:
            expr = order.expression
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name in by_name
            ):
                expr = by_name[expr.name]
            resolved_orders.append(ast.OrderItem(expr, order.ascending))
        node = SortNode(node, resolved_orders)

    node = ProjectNode(node, list(cq.output))

    if cq.distinct or force_distinct:
        node = DistinctNode(node)
    if cq.limit is not None or cq.offset is not None:
        node = LimitNode(node, cq.limit, cq.offset)
    return node
