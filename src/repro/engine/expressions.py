"""Compile resolved AST expressions into Python callables.

A *layout* maps column labels to positions in a row tuple. Labels are
either :class:`~repro.sql.normalize.Attribute` (base/join rows) or plain
strings (post-projection output columns). Compilation happens once per
plan; evaluation is then a closure call per row.

NULL follows SQL three-valued logic: comparisons and arithmetic involving
NULL yield ``None``; ``AND``/``OR`` use Kleene logic; filters keep a row
only when the predicate is exactly ``True``.
"""

from __future__ import annotations

import operator
import re
from typing import Any, Callable, Mapping, Optional

from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.normalize import Attribute

Row = tuple
Evaluator = Callable[[Row], Any]

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern (``%``, ``_``) to an anchored regex."""
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


def _label_of(ref: ast.ColumnRef) -> object:
    return Attribute(ref.table, ref.name) if ref.table else ref.name


def compile_expression(
    expr: ast.Expression,
    layout: Mapping[object, int],
    aggregate_values: Optional[Mapping[ast.FunctionCall, int]] = None,
) -> Evaluator:
    """Compile ``expr`` to ``row -> value`` under ``layout``.

    ``aggregate_values`` maps aggregate calls to row positions; it is used
    after an Aggregate operator has materialised per-group aggregate values
    into the row (so ``SUM(x) + 1`` works).
    """
    if aggregate_values and isinstance(expr, ast.FunctionCall) and expr.is_aggregate:
        index = aggregate_values.get(expr)
        if index is None:
            raise ExecutionError(f"aggregate {expr!r} was not computed")
        return lambda row: row[index]

    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ast.ColumnRef):
        label = _label_of(expr)
        try:
            index = layout[label]
        except KeyError:
            raise ExecutionError(f"column {label} not present in row layout") from None
        return lambda row: row[index]

    if isinstance(expr, ast.BinaryOp):
        if expr.op in ("AND", "OR"):
            left = compile_expression(expr.left, layout, aggregate_values)
            right = compile_expression(expr.right, layout, aggregate_values)
            if expr.op == "AND":

                def eval_and(row: Row) -> Any:
                    lhs = left(row)
                    if lhs is False:
                        return False
                    rhs = right(row)
                    if rhs is False:
                        return False
                    if lhs is None or rhs is None:
                        return None
                    return True

                return eval_and

            def eval_or(row: Row) -> Any:
                lhs = left(row)
                if lhs is True:
                    return True
                rhs = right(row)
                if rhs is True:
                    return True
                if lhs is None or rhs is None:
                    return None
                return False

            return eval_or

        left = compile_expression(expr.left, layout, aggregate_values)
        right = compile_expression(expr.right, layout, aggregate_values)

        if expr.op in _COMPARATORS:
            compare = _COMPARATORS[expr.op]

            def eval_compare(row: Row) -> Any:
                lhs = left(row)
                rhs = right(row)
                if lhs is None or rhs is None:
                    return None
                try:
                    return compare(lhs, rhs)
                except TypeError:
                    raise ExecutionError(
                        f"cannot compare {lhs!r} and {rhs!r} with {expr.op}"
                    ) from None

            return eval_compare

        if expr.op == "||":

            def eval_concat(row: Row) -> Any:
                lhs = left(row)
                rhs = right(row)
                if lhs is None or rhs is None:
                    return None
                return str(lhs) + str(rhs)

            return eval_concat

        arith = {
            "+": operator.add,
            "-": operator.sub,
            "*": operator.mul,
        }.get(expr.op)
        if arith is not None:

            def eval_arith(row: Row) -> Any:
                lhs = left(row)
                rhs = right(row)
                if lhs is None or rhs is None:
                    return None
                try:
                    return arith(lhs, rhs)
                except TypeError:
                    raise ExecutionError(
                        f"bad operands for {expr.op}: {lhs!r}, {rhs!r}"
                    ) from None

            return eval_arith

        if expr.op in ("/", "%"):
            is_div = expr.op == "/"

            def eval_div(row: Row) -> Any:
                lhs = left(row)
                rhs = right(row)
                if lhs is None or rhs is None:
                    return None
                if rhs == 0:
                    raise ExecutionError("division by zero")
                if is_div:
                    # SQL semantics: integer / integer truncates
                    if isinstance(lhs, int) and isinstance(rhs, int):
                        return int(lhs / rhs)
                    return lhs / rhs
                return lhs % rhs

            return eval_div

        raise ExecutionError(f"unsupported operator {expr.op!r}")

    if isinstance(expr, ast.UnaryOp):
        inner = compile_expression(expr.operand, layout, aggregate_values)
        if expr.op == "NOT":

            def eval_not(row: Row) -> Any:
                value = inner(row)
                if value is None:
                    return None
                return not value

            return eval_not

        def eval_neg(row: Row) -> Any:
            value = inner(row)
            return None if value is None else -value

        return eval_neg

    if isinstance(expr, ast.InList):
        operand = compile_expression(expr.operand, layout, aggregate_values)
        items = [compile_expression(i, layout, aggregate_values) for i in expr.items]
        constants = all(isinstance(i, ast.Literal) for i in expr.items)
        if constants:
            values = {i.value for i in expr.items if i.value is not None}  # type: ignore[union-attr]
            has_null = any(i.value is None for i in expr.items)  # type: ignore[union-attr]

            def eval_in_const(row: Row) -> Any:
                value = operand(row)
                if value is None:
                    return None
                if value in values:
                    return not expr.negated
                if has_null:
                    return None
                return expr.negated

            return eval_in_const

        def eval_in(row: Row) -> Any:
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(row)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return not expr.negated
            if saw_null:
                return None
            return expr.negated

        return eval_in

    if isinstance(expr, ast.Between):
        operand = compile_expression(expr.operand, layout, aggregate_values)
        low = compile_expression(expr.low, layout, aggregate_values)
        high = compile_expression(expr.high, layout, aggregate_values)

        def eval_between(row: Row) -> Any:
            value = operand(row)
            lo = low(row)
            hi = high(row)
            if value is None or lo is None or hi is None:
                return None
            result = lo <= value <= hi
            return (not result) if expr.negated else result

        return eval_between

    if isinstance(expr, ast.Like):
        operand = compile_expression(expr.operand, layout, aggregate_values)
        if isinstance(expr.pattern, ast.Literal) and isinstance(
            expr.pattern.value, str
        ):
            regex = like_to_regex(expr.pattern.value)

            def eval_like_const(row: Row) -> Any:
                value = operand(row)
                if value is None:
                    return None
                result = bool(regex.match(str(value)))
                return (not result) if expr.negated else result

            return eval_like_const

        pattern = compile_expression(expr.pattern, layout, aggregate_values)

        def eval_like(row: Row) -> Any:
            value = operand(row)
            pat = pattern(row)
            if value is None or pat is None:
                return None
            result = bool(like_to_regex(str(pat)).match(str(value)))
            return (not result) if expr.negated else result

        return eval_like

    if isinstance(expr, ast.IsNull):
        operand = compile_expression(expr.operand, layout, aggregate_values)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    if isinstance(expr, ast.FunctionCall):
        raise ExecutionError(
            f"aggregate {expr.name} outside an aggregation context"
        )

    if isinstance(expr, ast.Star):
        raise ExecutionError("'*' cannot be evaluated as a scalar")

    raise ExecutionError(f"cannot compile expression {expr!r}")  # pragma: no cover


def compile_predicate(
    expr: ast.Expression,
    layout: Mapping[object, int],
    aggregate_values: Optional[Mapping[ast.FunctionCall, int]] = None,
) -> Callable[[Row], bool]:
    """Like :func:`compile_expression` but collapses UNKNOWN to False."""
    evaluator = compile_expression(expr, layout, aggregate_values)
    return lambda row: evaluator(row) is True
