"""Conventional query engine (S4): the host-DBMS / comparator substrate.

This engine plays the role PostgreSQL plays in the paper's demo: it parses
and answers arbitrary queries in the supported fragment by scanning base
tables, so its cost grows with ``|D|``. Three :class:`EngineProfile`
configurations stand in for the commercial systems of the evaluation
(PostgreSQL / MySQL / MariaDB) — see DESIGN.md for the substitution
rationale.
"""

from repro.engine.executor import ConventionalEngine, QueryResult
from repro.engine.pool import EnginePool, PoolStats, resolve_parallelism
from repro.engine.profiles import EngineProfile, POSTGRESQL, MYSQL, MARIADB, PROFILES
from repro.engine.metrics import ExecutionMetrics

__all__ = [
    "ConventionalEngine",
    "QueryResult",
    "EngineProfile",
    "EnginePool",
    "ExecutionMetrics",
    "PoolStats",
    "resolve_parallelism",
    "POSTGRESQL",
    "MYSQL",
    "MARIADB",
    "PROFILES",
]
