"""Learned adaptive executor routing.

The engine has four observationally-identical execution modes for a
covered bounded plan — ``row``, ``columnar``, ``pooled-plan`` and
``pooled-batch`` — that differ only in latency. This module picks the
mode per query: one lightweight cost model per (template fingerprint,
route), trained online from observed ``ExecutionMetrics.seconds``,
routes each covered execution to the predicted-fastest mode with
epsilon-greedy exploration (maliva's one-model-per-plan shape, fitted
incrementally instead of offline).

Soundness is free: every route returns the same rows in the same order
with the same ``tuples_fetched`` (the 4-way differential suites lock
this), so a wrong prediction costs latency, never correctness.

Features come from the paper's §3 deduced bounds (the access bound is
known *before* execution), the binding's constant arity, estimated
equality selectivity from :mod:`repro.catalog.statistics`, and the
engine shape (``rows_per_batch``, ``parallelism``). Costs are wall
seconds; models are incremental ridge regressions over the feature
vector (normal equations, exact solve — the dimension is tiny).

The same feedback loop drives cost-aware result-cache admission: a
result is worth caching only when re-executing it is predicted to cost
more than serving it from the cache (an EWMA of measured cache-hit
serve latencies — real numbers, now that the serve paths time
themselves).
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro import config

if TYPE_CHECKING:  # pragma: no cover
    from repro.bounded.plan import BoundedPlan
    from repro.catalog.statistics import TableStatistics
    from repro.engine.metrics import ExecutionMetrics

#: Every executable route, in exploration order. The serial pair is
#: always available; the pooled pair needs ``parallelism >= 2``.
ROUTES = ("row", "columnar", "pooled-plan", "pooled-batch")
SERIAL_ROUTES = ("row", "columnar")
POOLED_ROUTES = ("pooled-plan", "pooled-batch")

#: Feature vector layout (kept in one place so tests can assert on it).
FEATURE_NAMES = (
    "bias",
    "log1p_access_bound",
    "log1p_tight_access_bound",
    "fetch_ops",
    "select_ops",
    "log1p_const_key_arity",
    "log1p_estimated_rows",
    "log1p_rows_per_batch",
    "log1p_parallelism",
)

_RIDGE_LAMBDA = 1e-3
_EWMA_ALPHA = 0.2


def routing_features(
    plan: "BoundedPlan",
    statistics: dict[str, "TableStatistics"],
    *,
    rows_per_batch: int,
    parallelism: int,
) -> tuple[float, ...]:
    """The router's feature vector for one covered bounded plan.

    Pure over its inputs: the deduced bounds and key arities come from
    the (possibly rebound) plan, the selectivity estimate from the
    catalog statistics observed under the current read locks.
    """
    fetch_ops = plan.fetch_ops
    select_ops = len(plan.ops) - len(fetch_ops)
    const_arity = 0
    estimated_rows = 0.0
    for op in fetch_ops:
        stats = statistics.get(op.constraint.relation)
        op_selectivity = 1.0
        keyed_on_const = False
        for part in op.key_parts:
            if part.source != "const":
                continue
            arity = len(part.values or ())
            const_arity += arity
            if stats is not None and stats.row_count:
                per_value = stats.column(part.attribute).selectivity_of_equality(
                    stats.row_count
                )
                op_selectivity *= min(1.0, per_value * max(1, arity))
                keyed_on_const = True
        if keyed_on_const and stats is not None:
            estimate = stats.row_count * op_selectivity
            if op.access_bound:
                estimate = min(estimate, float(op.access_bound))
            estimated_rows += estimate
        else:
            estimated_rows += float(op.access_bound)
    return (
        1.0,
        math.log1p(max(0, plan.access_bound)),
        math.log1p(max(0, plan.tight_access_bound)),
        float(len(fetch_ops)),
        float(select_ops),
        math.log1p(const_arity),
        math.log1p(max(0.0, estimated_rows)),
        math.log1p(max(0, rows_per_batch)),
        math.log1p(max(0, parallelism)),
    )


class _Regressor:
    """Incremental ridge regression via normal equations.

    Accumulates ``A = X'X + lambda*I`` and ``b = X'y``; solving the
    d x d system (d = 9) by Gaussian elimination per prediction is
    cheap and exact, and never needs the sample history.
    """

    __slots__ = ("dim", "count", "_a", "_b", "_theta", "_stale")

    #: Refit cadence once a model has matured: the d x d solve is the
    #: expensive step on the serving hot path, and after the first few
    #: observations each additional sample barely moves theta.
    _REFIT_EVERY = 8
    _ALWAYS_REFIT_BELOW = 16

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self.count = 0
        self._a = [
            [_RIDGE_LAMBDA if i == j else 0.0 for j in range(dim)]
            for i in range(dim)
        ]
        self._b = [0.0] * dim
        self._theta: Optional[list[float]] = None
        self._stale = 0

    def update(self, features: Sequence[float], target: float) -> None:
        for i, fi in enumerate(features):
            row = self._a[i]
            for j, fj in enumerate(features):
                row[j] += fi * fj
            self._b[i] += fi * target
        self.count += 1
        self._stale += 1
        if (
            self.count <= self._ALWAYS_REFIT_BELOW
            or self._stale >= self._REFIT_EVERY
        ):
            self._theta = None
            self._stale = 0

    def predict(self, features: Sequence[float]) -> Optional[float]:
        if self.count == 0:
            return None
        theta = self._solve()
        if theta is None:
            return None
        return sum(t * f for t, f in zip(theta, features))

    def _solve(self) -> Optional[list[float]]:
        if self._theta is not None:
            return self._theta
        n = self.dim
        a = [row[:] for row in self._a]
        b = self._b[:]
        for col in range(n):
            pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
            if abs(a[pivot][col]) < 1e-12:
                return None
            if pivot != col:
                a[col], a[pivot] = a[pivot], a[col]
                b[col], b[pivot] = b[pivot], b[col]
            inv = 1.0 / a[col][col]
            for r in range(col + 1, n):
                factor = a[r][col] * inv
                if factor == 0.0:
                    continue
                for c in range(col, n):
                    a[r][c] -= factor * a[col][c]
                b[r] -= factor * b[col]
        theta = [0.0] * n
        for r in range(n - 1, -1, -1):
            acc = b[r] - sum(a[r][c] * theta[c] for c in range(r + 1, n))
            theta[r] = acc / a[r][r]
        self._theta = theta
        return theta


@dataclass(frozen=True)
class RouteChoice:
    """One routing decision: the route and whether it explored."""

    route: str
    explored: bool


@dataclass
class RouterStats:
    """Counters for one :class:`ExecutorRouter` (a snapshot copy)."""

    decisions: int = 0  # route() calls
    explorations: int = 0  # decisions that explored (unseen or epsilon)
    observations: int = 0  # outcomes trained into a model
    fallback_skips: int = 0  # pooled outcomes ignored (pool fell back)
    templates: int = 0  # distinct template fingerprints seen
    models: int = 0  # (template, route) models with >= 1 sample
    routed: dict[str, int] = field(default_factory=dict)  # decisions per route
    admission_checks: int = 0  # cost-aware admission consultations
    admission_declines: int = 0  # results kept out of the cache
    lookup_cost_seconds: float = 0.0  # EWMA of measured cache-hit serves

    def describe(self) -> str:
        per_route = ", ".join(
            f"{route}={count}" for route, count in sorted(self.routed.items())
        )
        return (
            f"routing: decisions={self.decisions} "
            f"explorations={self.explorations} "
            f"observations={self.observations} "
            f"fallback_skips={self.fallback_skips} "
            f"templates={self.templates} models={self.models}\n"
            f"routing: per-route [{per_route or '-'}]\n"
            f"routing: admission checks={self.admission_checks} "
            f"declines={self.admission_declines} "
            f"lookup-cost={self.lookup_cost_seconds * 1e6:.1f}us"
        )


class ExecutorRouter:
    """Online per-(template, route) cost model with epsilon-greedy routing.

    Thread-safe: the serving layer calls it from many request threads.
    The RNG is seeded so fuzz suites replay exploration deterministically.
    """

    def __init__(
        self,
        *,
        parallelism: int = 1,
        epsilon: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        self.routes = ROUTES if parallelism >= 2 else SERIAL_ROUTES
        if epsilon is None:
            epsilon = config.DEFAULT_ROUTING_EPSILON
        self._epsilon = config.validate_routing_epsilon(epsilon)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._models: dict[tuple[str, str], _Regressor] = {}
        self._templates: set[str] = set()
        self._decisions = 0
        self._explorations = 0
        self._observations = 0
        self._fallback_skips = 0
        self._routed: dict[str, int] = {}
        self._admission_checks = 0
        self._admission_declines = 0
        self._lookup_ewma: Optional[float] = None

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @epsilon.setter
    def epsilon(self, value: float) -> None:
        self._epsilon = config.validate_routing_epsilon(value)

    def route(self, template: str, features: Sequence[float]) -> RouteChoice:
        """Pick the route for one covered execution of ``template``."""
        with self._lock:
            self._templates.add(template)
            self._decisions += 1
            choice = self._pick(template, features)
            self._routed[choice.route] = self._routed.get(choice.route, 0) + 1
            if choice.explored:
                self._explorations += 1
            return choice

    def _pick(self, template: str, features: Sequence[float]) -> RouteChoice:
        # every route gets tried once per template before the model votes
        for route in self.routes:
            model = self._models.get((template, route))
            if model is None or model.count == 0:
                return RouteChoice(route, explored=True)
        if self._epsilon > 0.0 and self._rng.random() < self._epsilon:
            return RouteChoice(self._rng.choice(self.routes), explored=True)
        best_route = self.routes[0]
        best_cost: Optional[float] = None
        for route in self.routes:
            predicted = self._models[(template, route)].predict(features)
            if predicted is None:
                continue
            if best_cost is None or predicted < best_cost:
                best_cost = predicted
                best_route = route
        return RouteChoice(best_route, explored=False)

    def observe(
        self,
        template: str,
        route: str,
        features: Sequence[float],
        metrics: "ExecutionMetrics",
    ) -> None:
        """Train the (template, route) model on one observed execution.

        Pooled outcomes that (even partially) fell back in-process are
        skipped: their latency describes a serial run, and training a
        pooled model on it would poison every later prediction.
        """
        with self._lock:
            if route in POOLED_ROUTES and metrics.pool_fallbacks > 0:
                self._fallback_skips += 1
                return
            key = (template, route)
            model = self._models.get(key)
            if model is None:
                model = self._models[key] = _Regressor(len(FEATURE_NAMES))
            model.update(features, metrics.seconds)
            self._observations += 1

    # ------------------------------------------------------------------ #
    # cost-aware result-cache admission
    # ------------------------------------------------------------------ #
    def note_lookup(self, seconds: float) -> None:
        """Record one measured cache-hit serve latency (EWMA)."""
        if seconds <= 0.0:
            return
        with self._lock:
            if self._lookup_ewma is None:
                self._lookup_ewma = seconds
            else:
                self._lookup_ewma += _EWMA_ALPHA * (seconds - self._lookup_ewma)

    def should_admit(self, execution_seconds: float) -> bool:
        """Admit only when re-execution is predicted dearer than lookup.

        Until a cache-hit latency has been measured there is nothing to
        compare against, so admission stays open (matching the static
        policy) rather than starving the cache of its first entries.
        """
        with self._lock:
            self._admission_checks += 1
            if self._lookup_ewma is None:
                return True
            if execution_seconds > self._lookup_ewma:
                return True
            self._admission_declines += 1
            return False

    def stats(self) -> RouterStats:
        with self._lock:
            return RouterStats(
                decisions=self._decisions,
                explorations=self._explorations,
                observations=self._observations,
                fallback_skips=self._fallback_skips,
                templates=len(self._templates),
                models=sum(1 for m in self._models.values() if m.count),
                routed=dict(self._routed),
                admission_checks=self._admission_checks,
                admission_declines=self._admission_declines,
                lookup_cost_seconds=self._lookup_ewma or 0.0,
            )
