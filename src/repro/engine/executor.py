"""The conventional engine facade: SQL text in, rows out.

``ConventionalEngine`` is the stand-in for the host DBMS (PostgreSQL in
the paper's deployment) and, parameterised by profile, for the commercial
comparators. It answers any query in the supported fragment by scanning
base tables, so its cost grows linearly with ``|D|`` — the behaviour
Fig. 4 contrasts with BEAS's flat line.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Union

from repro.catalog.statistics import TableStatistics
from repro.sql import ast
from repro.sql.normalize import normalize
from repro.sql.parser import parse
from repro.storage.database import Database
from repro.engine.logical import PlanNode, SetOpNode, explain
from repro.engine.metrics import ExecutionMetrics
from repro.engine.physical import PhysicalExecutor
from repro.engine.planner import plan_conjunctive_query
from repro.engine.profiles import POSTGRESQL, EngineProfile


@dataclass
class QueryResult:
    """Result of one query: named columns, row tuples, and metrics."""

    columns: list[str]
    rows: list[tuple]
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)

    def to_set(self) -> set[tuple]:
        return set(self.rows)

    def sorted_rows(self) -> list[tuple]:
        return sorted(self.rows, key=lambda r: tuple((v is None, str(type(v)), v) for v in r))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class ConventionalEngine:
    """Scan-based SQL engine over an in-memory :class:`Database`."""

    def __init__(self, database: Database, profile: EngineProfile = POSTGRESQL):
        self.database = database
        self.profile = profile
        self._stats_cache: dict[str, tuple[int, TableStatistics]] = {}

    # ------------------------------------------------------------------ #
    def statistics(
        self, tables: "set[str] | frozenset[str] | None" = None
    ) -> dict[str, TableStatistics]:
        """Per-table statistics, cached until the table is mutated.

        Keyed on :attr:`Table.version` (a monotonic mutation counter), not
        the row count: an insert+delete sequence that leaves the
        cardinality unchanged still invalidates, so engines created at any
        point — including after updates routed around the BEAS facade —
        always see fresh statistics.

        With ``tables``, only those relations are profiled. The sharded
        serving layer relies on this: a query holds read locks only on
        its own dependency tables, so planning it must not scan the rows
        of unrelated tables that may be mid-mutation.
        """
        stats: dict[str, TableStatistics] = {}
        for table in self.database:
            name = table.schema.name
            if tables is not None and name not in tables:
                continue
            cached = self._stats_cache.get(name)
            if cached is not None and cached[0] == table.version:
                stats[name] = cached[1]
            else:
                computed = table.statistics()
                self._stats_cache[name] = (table.version, computed)
                stats[name] = computed
        return stats

    def invalidate_statistics(self) -> None:
        self._stats_cache.clear()

    # ------------------------------------------------------------------ #
    def plan(self, query: Union[str, ast.Statement]) -> PlanNode:
        """Build a logical plan without executing it."""
        statement = parse(query) if isinstance(query, str) else query
        return self._plan_statement(statement)

    def _plan_statement(self, statement: ast.Statement) -> PlanNode:
        if isinstance(statement, ast.SetOperation):
            left = self._plan_statement(statement.left)
            right = self._plan_statement(statement.right)
            return SetOpNode(statement.op, left, right, statement.all)
        cq = normalize(statement, self.database.schema)
        # the planner only consults statistics for the query's own tables
        return plan_conjunctive_query(
            cq, self.statistics(set(cq.occurrences.values()))
        )

    def explain(self, query: Union[str, ast.Statement]) -> str:
        return explain(self.plan(query))

    # ------------------------------------------------------------------ #
    def execute(self, query: Union[str, ast.Statement]) -> QueryResult:
        """Parse, plan, and execute ``query``; returns rows + metrics."""
        statement = parse(query) if isinstance(query, str) else query
        metrics = ExecutionMetrics()
        start = time.perf_counter()
        plan = self._plan_statement(statement)
        executor = PhysicalExecutor(self.database, self.profile, metrics)
        result = executor.run(plan)
        metrics.seconds = time.perf_counter() - start
        metrics.rows_output = len(result.rows)
        columns = [
            label if isinstance(label, str) else str(label)
            for label in result.labels
        ]
        return QueryResult(columns=columns, rows=result.rows, metrics=metrics)

    def execute_plan(self, plan: PlanNode) -> QueryResult:
        """Execute an already-built logical plan (used by the BE optimizer)."""
        metrics = ExecutionMetrics()
        start = time.perf_counter()
        executor = PhysicalExecutor(self.database, self.profile, metrics)
        result = executor.run(plan)
        metrics.seconds = time.perf_counter() - start
        metrics.rows_output = len(result.rows)
        columns = [
            label if isinstance(label, str) else str(label)
            for label in result.labels
        ]
        return QueryResult(columns=columns, rows=result.rows, metrics=metrics)
