"""Logical plan nodes for the conventional engine.

Plans are trees of dataclass nodes; the planner (``repro.engine.planner``)
builds them from a :class:`~repro.sql.normalize.ConjunctiveQuery`, the
executor (``repro.engine.physical``) interprets them. Row *labels* are
:class:`~repro.sql.normalize.Attribute` until projection, strings after.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sql import ast
from repro.sql.normalize import Attribute, OutputItem


@dataclass
class LogicalNode:
    """Base class; ``estimated_rows`` guides join ordering."""

    estimated_rows: float = field(default=0.0, init=False)


@dataclass
class ScanNode(LogicalNode):
    """Scan one base-table occurrence, filter, and project needed columns."""

    binding: str
    table_name: str
    columns: list[str]  # column names to emit (early projection)
    predicate: Optional[ast.Expression] = None  # pushed-down conjunction

    def __post_init__(self) -> None:
        self.estimated_rows = 0.0


@dataclass
class FilterNode(LogicalNode):
    child: "PlanNode"
    predicate: ast.Expression

    def __post_init__(self) -> None:
        self.estimated_rows = self.child.estimated_rows


@dataclass
class JoinNode(LogicalNode):
    """Equi-join on ``pairs``; an empty list means a cross product."""

    left: "PlanNode"
    right: "PlanNode"
    pairs: list[tuple[Attribute, Attribute]]  # (left attr, right attr)

    def __post_init__(self) -> None:
        self.estimated_rows = 0.0


@dataclass
class AggregateNode(LogicalNode):
    """Group ``child`` by ``group_by`` and compute ``calls`` per group.

    Output layout: group attributes first, then one column per aggregate
    call (labelled by the call node itself).
    """

    child: "PlanNode"
    group_by: list[Attribute]
    calls: list[ast.FunctionCall]
    having: Optional[ast.Expression] = None

    def __post_init__(self) -> None:
        self.estimated_rows = self.child.estimated_rows


@dataclass
class ProjectNode(LogicalNode):
    """Evaluate output expressions; relabels columns to output names."""

    child: "PlanNode"
    items: list[OutputItem]

    def __post_init__(self) -> None:
        self.estimated_rows = self.child.estimated_rows


@dataclass
class DistinctNode(LogicalNode):
    child: "PlanNode"

    def __post_init__(self) -> None:
        self.estimated_rows = self.child.estimated_rows


@dataclass
class SortNode(LogicalNode):
    child: "PlanNode"
    order_by: list[ast.OrderItem]

    def __post_init__(self) -> None:
        self.estimated_rows = self.child.estimated_rows


@dataclass
class LimitNode(LogicalNode):
    child: "PlanNode"
    limit: Optional[int]
    offset: Optional[int]

    def __post_init__(self) -> None:
        self.estimated_rows = self.child.estimated_rows


@dataclass
class MaterializedNode(LogicalNode):
    """An already-computed intermediate injected into a plan.

    The BE Plan Executor and Optimizer use this to hand bounded
    (fetch-produced) results to the conventional physical operators.
    """

    labels: list[object]
    rows: list[tuple]

    def __post_init__(self) -> None:
        self.estimated_rows = float(len(self.rows))


@dataclass
class SetOpNode(LogicalNode):
    """UNION / INTERSECT / EXCEPT over two complete plans."""

    op: str
    left: "PlanNode"
    right: "PlanNode"
    all: bool = False

    def __post_init__(self) -> None:
        self.estimated_rows = self.left.estimated_rows + self.right.estimated_rows


PlanNode = LogicalNode


def explain(node: PlanNode, indent: int = 0) -> str:
    """Readable plan tree (used by tests, examples, and the demo analyzer)."""
    pad = "  " * indent
    if isinstance(node, ScanNode):
        from repro.sql.printer import expression_to_sql

        pred = (
            f" filter [{expression_to_sql(node.predicate)}]" if node.predicate else ""
        )
        return f"{pad}Scan {node.table_name} AS {node.binding}{pred}"
    if isinstance(node, FilterNode):
        from repro.sql.printer import expression_to_sql

        return (
            f"{pad}Filter [{expression_to_sql(node.predicate)}]\n"
            + explain(node.child, indent + 1)
        )
    if isinstance(node, JoinNode):
        condition = (
            ", ".join(f"{l} = {r}" for l, r in node.pairs) if node.pairs else "cross"
        )
        return (
            f"{pad}Join [{condition}]\n"
            + explain(node.left, indent + 1)
            + "\n"
            + explain(node.right, indent + 1)
        )
    if isinstance(node, AggregateNode):
        keys = ", ".join(str(a) for a in node.group_by) or "()"
        calls = ", ".join(c.name for c in node.calls)
        return f"{pad}Aggregate group by {keys} [{calls}]\n" + explain(
            node.child, indent + 1
        )
    if isinstance(node, ProjectNode):
        names = ", ".join(item.name for item in node.items)
        return f"{pad}Project [{names}]\n" + explain(node.child, indent + 1)
    if isinstance(node, DistinctNode):
        return f"{pad}Distinct\n" + explain(node.child, indent + 1)
    if isinstance(node, SortNode):
        return f"{pad}Sort\n" + explain(node.child, indent + 1)
    if isinstance(node, LimitNode):
        return f"{pad}Limit {node.limit}\n" + explain(node.child, indent + 1)
    if isinstance(node, SetOpNode):
        return (
            f"{pad}{node.op}{' ALL' if node.all else ''}\n"
            + explain(node.left, indent + 1)
            + "\n"
            + explain(node.right, indent + 1)
        )
    if isinstance(node, MaterializedNode):
        return f"{pad}Materialized [{len(node.rows)} rows]"
    return f"{pad}{node!r}"  # pragma: no cover
