"""Engine profiles standing in for the commercial DBMSs of the evaluation.

The paper compares BEAS against PostgreSQL, MySQL and MariaDB. Those
systems are closed substitutes here (see DESIGN.md §1): each profile runs
the *same* correct engine but with different physical choices, all of them
honest work (really executed, affecting wall-clock), never fudged timings:

* ``join_algorithm`` — PostgreSQL-profile uses hash joins; the MySQL/
  MariaDB profiles use sort-merge (MySQL only gained hash joins in 8.0.18;
  the paper predates that).
* ``row_overhead`` — extra per-row materialisation work in scans, modelling
  heavier tuple headers / row formats. This is what separates MariaDB from
  MySQL, matching the paper's consistent ordering PG < MariaDB < MySQL.

The profiles preserve the evaluation's *shape*: all three are linear in
``|D|`` with distinct constants, while BEAS is flat.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EngineProfile:
    """Physical configuration of the conventional engine."""

    name: str
    join_algorithm: str = "hash"  # 'hash' | 'sort_merge' | 'block_nested'
    row_overhead: int = 0  # synthetic per-scanned-row work units
    block_size: int = 1024  # for block-nested-loop joins
    # 'row' interprets every operator tuple-at-a-time; 'columnar' runs the
    # tail operators (aggregate/sort/project/distinct/limit) over
    # per-attribute column batches (engine.columnar). Scans and joins stay
    # row-oriented in either mode.
    executor: str = "row"  # 'row' | 'columnar'
    rows_per_batch: int = 0  # columnar batch size; 0 = engine default
    # Bounded-pipeline worker processes (engine.pool). 0/1 = in-process;
    # >= 2 enables the multiprocessing engine pool for BEAS instances
    # built on this profile. The conventional scan engine itself stays
    # in-process in every configuration.
    parallelism: int = 0
    # Engine-pool fan-out unit ('auto' | 'plan' | 'batch'); participates
    # in the Session option-precedence chain (call > Query > Session >
    # profile > environment) like the other engine knobs.
    parallel_dispatch: str = "auto"

    def __post_init__(self) -> None:
        if self.join_algorithm not in ("hash", "sort_merge", "block_nested"):
            raise ValueError(f"unknown join algorithm {self.join_algorithm!r}")
        if self.row_overhead < 0:
            raise ValueError("row_overhead must be >= 0")
        if self.executor not in ("row", "columnar"):
            raise ValueError(f"unknown executor mode {self.executor!r}")
        if self.rows_per_batch < 0:
            raise ValueError("rows_per_batch must be >= 0")
        if not isinstance(self.parallelism, int) or isinstance(
            self.parallelism, bool
        ):
            raise ValueError("parallelism must be an int")
        if self.parallelism < 0:
            raise ValueError("parallelism must be >= 0")
        if self.parallel_dispatch not in ("auto", "plan", "batch"):
            raise ValueError(
                f"unknown parallel_dispatch {self.parallel_dispatch!r}"
            )


# Overheads are calibrated so the profiles reproduce the paper's consistent
# cost ordering (PostgreSQL < MariaDB < MySQL, roughly 1 : 2.7 : 3.2 at
# 200 GB in Fig. 4) while every profile stays linear in |D|.
POSTGRESQL = EngineProfile(name="postgresql", join_algorithm="hash", row_overhead=0)
MARIADB = EngineProfile(name="mariadb", join_algorithm="sort_merge", row_overhead=3)
MYSQL = EngineProfile(name="mysql", join_algorithm="sort_merge", row_overhead=5)

PROFILES: dict[str, EngineProfile] = {
    profile.name: profile for profile in (POSTGRESQL, MARIADB, MYSQL)
}
