"""Execution metrics shared by both engines.

The paper's Fig. 3 reports, per query: total time, number of tuples
fetched/scanned, and a per-operation cost breakdown. Both the conventional
executor and the BE plan executor populate this structure so the analyzer
can compare them operation by operation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class OperationCost:
    """Cost record for one physical operation in a plan."""

    label: str  # human-readable, e.g. "scan(call)" or "fetch(psi1)"
    tuples_in: int = 0
    tuples_out: int = 0
    seconds: float = 0.0


@dataclass
class ExecutionMetrics:
    """Aggregated counters for one query execution."""

    tuples_scanned: int = 0  # base-table tuples read (full rows)
    tuples_fetched: int = 0  # partial tuples fetched via access indices
    intermediate_rows: int = 0  # rows produced by joins/filters
    rows_output: int = 0
    seconds: float = 0.0
    operations: list[OperationCost] = field(default_factory=list)
    # --- serving-layer counters (repro.serving): per-request cache events ---
    cache_hits: int = 0  # serving-cache hits while answering this request
    cache_misses: int = 0  # serving-cache misses while answering this request
    served_from_cache: bool = False  # rows came from the result cache
    # how the coverage decision driving this request was obtained:
    # "fresh" (full BE Checker run), "cached" (exact decision-cache hit),
    # "rebound" (constraint-preserving plan rebind, no checker run),
    # "result-cache" (rows served straight from the result cache), or ""
    # when the request bypassed the serving layer
    decision_provenance: str = ""
    # --- columnar-executor counters (engine.columnar) ---
    rows_per_batch: int = 0  # configured batch size (0 = row executor)
    batches: int = 0  # column batches processed (fetch inputs + tail)
    # --- engine-pool counters (engine.pool): parallel bounded execution ---
    pool_workers: int = 0  # worker processes available to this execution
    pool_batches: int = 0  # column batches / whole plans run on workers
    pool_wait_seconds: float = 0.0  # time blocked acquiring pool workers
    # pooled dispatches that fell back in-process (exhaustion, worker
    # death, unsupported shape); a pooled execution with fallbacks is a
    # (partially) serial run and must not train pooled cost models
    pool_fallbacks: int = 0
    # --- distributed-serving counters (repro.distributed) ---
    replica_id: int = -1  # serving replica that answered (-1 = not a fleet run)
    wire_seconds: float = 0.0  # socket round-trip time for the fleet dispatch
    # --- adaptive-routing counters (engine.router) ---
    routed_mode: str = ""  # route the learned router picked ("" = static)
    routing_explored: bool = False  # route was an exploration, not the argmin
    # --- sharded-serving counters: per-request concurrency events ---
    lock_wait_seconds: float = 0.0  # time blocked on schema + shard locks
    # the consistent per-table data-version vector this answer was computed
    # under (read while holding every dependency shard's read lock); lets
    # callers — and the concurrent differential fuzz — pin the exact
    # snapshot an answer reflects
    table_versions: dict[str, int] = field(default_factory=dict)

    @property
    def tuples_accessed(self) -> int:
        """Total base-data tuples touched (scan + fetch)."""
        return self.tuples_scanned + self.tuples_fetched

    def record(self, label: str, tuples_in: int, tuples_out: int, seconds: float) -> OperationCost:
        op = OperationCost(label, tuples_in, tuples_out, seconds)
        self.operations.append(op)
        return op


class Stopwatch:
    """Tiny monotonic stopwatch used by the executors."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def lap(self) -> float:
        now = time.perf_counter()
        elapsed = now - self._start
        self._start = now
        return elapsed
