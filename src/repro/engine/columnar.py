"""Columnar (vectorised) execution support.

Following the MonetDB/X100 batch-processing lineage, the columnar mode
replaces row-tuple intermediates with one Python list per attribute plus
a *selection vector* of live row positions. Operators then move work out
of per-row tuple construction and into per-column passes:

* selections only shrink the selection vector — no data is copied;
* fetches gather index postings for a whole key batch and materialise
  the output column by column (no per-row tuple concatenation);
* the tail operators (aggregate, sort, project, distinct, limit) consume
  the final intermediate in batches of ``rows_per_batch`` rows with
  cross-batch accumulators (see ``engine.physical.ColumnarTailExecutor``).

Semantics are identical to the row executor by construction: predicate
and expression fallbacks compile through the *same*
``engine.expressions`` scalar compiler (three-valued logic, error
behaviour, float accumulation order), and the fast paths below are
restricted to shapes whose column-wise evaluation is trivially
equivalent. The row-vs-columnar differential suite
(``tests/test_columnar_differential.py``) locks this in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro import config
from repro.config import DEFAULT_ROWS_PER_BATCH, EXECUTOR_MODES
from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.normalize import Attribute
from repro.engine.expressions import (
    _COMPARATORS,
    compile_expression,
    compile_predicate,
)

def resolve_executor_mode(executor: Optional[str]) -> str:
    """Resolve an executor mode: explicit argument, else the
    ``BEAS_EXECUTOR`` environment variable (the CI columnar matrix leg),
    else row mode. Unknown modes raise
    :class:`~repro.errors.BEASError` at construction time (like the
    other engine options) instead of failing deep in the executor."""
    mode = executor if executor is not None else config.env_executor()
    return config.validate_executor(mode or "row")


def resolve_rows_per_batch(rows_per_batch: Optional[int]) -> int:
    """Resolve the batch size: explicit argument, else the
    ``BEAS_ROWS_PER_BATCH`` environment variable, else the default.

    Rejects non-integer or non-positive sizes with
    :class:`~repro.errors.BEASError` at construction time, before any
    query runs into them.
    """
    if rows_per_batch is None:
        env = config.env_rows_per_batch()
        return DEFAULT_ROWS_PER_BATCH if env is None else env
    return config.validate_rows_per_batch(rows_per_batch)


# --------------------------------------------------------------------------- #
# the columnar intermediate
# --------------------------------------------------------------------------- #
@dataclass
class ColumnarIntermediate:
    """A materialised intermediate in columnar layout.

    ``columns[k][i]`` is the value of attribute ``labels[k]`` in physical
    row ``i``; ``count`` is the physical row count (needed because a
    zero-width intermediate — the bounded pipeline's seed row — still has
    a length); ``sel`` lists the *live* physical positions in row order,
    or ``None`` when every position is live.
    """

    labels: list[object]
    columns: list[list]
    count: int
    sel: Optional[list[int]] = None
    _layout: Optional[dict[object, int]] = field(default=None, repr=False)

    @property
    def layout(self) -> dict[object, int]:
        if self._layout is None:
            self._layout = {label: i for i, label in enumerate(self.labels)}
        return self._layout

    @property
    def live(self) -> Sequence[int]:
        """The live physical positions, in row order."""
        return range(self.count) if self.sel is None else self.sel

    @property
    def live_count(self) -> int:
        return self.count if self.sel is None else len(self.sel)

    # ------------------------------------------------------------------ #
    @classmethod
    def seed(cls) -> "ColumnarIntermediate":
        """The bounded pipeline's seed: one zero-width row."""
        return cls(labels=[], columns=[], count=1)

    @classmethod
    def from_rows(
        cls, labels: list[object], rows: Sequence[tuple]
    ) -> "ColumnarIntermediate":
        if labels:
            columns = [list(column) for column in zip(*rows)]
            if not columns:  # no rows at all
                columns = [[] for _ in labels]
        else:
            columns = []
        return cls(labels=list(labels), columns=columns, count=len(rows))

    def to_rows(self) -> list[tuple]:
        """Materialise the live rows as tuples (row-executor currency)."""
        if not self.columns:
            return [()] * self.live_count
        if self.sel is None:
            return list(zip(*self.columns))
        columns = self.columns
        return [tuple(column[i] for column in columns) for i in self.sel]

    def iter_batches(self, rows_per_batch: int) -> Iterator[list[int]]:
        """Yield the live positions in chunks of ``rows_per_batch``."""
        live = self.live
        for start in range(0, len(live), rows_per_batch):
            yield list(live[start : start + rows_per_batch])


def gather(column: list, indices: Iterable[int]) -> list:
    return [column[i] for i in indices]


# --------------------------------------------------------------------------- #
# columnar expression evaluation
# --------------------------------------------------------------------------- #
def columnar_values(
    expr: ast.Expression,
    layout: Mapping[object, int],
    columns: list[list],
    indices: Sequence[int],
    aggregate_values: Optional[Mapping[ast.FunctionCall, int]] = None,
) -> list:
    """Evaluate ``expr`` for each live index, returning one value list.

    Plain column references and literals are gathered directly; every
    other shape falls back to the scalar compiler over materialised row
    tuples, so semantics (3VL, error behaviour) match the row executor
    exactly.
    """
    if (
        aggregate_values
        and isinstance(expr, ast.FunctionCall)
        and expr.is_aggregate
    ):
        position = aggregate_values.get(expr)
        if position is None:
            raise ExecutionError(f"aggregate {expr!r} was not computed")
        return gather(columns[position], indices)
    if isinstance(expr, ast.Literal):
        return [expr.value] * len(indices)
    if isinstance(expr, ast.ColumnRef):
        label = Attribute(expr.table, expr.name) if expr.table else expr.name
        try:
            position = layout[label]
        except KeyError:
            raise ExecutionError(
                f"column {label} not present in row layout"
            ) from None
        return gather(columns[position], indices)
    evaluator = compile_expression(expr, layout, aggregate_values)
    return [
        evaluator(tuple(column[i] for column in columns)) for i in indices
    ]


# --------------------------------------------------------------------------- #
# columnar predicate compilation (filters over the selection vector)
# --------------------------------------------------------------------------- #
ColumnarFilter = Callable[[list, Sequence[int]], list]
"""``(columns, indices) -> surviving indices`` for one conjunct."""


def _column_position(
    expr: ast.Expression, layout: Mapping[object, int]
) -> Optional[int]:
    if not isinstance(expr, ast.ColumnRef):
        return None
    label = Attribute(expr.table, expr.name) if expr.table else expr.name
    return layout.get(label)


def _compile_conjunct(
    expr: ast.Expression, layout: Mapping[object, int]
) -> Optional[ColumnarFilter]:
    """A vectorised filter for one conjunct, or None when unsupported.

    Only shapes whose column-wise evaluation is trivially equivalent to
    the scalar compiler are handled; SQL's three-valued logic is
    preserved because a filter keeps a row only when the predicate is
    exactly TRUE — any NULL operand yields UNKNOWN and drops the row.
    """
    if isinstance(expr, ast.BinaryOp) and expr.op in _COMPARATORS:
        compare = _COMPARATORS[expr.op]
        left_pos = _column_position(expr.left, layout)
        right_pos = _column_position(expr.right, layout)
        if left_pos is not None and isinstance(expr.right, ast.Literal):
            constant = expr.right.value
            if constant is None:  # always UNKNOWN
                return lambda columns, indices: []

            def filter_col_const(columns: list, indices: Sequence[int]) -> list:
                column = columns[left_pos]
                try:
                    return [
                        i
                        for i in indices
                        if column[i] is not None and compare(column[i], constant)
                    ]
                except TypeError:
                    raise ExecutionError(
                        f"cannot compare with {expr.op}: incompatible types"
                    ) from None

            return filter_col_const
        if right_pos is not None and isinstance(expr.left, ast.Literal):
            constant = expr.left.value
            if constant is None:
                return lambda columns, indices: []

            def filter_const_col(columns: list, indices: Sequence[int]) -> list:
                column = columns[right_pos]
                try:
                    return [
                        i
                        for i in indices
                        if column[i] is not None and compare(constant, column[i])
                    ]
                except TypeError:
                    raise ExecutionError(
                        f"cannot compare with {expr.op}: incompatible types"
                    ) from None

            return filter_const_col
        if left_pos is not None and right_pos is not None:

            def filter_col_col(columns: list, indices: Sequence[int]) -> list:
                a = columns[left_pos]
                b = columns[right_pos]
                try:
                    return [
                        i
                        for i in indices
                        if a[i] is not None
                        and b[i] is not None
                        and compare(a[i], b[i])
                    ]
                except TypeError:
                    raise ExecutionError(
                        f"cannot compare with {expr.op}: incompatible types"
                    ) from None

            return filter_col_col
        return None

    if isinstance(expr, ast.InList):
        position = _column_position(expr.operand, layout)
        if position is None or not all(
            isinstance(item, ast.Literal) for item in expr.items
        ):
            return None
        values = {item.value for item in expr.items if item.value is not None}
        has_null = any(item.value is None for item in expr.items)
        if not expr.negated:

            def filter_in(columns: list, indices: Sequence[int]) -> list:
                column = columns[position]
                return [
                    i
                    for i in indices
                    if column[i] is not None and column[i] in values
                ]

            return filter_in

        def filter_not_in(columns: list, indices: Sequence[int]) -> list:
            # NOT IN with a NULL member is never TRUE (three-valued logic)
            if has_null:
                return []
            column = columns[position]
            return [
                i
                for i in indices
                if column[i] is not None and column[i] not in values
            ]

        return filter_not_in

    if isinstance(expr, ast.Between):
        position = _column_position(expr.operand, layout)
        if (
            position is None
            or not isinstance(expr.low, ast.Literal)
            or not isinstance(expr.high, ast.Literal)
        ):
            return None
        low, high = expr.low.value, expr.high.value
        if low is None or high is None:
            return lambda columns, indices: []
        negated = expr.negated

        def filter_between(columns: list, indices: Sequence[int]) -> list:
            column = columns[position]
            if negated:
                return [
                    i
                    for i in indices
                    if column[i] is not None and not (low <= column[i] <= high)
                ]
            return [
                i
                for i in indices
                if column[i] is not None and low <= column[i] <= high
            ]

        return filter_between

    if isinstance(expr, ast.IsNull):
        position = _column_position(expr.operand, layout)
        if position is None:
            return None
        if expr.negated:

            def filter_not_null(columns: list, indices: Sequence[int]) -> list:
                column = columns[position]
                return [i for i in indices if column[i] is not None]

            return filter_not_null

        def filter_null(columns: list, indices: Sequence[int]) -> list:
            column = columns[position]
            return [i for i in indices if column[i] is None]

        return filter_null

    return None


def compile_columnar_predicate(
    expr: ast.Expression, layout: Mapping[object, int]
) -> ColumnarFilter:
    """Compile a residual predicate to a selection-vector filter.

    The top-level AND chain is split into conjuncts applied sequentially
    (each narrows the selection vector, so later conjuncts touch fewer
    rows). Conjuncts outside the vectorised fragment fall back to the
    scalar compiler over materialised row tuples — same semantics, row
    cost only for those rows still live when the conjunct runs.
    """
    conjuncts: list[ast.Expression] = []

    def flatten(node: ast.Expression) -> None:
        if isinstance(node, ast.BinaryOp) and node.op == "AND":
            flatten(node.left)
            flatten(node.right)
        else:
            conjuncts.append(node)

    flatten(expr)

    filters: list[ColumnarFilter] = []
    for conjunct in conjuncts:
        vectorised = _compile_conjunct(conjunct, layout)
        if vectorised is not None:
            filters.append(vectorised)
            continue
        predicate = compile_predicate(conjunct, layout)

        def fallback(
            columns: list,
            indices: Sequence[int],
            predicate: Callable[[tuple], bool] = predicate,
        ) -> list:
            return [
                i
                for i in indices
                if predicate(tuple(column[i] for column in columns))
            ]

        filters.append(fallback)

    # NOTE: splitting ``a AND b`` into sequential filters is exact under
    # 3VL for *filtering*: a row passes the conjunction iff every
    # conjunct is TRUE, regardless of UNKNOWN short-circuit order.
    def apply(columns: list, indices: Sequence[int]) -> list:
        live = list(indices)
        for conjunct_filter in filters:
            if not live:
                break
            live = conjunct_filter(columns, live)
        return live

    return apply
