"""Multiprocessing engine pool for parallel bounded execution.

The columnar executor (PR 3) cut single-thread compute 2-3x, but every
bounded plan still runs on one GIL-bound thread: concurrent clients of
the serving layer serialise on the interpreter even when their queries
touch disjoint data. The :class:`EnginePool` breaks that ceiling by
executing bounded work on **worker processes**:

* **Whole-plan dispatch** — an independent covered query ships its
  :class:`~repro.bounded.plan.BoundedPlan` to one worker, which runs the
  full columnar pipeline (fetch/select + batch tail) and returns rows +
  metrics. This is the serving layer's fan-out unit: N client threads
  drive N workers concurrently, each outside the parent's GIL.
* **Batch dispatch** — a single large query splits each fetch's input
  into ``rows_per_batch`` column chunks and fans the chunks out across
  idle workers. The wire format is the pickled per-attribute columns of
  :class:`~repro.engine.columnar.ColumnarIntermediate` — only the
  columns the fetch's key plan actually reads are shipped.
* **Warm catalog snapshots** — each worker holds the access indices
  (``ASCatalog.index_map()``) keyed by a *snapshot key*: the access
  schema generation plus the per-table data version vector. A task
  carries the key it was planned under; a worker whose installed
  snapshot differs answers ``stale`` and the master re-sends the
  snapshot before retrying, so a worker can never compute over data the
  master has since mutated. Workers hold **only** indices — they have no
  base tables, so like the paper's bounded plans they physically cannot
  scan.
* **Graceful fallback** — no pool, no idle worker, a dead worker, or a
  plan outside the parallelisable fragment all fall back to in-process
  execution. Answers are never wrong, only slower; the chaos suite
  (``tests/test_pool_chaos.py``) locks this in.

Accounting is merged deterministically: every chunk reports its fetched
count (plain mode) or its distinct key -> bucket-size map (``dedup_keys``
mode); the master sums counts, or unions the key maps and sums bucket
sizes, which equals the serial single-cache accounting exactly. The §3
bound arithmetic is enforced by the master on the merged totals.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import queue
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Sequence

from repro import config
from repro.config import DISPATCH_MODES
from repro.errors import BEASError, ReproError

# the snapshot-protocol vocabulary is shared with the serving fleet
# (repro.distributed): one set of task kinds, reply tags, and one
# stale-retry state machine for the pipe wire and the socket wire alike
from repro.distributed.protocol import (
    MSG_DEBUG,
    MSG_EXIT,
    MSG_FETCH,
    MSG_PING,
    MSG_PLAN,
    MSG_SNAPSHOT,
    MSG_SNAPSHOT_SHM,
    REPLY_CHUNKS,
    REPLY_OK,
    REPLY_PONG,
    REPLY_RAISE,
    REPLY_RESULT,
    REPLY_SHM_FAILED,
    REPLY_STALE,
    REPLY_UNSUPPORTED,
    SnapshotCatalog,
    StalePeer,
    compute_with_stale_retry,
)


def resolve_parallelism(
    parallelism: Optional[int], default: int = 0
) -> int:
    """Resolve the worker-process count: explicit argument, else the
    ``BEAS_PARALLELISM`` environment variable, else ``default`` (usually
    the engine profile's ``parallelism``), else 1 (in-process).

    Explicit values must be positive integers (1 = in-process, >= 2
    enables the pool); anything else raises
    :class:`~repro.errors.BEASError` at construction time (the
    environment is validated by :mod:`repro.config`).
    """
    if parallelism is None:
        env = config.env_parallelism()
        if env is None:
            return max(default, 1)
        return env
    return config.validate_parallelism(parallelism)


def resolve_dispatch(dispatch: Optional[str]) -> str:
    return config.validate_dispatch(dispatch or "auto")


# --------------------------------------------------------------------------- #
# the fetch-chunk kernel (shared by the serial executor and the workers)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FetchChunkSpec:
    """Resolved fetch-key layout in *slot* terms.

    A slot indexes the column list the kernel is handed — the full
    intermediate's columns in-process, or the compact wire columns on a
    worker. Built by ``bounded.executor._KeyPlan``; the enumeration
    semantics (constant groups, NULL-key skipping, Y-consistency) are
    identical in both placements because this is the single
    implementation.
    """

    parts_len: int
    column_slots: tuple  # per key part: slot or None (constant part)
    group_value_lists: tuple  # enumerated constants per group
    group_positions: tuple  # key positions each group fills
    x_new: tuple  # key positions appended as new X columns
    y_new: tuple  # Y positions appended as new Y columns
    y_existing: tuple  # (y position, slot) pairs that must match
    track_gather: bool  # replicate existing columns via a gather list

    def keys_at(self, columns: Sequence[list], index: int):
        """Yield the fully resolved key tuples for one input row; yields
        nothing when any key part — column-sourced or constant — is NULL
        (SQL three-valued logic: an equality against NULL is UNKNOWN)."""
        for combo in self._const_combos():
            key = [None] * self.parts_len
            for group_index, positions in enumerate(self.group_positions):
                for position in positions:
                    key[position] = combo[group_index]
            valid = True
            for i, slot in enumerate(self.column_slots):
                if slot is not None:
                    value = columns[slot][index]
                    if value is None:
                        valid = False  # SQL: NULL never joins
                        break
                    key[i] = value
            if valid:
                yield tuple(key)

    def _const_combos(self):
        if not self.group_value_lists:
            return ((),)
        return (
            combo
            for combo in itertools.product(*self.group_value_lists)
            if None not in combo
        )


@dataclass
class FetchChunkResult:
    """One chunk's fetch output, position-relative to the kernel input."""

    gather: list  # input index per output row (when track_gather)
    x_columns: list  # new X columns (chunk-local)
    y_columns: list  # new Y columns (chunk-local)
    out_count: int
    fetched: int  # tuples fetched by this chunk (see key_counts for dedup)
    key_counts: Optional[dict] = None  # dedup: distinct key -> bucket size


def run_fetch_chunk(
    fetch: Callable[[tuple], list],
    spec: FetchChunkSpec,
    columns: Sequence[list],
    indices: Sequence[int],
    dedup: bool,
    cache: Optional[dict] = None,
) -> FetchChunkResult:
    """Run one fetch chunk: resolve each input row's keys, gather the
    index postings, filter against existing Y columns, and emit the new
    columns chunk-locally.

    ``cache`` (dedup mode) carries the shared key cache of a serial
    execution; ``fetched`` then counts only keys *new to the cache*,
    matching the single-threaded accounting. Without a shared cache the
    chunk dedups locally and reports ``key_counts`` so the master can
    merge across chunks deterministically (union keys, sum bucket
    sizes — equal to the serial count because bucket sizes are a pure
    function of the key).
    """
    local_counts: Optional[dict] = None
    if dedup and cache is None:
        cache = {}
        local_counts = {}
    fetched = 0
    gather: list = []
    x_columns: list[list] = [[] for _ in spec.x_new]
    y_columns: list[list] = [[] for _ in spec.y_new]
    out_count = 0
    y_existing = spec.y_existing
    track_gather = spec.track_gather

    for i in indices:
        for key in spec.keys_at(columns, i):
            if dedup:
                bucket = cache.get(key)
                if bucket is None:
                    bucket = fetch(key)
                    cache[key] = bucket
                    fetched += len(bucket)
                    if local_counts is not None:
                        local_counts[key] = len(bucket)
            else:
                bucket = fetch(key)
                fetched += len(bucket)
            if not bucket:
                continue
            if y_existing:
                bucket = [
                    y_value
                    for y_value in bucket
                    if all(y_value[j] == columns[slot][i] for j, slot in y_existing)
                ]
                if not bucket:
                    continue
            matches = len(bucket)
            out_count += matches
            if track_gather:
                gather.extend([i] * matches)
            for column, j in zip(x_columns, spec.x_new):
                column.extend([key[j]] * matches)
            for column, j in zip(y_columns, spec.y_new):
                column.extend([y_value[j] for y_value in bucket])

    return FetchChunkResult(
        gather=gather,
        x_columns=x_columns,
        y_columns=y_columns,
        out_count=out_count,
        fetched=fetched,
        key_counts=local_counts,
    )


def merge_dedup_counts(results: Sequence[FetchChunkResult]) -> int:
    """Merged ``tuples_fetched`` under ``dedup_keys``: each globally
    distinct key contributes its bucket size once, exactly as one shared
    cache would count it."""
    merged: dict = {}
    for result in results:
        if result.key_counts:
            for key, count in result.key_counts.items():
                merged.setdefault(key, count)
    return sum(merged.values())


# --------------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------------- #
# the worker-side indices-only catalog now lives with the rest of the
# snapshot protocol; the private alias keeps this module's worker code
# (and its history) readable in pool terms
_SnapshotCatalog = SnapshotCatalog


def _worker_main(conn) -> None:  # pragma: no cover - runs in a subprocess
    """Worker loop: install snapshots, execute plan / fetch tasks.

    Every compute task carries the snapshot key it was planned under; a
    mismatch with the installed snapshot answers ``("stale", installed)``
    instead of computing — the master re-sends the snapshot and retries.
    """
    installed_key: Optional[tuple] = None
    indexes: dict = {}
    shm_handle = None  # the attached SharedMemory backing mapped indices
    die_next = False
    # decided once, before any shm attach: whether this worker runs its
    # own resource tracker (spawn) or shares the master's (fork)
    private_tracker = not _tracker_is_inherited()
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        kind = task[0]
        if kind == MSG_EXIT:
            conn.close()
            return
        if kind == MSG_PING:
            conn.send((REPLY_PONG, os.getpid()))
            continue
        if kind == MSG_DEBUG:
            action = task[1]
            if action == "die":
                os._exit(17)
            if action == "die_on_next_task":
                die_next = True
                conn.send((REPLY_OK,))
            elif action == "sleep":
                time.sleep(task[2])
                conn.send((REPLY_OK,))
            elif action == "set_snapshot_key":
                # chaos hook: make the installed snapshot *claim* a key
                # without holding its data — simulates a worker whose
                # snapshot silently went stale
                installed_key = task[2]
                conn.send((REPLY_OK,))
            else:
                conn.send(
                    (REPLY_UNSUPPORTED, f"unknown debug action {action!r}")
                )
            continue
        if kind == MSG_SNAPSHOT:
            installed_key = task[1]
            indexes = task[2]
            if shm_handle is not None:
                # the pickle wire replaced a shared-memory snapshot: the
                # mapped indices are gone with the dict, so the attachment
                # can be dropped (unlinking is the master's job)
                previous, shm_handle = shm_handle, None
                try:
                    previous.close()
                except (BufferError, OSError):
                    pass
            conn.send((REPLY_OK,))
            continue
        if kind == MSG_SNAPSHOT_SHM:
            try:
                new_indexes, handle = _attach_shm_snapshot(
                    task[2], unregister=private_tracker
                )
            except Exception as error:  # noqa: BLE001 - any attach failure reports back and the master falls back to the pickle wire
                conn.send((REPLY_SHM_FAILED, repr(error)))
                continue
            installed_key = task[1]
            indexes = new_indexes
            previous, shm_handle = shm_handle, handle
            if previous is not None:
                try:
                    previous.close()
                except (BufferError, OSError):
                    pass
            conn.send((REPLY_OK,))
            continue
        if die_next:
            os._exit(17)
        expected_key = task[1]
        if expected_key != installed_key:
            conn.send((REPLY_STALE, installed_key))
            continue
        if kind == MSG_PLAN:
            conn.send(_run_plan_task(indexes, task))
        elif kind == MSG_FETCH:
            conn.send(_run_fetch_task(indexes, task))
        else:
            conn.send((REPLY_UNSUPPORTED, f"unknown task kind {kind!r}"))


def _tracker_is_inherited() -> bool:  # pragma: no cover - subprocess
    """True when this worker shares the master's resource tracker.

    Under ``fork``/``forkserver`` the tracker process (and its pipe fd)
    is inherited, so register/unregister messages land in the SAME
    bookkeeping set the master uses; under ``spawn`` the module state is
    fresh and the first registration starts a private tracker.
    """
    from multiprocessing import resource_tracker

    return getattr(resource_tracker._resource_tracker, "_fd", None) is not None


def _attach_shm_snapshot(name: str, *, unregister: bool):  # pragma: no cover - subprocess
    """Attach one exported snapshot block and open its mapped indices.

    The handle must outlive the indices (their buckets decode lazily
    from ``handle.buf``), so it is returned to the worker loop, which
    closes the *previous* attachment only after replacing the index
    dict. Never unlinks: the block's lifetime belongs to the master's
    exporter.
    """
    from multiprocessing import resource_tracker, shared_memory

    from repro.storage.mmapstore import decode_snapshot

    handle = shared_memory.SharedMemory(name=name)
    if unregister:
        # attaching registers the block with this worker's PRIVATE
        # resource tracker as if the worker owned it (bpo-38119);
        # unregister, or the tracker unlinks a block the master still
        # serves and warns about it at shutdown. With an INHERITED
        # (shared) tracker the registration is the master's own and must
        # stay — removing it here makes the master's eventual unlink a
        # double-remove the tracker reports as a KeyError.
        try:
            resource_tracker.unregister(handle._name, "shared_memory")
        except Exception:  # noqa: BLE001 - tracker bookkeeping only; never fail the attach over it
            pass
    try:
        indexes = decode_snapshot(handle.buf)
    except Exception:  # noqa: BLE001 - close the mapping on ANY decode failure, then re-raise for the fallback reply
        try:
            handle.close()
        except (BufferError, OSError):
            pass
        raise
    return indexes, handle


def _run_plan_task(indexes: dict, task: tuple):  # pragma: no cover - subprocess
    _, _, plan, dedup, rows_per_batch = task
    try:
        # imported lazily: bounded.executor imports this module at top level
        from repro.bounded.executor import BoundedPlanExecutor

        executor = BoundedPlanExecutor(
            _SnapshotCatalog(indexes),
            dedup_keys=dedup,
            executor="columnar",
            rows_per_batch=rows_per_batch,
        )
        result = executor.execute(plan)
        return (REPLY_RESULT, result.columns, result.rows, result.metrics)
    except ReproError as error:
        # semantic failure (bound exceeded, type error): identical to the
        # in-process outcome, so it must propagate, not fall back
        return (REPLY_RAISE, error)
    except Exception as error:  # noqa: BLE001 - infra failure -> fallback
        return (REPLY_UNSUPPORTED, repr(error))


def _run_fetch_task(indexes: dict, task: tuple):  # pragma: no cover - subprocess
    _, _, constraint_name, spec, dedup, payloads = task
    index = indexes.get(constraint_name)
    if index is None:
        return (REPLY_UNSUPPORTED, f"no index for {constraint_name!r}")
    try:
        results = [
            run_fetch_chunk(index.fetch, spec, columns, range(count), dedup)
            for columns, count in payloads
        ]
        return (REPLY_CHUNKS, results)
    except ReproError as error:
        return (REPLY_RAISE, error)
    except Exception as error:  # noqa: BLE001 - worker boundary: any failure reports "unsupported" and the parent re-runs in-process
        return (REPLY_UNSUPPORTED, repr(error))


# --------------------------------------------------------------------------- #
# the pool
# --------------------------------------------------------------------------- #
@dataclass
class PoolStats:
    """Cumulative counters for one :class:`EnginePool`."""

    workers: int = 0
    alive: int = 0
    plans_dispatched: int = 0
    chunks_dispatched: int = 0
    snapshots_sent: int = 0
    snapshot_bytes_shipped: int = 0  # wire bytes per install (shm: name only)
    shm_attaches: int = 0
    shm_fallbacks: int = 0  # shm offered but the pickle wire was used
    stale_retries: int = 0
    worker_deaths: int = 0
    respawns: int = 0
    exhaustion_fallbacks: int = 0
    fallbacks: int = 0  # tasks that fell back in-process for any reason
    wait_seconds: float = 0.0  # total time spent acquiring workers

    def describe(self) -> str:
        return (
            f"engine pool: {self.alive}/{self.workers} workers alive, "
            f"{self.plans_dispatched} plans + {self.chunks_dispatched} "
            f"batches dispatched, {self.snapshots_sent} snapshots sent "
            f"({self.snapshot_bytes_shipped} B shipped, {self.shm_attaches} "
            f"shm attaches, {self.shm_fallbacks} shm fallbacks), "
            f"{self.stale_retries} stale retries, {self.worker_deaths} "
            f"deaths ({self.respawns} respawns), {self.fallbacks} "
            f"fallbacks ({self.exhaustion_fallbacks} on exhaustion), "
            f"waited {self.wait_seconds * 1000:.2f} ms"
        )


class _Worker:
    """One worker process plus the master-side bookkeeping for it."""

    __slots__ = ("process", "conn", "snapshot_key", "alive")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.snapshot_key: Optional[tuple] = None
        self.alive = True


class _WorkerDied(Exception):
    """Internal: the worker's pipe broke mid-roundtrip."""


class EnginePool:
    """A fixed set of worker processes executing bounded work.

    Thread-safe: any number of serving threads may acquire workers
    concurrently; each worker runs one task at a time. Workers are
    daemonic, so an abandoned pool cannot outlive the interpreter, and
    :meth:`close` shuts them down deterministically.
    """

    def __init__(
        self,
        workers: int,
        *,
        start_method: Optional[str] = None,
        acquire_timeout: float = 0.05,
        task_timeout: float = 120.0,
        snapshot_exporter: Optional[
            Callable[[tuple, Callable[[], dict]], Optional[str]]
        ] = None,
    ):
        """``acquire_timeout`` bounds the wait for an idle worker before
        falling back in-process; ``task_timeout`` bounds one task's
        roundtrip — a worker that is alive but wedged past it is
        terminated and treated as dead (fallback + respawn), so a hung
        worker can never hang a client thread.

        ``snapshot_exporter`` (the mmap storage engine's
        :meth:`~repro.storage.mmapstore.MmapStore.snapshot_exporter`)
        turns a snapshot key into a named ``multiprocessing.shared_memory``
        block holding the encoded index segments; workers then attach it
        zero-copy instead of receiving the pickled index map. ``None``
        from the exporter, or a failed attach on the worker, falls back
        to the pickle wire within the same install."""
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise BEASError(
                f"pool workers must be an int, got {type(workers).__name__}"
            )
        if workers < 1:
            raise BEASError(f"pool workers must be >= 1, got {workers}")
        # 'fork' where available: worker startup is milliseconds and the
        # children run nothing but already-imported repro code over their
        # pipe (no exec, no logging, no new imports), which sidesteps the
        # classic fork-with-threads hazards. 'forkserver' measured ~0.5 s
        # per pool here (each worker re-imports the package); set
        # BEAS_POOL_START_METHOD=forkserver/spawn to trade startup time
        # for full isolation.
        method = start_method or config.env_pool_start_method()
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else "spawn"
        self._context = multiprocessing.get_context(method)
        self._snapshot_exporter = snapshot_exporter
        self.workers = workers
        self.acquire_timeout = acquire_timeout
        self.task_timeout = task_timeout
        self._idle: "queue.Queue[_Worker]" = queue.Queue()
        self._lock = threading.Lock()
        self._stats = PoolStats(workers=workers)
        self._all: list[_Worker] = []
        self._closed = False
        for _ in range(workers):
            self._idle.put(self._spawn())

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn,),
            name="beas-pool-worker",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(process, parent_conn)
        with self._lock:
            if self._closed:
                # close() ran while we were forking: this worker would be
                # orphaned (close() already swept _all), so shut it down
                # here and hand back a dead handle the callers discard
                closing = True
            else:
                closing = False
                self._all.append(worker)
        if closing:
            self._shutdown_worker(worker)
        return worker

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut down idle workers; acquired ones exit when released.

        Only workers sitting in the idle queue have their connection
        touched here — a connection is not thread-safe, and an acquired
        worker's pipe belongs to the dispatching thread until it calls
        :meth:`release` (which, on a closed pool, performs the same
        shutdown from the owning thread).
        """
        self._closed = True
        idle: list[_Worker] = []
        while True:
            try:
                idle.append(self._idle.get_nowait())
            except queue.Empty:
                break
        with self._lock:
            self._all.clear()
        for worker in idle:
            self._shutdown_worker(worker)

    def _shutdown_worker(self, worker: _Worker) -> None:
        """Exit one worker from the thread that owns its connection."""
        if worker.alive:
            try:
                worker.conn.send((MSG_EXIT,))
            except (OSError, ValueError):
                pass
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        worker.process.join(timeout=2.0)
        if worker.process.is_alive():  # pragma: no cover - stuck worker
            worker.process.terminate()
            worker.process.join(timeout=1.0)
        worker.alive = False

    def __enter__(self) -> "EnginePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-time best effort
        try:
            if not self._closed:
                self.close()
        except Exception:  # beaslint: ok(except-discipline) - GC-time best effort; __del__ must never raise
            pass

    # ------------------------------------------------------------------ #
    # worker acquisition
    # ------------------------------------------------------------------ #
    def acquire(
        self,
        timeout: Optional[float] = None,
        *,
        _count_exhaustion: bool = True,
    ) -> Optional[_Worker]:
        """An idle worker, or ``None`` when the pool is exhausted/closed.

        The wait is counted into the pool's ``wait_seconds``. Dead
        workers found in the queue are respawned transparently.
        """
        if self._closed:
            return None
        if timeout is None:
            timeout = self.acquire_timeout
        start = time.perf_counter()
        try:
            if timeout <= 0:
                worker = self._idle.get_nowait()
            else:
                worker = self._idle.get(timeout=timeout)
        except queue.Empty:
            with self._lock:
                self._stats.wait_seconds += time.perf_counter() - start
                if _count_exhaustion:
                    self._stats.exhaustion_fallbacks += 1
            return None
        with self._lock:
            self._stats.wait_seconds += time.perf_counter() - start
        if not worker.alive or not worker.process.is_alive():
            self._note_death(worker)
            if self._closed:
                return None
            worker = self._spawn()
            if not worker.alive:  # closed mid-spawn
                return None
            with self._lock:
                self._stats.respawns += 1
        return worker

    def release(self, worker: _Worker) -> None:
        if self._closed:
            # close() left acquired workers to their owning threads —
            # this thread owns the connection, so shut down here
            self._shutdown_worker(worker)
            return
        if worker.alive and worker.process.is_alive():
            self._idle.put(worker)
        else:
            self._note_death(worker)
            if self._closed:
                return
            replacement = self._spawn()
            if replacement.alive:
                self._idle.put(replacement)
                with self._lock:
                    self._stats.respawns += 1

    def _note_death(self, worker: _Worker) -> None:
        worker.alive = False
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        with self._lock:
            if worker in self._all:
                self._all.remove(worker)
            self._stats.worker_deaths += 1

    # ------------------------------------------------------------------ #
    # the task roundtrip
    # ------------------------------------------------------------------ #
    def _recv(self, worker: _Worker):
        """Receive one reply with the task deadline applied: a worker
        that is alive but wedged past ``task_timeout`` is terminated and
        reported dead, so a hung worker can only cost time, never hang
        the dispatching client thread."""
        if not worker.conn.poll(self.task_timeout):
            worker.alive = False
            try:  # pragma: no cover - requires a truly wedged worker
                worker.process.terminate()
            except OSError:
                pass
            raise _WorkerDied(
                f"worker task exceeded {self.task_timeout}s deadline"
            )
        return worker.conn.recv()

    def _roundtrip(self, worker: _Worker, task: tuple):
        try:
            worker.conn.send(task)
            return self._recv(worker)
        except (EOFError, OSError, BrokenPipeError) as error:
            worker.alive = False
            raise _WorkerDied(str(error)) from error

    def _ensure_snapshot(self, worker: _Worker, key: tuple, payload_fn) -> None:
        if worker.snapshot_key == key:
            return
        if self._snapshot_exporter is not None:
            name = self._snapshot_exporter(key, payload_fn)
            if name is not None:
                task = (MSG_SNAPSHOT_SHM, key, name)
                reply = self._roundtrip(worker, task)
                if reply == (REPLY_OK,):
                    worker.snapshot_key = key
                    with self._lock:
                        self._stats.snapshots_sent += 1
                        self._stats.shm_attaches += 1
                        self._stats.snapshot_bytes_shipped += len(
                            pickle.dumps(task, pickle.HIGHEST_PROTOCOL)
                        )
                    return
                if reply[0] != REPLY_SHM_FAILED:  # pragma: no cover - defensive
                    raise _WorkerDied(f"snapshot install failed: {reply!r}")
            # exporter declined or the worker could not attach (e.g. the
            # block was replaced under a racing key): same-call fallback
            with self._lock:
                self._stats.shm_fallbacks += 1
        # the pickle wire: pre-serialised so the shipped bytes are
        # measured exactly (Connection.recv unpickles raw byte messages)
        payload = pickle.dumps(
            (MSG_SNAPSHOT, key, payload_fn()), pickle.HIGHEST_PROTOCOL
        )
        try:
            worker.conn.send_bytes(payload)
            reply = self._recv(worker)
        except (EOFError, OSError, BrokenPipeError) as error:
            worker.alive = False
            raise _WorkerDied(str(error)) from error
        if reply != (REPLY_OK,):  # pragma: no cover - defensive
            raise _WorkerDied(f"snapshot install failed: {reply!r}")
        worker.snapshot_key = key
        with self._lock:
            self._stats.snapshots_sent += 1
            self._stats.snapshot_bytes_shipped += len(payload)

    def _compute(self, worker: _Worker, key: tuple, payload_fn, task: tuple):
        """Send one compute task through the shared stale-retry state
        machine: a stale worker gets the snapshot re-sent and the task
        retried once; a second stale reply reports the worker dead."""

        def on_stale() -> None:
            # the worker's installed snapshot disagrees with our
            # bookkeeping (chaos, or a respawn raced us)
            with self._lock:
                self._stats.stale_retries += 1
            worker.snapshot_key = None

        try:
            return compute_with_stale_retry(
                ensure=lambda: self._ensure_snapshot(worker, key, payload_fn),
                roundtrip=lambda: self._roundtrip(worker, task),
                on_stale=on_stale,
            )
        except StalePeer as error:  # pragma: no cover - defensive
            raise _WorkerDied(str(error)) from error

    # ------------------------------------------------------------------ #
    # whole-plan dispatch
    # ------------------------------------------------------------------ #
    def execute_plan(
        self,
        snapshot_key: tuple,
        payload_fn,
        plan,
        *,
        dedup: bool,
        rows_per_batch: int,
    ):
        """Run one bounded plan on a worker.

        Returns ``(columns, rows, metrics, wait_seconds)`` on success or
        ``None`` when the pool cannot serve it (exhausted, worker died,
        unsupported shape) — the caller falls back in-process. Semantic
        errors raised by the plan itself
        (:class:`~repro.errors.ReproError`) propagate.
        """
        start = time.perf_counter()
        worker = self.acquire()
        wait = time.perf_counter() - start
        if worker is None:
            with self._lock:
                self._stats.fallbacks += 1
            return None
        try:
            reply = self._compute(
                worker,
                snapshot_key,
                payload_fn,
                (MSG_PLAN, snapshot_key, plan, dedup, rows_per_batch),
            )
        except _WorkerDied:
            self.release(worker)
            with self._lock:
                self._stats.fallbacks += 1
            return None
        self.release(worker)
        if reply[0] == REPLY_RESULT:
            with self._lock:
                self._stats.plans_dispatched += 1
            return reply[1], reply[2], reply[3], wait
        if reply[0] == REPLY_RAISE:
            raise reply[1]
        with self._lock:  # unsupported
            self._stats.fallbacks += 1
        return None

    # ------------------------------------------------------------------ #
    # fetch-batch dispatch
    # ------------------------------------------------------------------ #
    def run_fetch_chunks(
        self,
        snapshot_key: tuple,
        payload_fn,
        constraint_name: str,
        spec: FetchChunkSpec,
        payloads: list,
        *,
        dedup: bool,
        local_fn: Callable[[tuple], FetchChunkResult],
    ) -> tuple[list[FetchChunkResult], int, float]:
        """Fan ``payloads`` (``(wire_columns, count)`` chunks) out across
        idle workers; any chunk the pool cannot serve runs via
        ``local_fn``. Returns ``(results_in_order, chunks_on_workers,
        wait_seconds)``.
        """
        n = len(payloads)
        results: list[Optional[FetchChunkResult]] = [None] * n
        acquired: list[_Worker] = []
        # first worker may wait briefly; extras are grabbed only if idle
        start = time.perf_counter()
        first = self.acquire()
        wait = time.perf_counter() - start
        if first is not None:
            acquired.append(first)
            while len(acquired) < min(self.workers, n):
                # opportunistic extras: failing to grab one is not pool
                # exhaustion — the fan-out just narrows
                extra = self.acquire(timeout=0, _count_exhaustion=False)
                if extra is None:
                    break
                acquired.append(extra)

        shares: list[list[int]] = [[] for _ in acquired]
        for i in range(n):
            if acquired:
                shares[i % len(acquired)].append(i)
        remote = 0
        pending_local: list[int] = [] if acquired else list(range(n))

        # one roundtrip per worker: send every worker its share, then
        # collect. A dead worker's share is recomputed locally.
        inflight: list[tuple[_Worker, list[int]]] = []
        for worker, share in zip(acquired, shares):
            if not share:
                self.release(worker)
                continue
            try:
                self._ensure_snapshot(worker, snapshot_key, payload_fn)
                worker.conn.send(
                    (
                        MSG_FETCH,
                        snapshot_key,
                        constraint_name,
                        spec,
                        dedup,
                        [payloads[i] for i in share],
                    )
                )
                inflight.append((worker, share))
            except (_WorkerDied, OSError, BrokenPipeError):
                worker.alive = False
                self.release(worker)
                pending_local.extend(share)
                with self._lock:
                    self._stats.fallbacks += len(share)

        semantic_error: Optional[BaseException] = None
        for worker, share in inflight:
            try:
                reply = self._recv(worker)
            except (_WorkerDied, EOFError, OSError):
                worker.alive = False
                self.release(worker)
                pending_local.extend(share)
                with self._lock:
                    self._stats.fallbacks += len(share)
                continue
            if reply[0] == REPLY_STALE:
                # retry this worker's whole share once with a fresh snapshot
                with self._lock:
                    self._stats.stale_retries += 1
                worker.snapshot_key = None
                try:
                    reply = self._compute(
                        worker,
                        snapshot_key,
                        payload_fn,
                        (
                            MSG_FETCH,
                            snapshot_key,
                            constraint_name,
                            spec,
                            dedup,
                            [payloads[i] for i in share],
                        ),
                    )
                except _WorkerDied:
                    self.release(worker)
                    pending_local.extend(share)
                    with self._lock:
                        self._stats.fallbacks += len(share)
                    continue
            if reply[0] == REPLY_CHUNKS:
                for i, chunk_result in zip(share, reply[1]):
                    results[i] = chunk_result
                remote += len(share)
                self.release(worker)
            elif reply[0] == REPLY_RAISE:
                # semantic error: remember it, but keep draining the other
                # in-flight workers so their replies don't poison later tasks
                self.release(worker)
                if semantic_error is None:
                    semantic_error = reply[1]
            else:  # unsupported
                self.release(worker)
                pending_local.extend(share)
                with self._lock:
                    self._stats.fallbacks += len(share)

        with self._lock:
            self._stats.chunks_dispatched += remote
        if semantic_error is not None:
            raise semantic_error
        for i in pending_local:
            results[i] = local_fn(payloads[i])
        return (
            [result for result in results if result is not None],
            remote,
            wait,
        )

    # ------------------------------------------------------------------ #
    # introspection / chaos hooks
    # ------------------------------------------------------------------ #
    def idle_count(self) -> int:
        """Approximate number of idle workers (racy by nature: a worker
        may be taken between the check and a subsequent acquire). Used as
        a cheap pre-flight so callers skip expensive wire-format
        preparation when the pool is obviously busy."""
        if self._closed:
            return 0
        return self._idle.qsize()

    def stats(self) -> PoolStats:
        with self._lock:
            snapshot = replace(self._stats)
            snapshot.alive = sum(
                1 for w in self._all if w.alive and w.process.is_alive()
            )
        return snapshot

    @property
    def wait_seconds(self) -> float:
        with self._lock:
            return self._stats.wait_seconds

    def debug(self, action: str, *args, worker: Optional[_Worker] = None):
        """Send a chaos-test hook to one idle worker (or ``worker``).

        Actions: ``die_on_next_task`` (exit mid-task on the next compute
        task), ``sleep`` (hold the worker busy), ``set_snapshot_key``
        (silently corrupt the installed snapshot key), ``ping``.
        """
        owned = worker is None
        if owned:
            worker = self.acquire(timeout=1.0)
            if worker is None:
                raise BEASError("no idle worker for debug hook")
        try:
            if action == "ping":
                return self._roundtrip(worker, (MSG_PING,))
            return self._roundtrip(worker, (MSG_DEBUG, action, *args))
        finally:
            if owned:
                self.release(worker)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return f"EnginePool({self.workers} workers, {state})"
