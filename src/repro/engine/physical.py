"""Physical operators: interpret a logical plan over a Database.

Everything is materialised (lists of row tuples) — predictable, easy to
meter, and appropriate for an in-memory engine. Each operator records an
:class:`~repro.engine.metrics.OperationCost` so the Fig.-3-style analyzer
can break a query's cost down per operation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.normalize import Attribute
from repro.storage.database import Database
from repro.engine.columnar import (
    ColumnarIntermediate,
    columnar_values,
    resolve_rows_per_batch,
)
from repro.engine.expressions import compile_expression, compile_predicate
from repro.engine.logical import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    MaterializedNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SetOpNode,
    SortNode,
)
from repro.engine.metrics import ExecutionMetrics
from repro.engine.profiles import EngineProfile

Row = tuple


@dataclass
class Intermediate:
    """A materialised intermediate relation with labelled columns."""

    labels: list[object]  # Attribute | str | ast.FunctionCall
    rows: list[Row]
    _layout: Optional[dict[object, int]] = field(default=None, repr=False)

    @property
    def layout(self) -> dict[object, int]:
        if self._layout is None:
            self._layout = {label: i for i, label in enumerate(self.labels)}
        return self._layout


def _busy_work(row: Row, units: int) -> None:
    """Honest per-row overhead work for comparator profiles (see profiles.py)."""
    for _ in range(units):
        list(row)


class PhysicalExecutor:
    """Interprets logical plans against a database under a profile."""

    def __init__(
        self,
        database: Database,
        profile: EngineProfile,
        metrics: ExecutionMetrics,
    ):
        self._db = database
        self._profile = profile
        self._metrics = metrics

    # ------------------------------------------------------------------ #
    def run(self, node: PlanNode) -> Intermediate:
        if self._profile.executor == "columnar":
            chain = ColumnarTailExecutor.match(node)
            if chain is not None:
                child = self.run(chain.child)  # scans/joins stay row-wise
                source = ColumnarIntermediate.from_rows(child.labels, child.rows)
                tail = ColumnarTailExecutor(
                    self._metrics,
                    resolve_rows_per_batch(self._profile.rows_per_batch or None),
                )
                return tail.run(chain, source)
        if isinstance(node, ScanNode):
            return self._scan(node)
        if isinstance(node, FilterNode):
            return self._filter(node)
        if isinstance(node, JoinNode):
            return self._join(node)
        if isinstance(node, AggregateNode):
            return self._aggregate(node)
        if isinstance(node, ProjectNode):
            return self._project(node)
        if isinstance(node, DistinctNode):
            return self._distinct(node)
        if isinstance(node, SortNode):
            return self._sort(node)
        if isinstance(node, LimitNode):
            return self._limit(node)
        if isinstance(node, SetOpNode):
            return self._set_op(node)
        if isinstance(node, MaterializedNode):
            return Intermediate(list(node.labels), list(node.rows))
        raise ExecutionError(f"unknown plan node {node!r}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    def _scan(self, node: ScanNode) -> Intermediate:
        start = time.perf_counter()
        table = self._db.table(node.table_name)
        base_labels = [
            Attribute(node.binding, column) for column in table.schema.column_names
        ]
        base_layout = {label: i for i, label in enumerate(base_labels)}
        keep = table.schema.positions(node.columns)
        labels: list[object] = [Attribute(node.binding, c) for c in node.columns]
        overhead = self._profile.row_overhead

        predicate = (
            compile_predicate(node.predicate, base_layout)
            if node.predicate is not None
            else None
        )
        rows: list[Row] = []
        if overhead:
            for row in table.rows:
                _busy_work(row, overhead)
                if predicate is None or predicate(row):
                    rows.append(tuple(row[i] for i in keep))
        else:
            if predicate is None:
                rows = [tuple(row[i] for i in keep) for row in table.rows]
            else:
                rows = [
                    tuple(row[i] for i in keep)
                    for row in table.rows
                    if predicate(row)
                ]
        self._metrics.tuples_scanned += len(table)
        self._metrics.record(
            f"scan({node.table_name} as {node.binding})",
            len(table),
            len(rows),
            time.perf_counter() - start,
        )
        return Intermediate(labels, rows)

    def _filter(self, node: FilterNode) -> Intermediate:
        child = self.run(node.child)
        start = time.perf_counter()
        predicate = compile_predicate(node.predicate, child.layout)
        rows = [row for row in child.rows if predicate(row)]
        self._metrics.record(
            "filter", len(child.rows), len(rows), time.perf_counter() - start
        )
        return Intermediate(child.labels, rows)

    # ------------------------------------------------------------------ #
    def _join(self, node: JoinNode) -> Intermediate:
        left = self.run(node.left)
        right = self.run(node.right)
        start = time.perf_counter()
        labels = left.labels + right.labels

        if not node.pairs:
            rows = [l + r for l in left.rows for r in right.rows]
            algorithm = "cross"
        else:
            left_keys = [left.layout[a] for a, _ in node.pairs]
            right_keys = [right.layout[b] for _, b in node.pairs]
            algorithm = self._profile.join_algorithm
            if algorithm == "hash":
                rows = self._hash_join(left.rows, right.rows, left_keys, right_keys)
            elif algorithm == "sort_merge":
                rows = self._sort_merge_join(
                    left.rows, right.rows, left_keys, right_keys
                )
            else:
                rows = self._block_nested_join(
                    left.rows, right.rows, left_keys, right_keys
                )
        self._metrics.intermediate_rows += len(rows)
        self._metrics.record(
            f"join[{algorithm}]",
            len(left.rows) + len(right.rows),
            len(rows),
            time.perf_counter() - start,
        )
        return Intermediate(labels, rows)

    @staticmethod
    def _hash_join(
        left_rows: list[Row],
        right_rows: list[Row],
        left_keys: list[int],
        right_keys: list[int],
    ) -> list[Row]:
        # build on the smaller input
        if len(left_rows) <= len(right_rows):
            table: dict[tuple, list[Row]] = {}
            for row in left_rows:
                key = tuple(row[i] for i in left_keys)
                if None in key:
                    continue
                table.setdefault(key, []).append(row)
            out: list[Row] = []
            for row in right_rows:
                key = tuple(row[i] for i in right_keys)
                if None in key:
                    continue
                for match in table.get(key, ()):
                    out.append(match + row)
            return out
        table = {}
        for row in right_rows:
            key = tuple(row[i] for i in right_keys)
            if None in key:
                continue
            table.setdefault(key, []).append(row)
        out = []
        for row in left_rows:
            key = tuple(row[i] for i in left_keys)
            if None in key:
                continue
            for match in table.get(key, ()):
                out.append(row + match)
        return out

    @staticmethod
    def _sort_merge_join(
        left_rows: list[Row],
        right_rows: list[Row],
        left_keys: list[int],
        right_keys: list[int],
    ) -> list[Row]:
        def keyed(rows: list[Row], keys: list[int]) -> list[tuple[tuple, Row]]:
            out = []
            for row in rows:
                key = tuple(row[i] for i in keys)
                if None in key:
                    continue
                out.append((key, row))
            out.sort(key=lambda kr: kr[0])
            return out

        left_sorted = keyed(left_rows, left_keys)
        right_sorted = keyed(right_rows, right_keys)
        out: list[Row] = []
        i = j = 0
        while i < len(left_sorted) and j < len(right_sorted):
            lk = left_sorted[i][0]
            rk = right_sorted[j][0]
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                # gather the equal-key runs and emit their product
                i_end = i
                while i_end < len(left_sorted) and left_sorted[i_end][0] == lk:
                    i_end += 1
                j_end = j
                while j_end < len(right_sorted) and right_sorted[j_end][0] == rk:
                    j_end += 1
                for _, lrow in left_sorted[i:i_end]:
                    for _, rrow in right_sorted[j:j_end]:
                        out.append(lrow + rrow)
                i, j = i_end, j_end
        return out

    def _block_nested_join(
        self,
        left_rows: list[Row],
        right_rows: list[Row],
        left_keys: list[int],
        right_keys: list[int],
    ) -> list[Row]:
        block = self._profile.block_size
        out: list[Row] = []
        for offset in range(0, len(left_rows), block):
            chunk = left_rows[offset : offset + block]
            for rrow in right_rows:
                rkey = tuple(rrow[i] for i in right_keys)
                if None in rkey:
                    continue
                for lrow in chunk:
                    if tuple(lrow[i] for i in left_keys) == rkey:
                        out.append(lrow + rrow)
        return out

    # ------------------------------------------------------------------ #
    def _aggregate(self, node: AggregateNode) -> Intermediate:
        child = self.run(node.child)
        start = time.perf_counter()
        group_positions = [child.layout[attr] for attr in node.group_by]

        groups: dict[tuple, list[Row]] = {}
        if group_positions:
            for row in child.rows:
                key = tuple(row[i] for i in group_positions)
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = list(child.rows)  # scalar aggregate: one (maybe empty) group

        labels: list[object] = list(node.group_by) + list(node.calls)
        evaluators = [
            self._compile_aggregate(call, child.layout) for call in node.calls
        ]
        rows: list[Row] = []
        for key, members in groups.items():
            values = tuple(evaluate(members) for evaluate in evaluators)
            rows.append(key + values)

        result = Intermediate(labels, rows)
        if node.having is not None:
            aggregate_values = {
                call: result.layout[call] for call in node.calls
            }
            predicate = compile_predicate(
                node.having, result.layout, aggregate_values
            )
            result = Intermediate(labels, [r for r in result.rows if predicate(r)])
        self._metrics.record(
            "aggregate", len(child.rows), len(result.rows), time.perf_counter() - start
        )
        return result

    @staticmethod
    def _compile_aggregate(call: ast.FunctionCall, layout: dict[object, int]):
        """Return ``rows -> aggregate value`` for one call."""
        if call.name == "COUNT" and isinstance(call.args[0], ast.Star):
            if call.distinct:
                return lambda rows: len({tuple(r) for r in rows})
            return lambda rows: len(rows)

        argument = compile_expression(call.args[0], layout)

        def non_null(rows: list[Row]):
            for row in rows:
                value = argument(row)
                if value is not None:
                    yield value

        name = call.name
        distinct = call.distinct
        if name == "COUNT":
            if distinct:
                return lambda rows: len(set(non_null(rows)))
            return lambda rows: sum(1 for _ in non_null(rows))
        if name == "SUM":
            def agg_sum(rows: list[Row]):
                values = set(non_null(rows)) if distinct else list(non_null(rows))
                return sum(values) if values else None
            return agg_sum
        if name == "AVG":
            def agg_avg(rows: list[Row]):
                values = (
                    list(set(non_null(rows))) if distinct else list(non_null(rows))
                )
                return sum(values) / len(values) if values else None
            return agg_avg
        if name == "MIN":
            def agg_min(rows: list[Row]):
                values = list(non_null(rows))
                return min(values) if values else None
            return agg_min
        if name == "MAX":
            def agg_max(rows: list[Row]):
                values = list(non_null(rows))
                return max(values) if values else None
            return agg_max
        raise ExecutionError(f"unsupported aggregate {name}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    def _project(self, node: ProjectNode) -> Intermediate:
        child = self.run(node.child)
        start = time.perf_counter()
        aggregate_values = {
            label: index
            for label, index in child.layout.items()
            if isinstance(label, ast.FunctionCall)
        }
        evaluators = [
            compile_expression(item.expression, child.layout, aggregate_values)
            for item in node.items
        ]
        labels: list[object] = [item.name for item in node.items]
        rows = [tuple(e(row) for e in evaluators) for row in child.rows]
        self._metrics.record(
            "project", len(child.rows), len(rows), time.perf_counter() - start
        )
        return Intermediate(labels, rows)

    def _distinct(self, node: DistinctNode) -> Intermediate:
        child = self.run(node.child)
        start = time.perf_counter()
        seen: set[Row] = set()
        rows: list[Row] = []
        for row in child.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        self._metrics.record(
            "distinct", len(child.rows), len(rows), time.perf_counter() - start
        )
        return Intermediate(child.labels, rows)

    def _sort(self, node: SortNode) -> Intermediate:
        child = self.run(node.child)
        start = time.perf_counter()
        aggregate_values = {
            label: index
            for label, index in child.layout.items()
            if isinstance(label, ast.FunctionCall)
        }
        rows = list(child.rows)
        # stable sorts applied last-key-first
        for order in reversed(node.order_by):
            evaluator = compile_expression(
                order.expression, child.layout, aggregate_values
            )
            rows.sort(
                key=lambda row: _sort_key(evaluator(row)),
                reverse=not order.ascending,
            )
        self._metrics.record(
            "sort", len(child.rows), len(rows), time.perf_counter() - start
        )
        return Intermediate(child.labels, rows)

    def _limit(self, node: LimitNode) -> Intermediate:
        child = self.run(node.child)
        offset = node.offset or 0
        end = offset + node.limit if node.limit is not None else None
        rows = child.rows[offset:end]
        self._metrics.record("limit", len(child.rows), len(rows), 0.0)
        return Intermediate(child.labels, rows)

    def _set_op(self, node: SetOpNode) -> Intermediate:
        left = self.run(node.left)
        right = self.run(node.right)
        start = time.perf_counter()
        if len(left.labels) != len(right.labels):
            raise ExecutionError(
                "set operation arguments have different numbers of columns"
            )
        if node.op == "UNION":
            if node.all:
                rows = left.rows + right.rows
            else:
                rows = _dedupe(left.rows + right.rows)
        elif node.op == "INTERSECT":
            if node.all:
                from collections import Counter

                counts = Counter(right.rows)
                rows = []
                for row in left.rows:
                    if counts.get(row, 0) > 0:
                        counts[row] -= 1
                        rows.append(row)
            else:
                right_set = set(right.rows)
                rows = _dedupe([row for row in left.rows if row in right_set])
        elif node.op == "EXCEPT":
            if node.all:
                from collections import Counter

                counts = Counter(right.rows)
                rows = []
                for row in left.rows:
                    if counts.get(row, 0) > 0:
                        counts[row] -= 1
                    else:
                        rows.append(row)
            else:
                right_set = set(right.rows)
                rows = _dedupe([row for row in left.rows if row not in right_set])
        else:  # pragma: no cover
            raise ExecutionError(f"unknown set operation {node.op}")
        self._metrics.record(
            node.op.lower(),
            len(left.rows) + len(right.rows),
            len(rows),
            time.perf_counter() - start,
        )
        return Intermediate(left.labels, rows)


@dataclass
class _TailChain:
    """The canonical tail shape ``attach_tail`` produces, root to leaf:
    Limit? -> Distinct? -> Project -> Sort? -> Aggregate? -> child."""

    limit: Optional[LimitNode]
    distinct: Optional[DistinctNode]
    project: ProjectNode
    sort: Optional[SortNode]
    aggregate: Optional[AggregateNode]
    child: PlanNode


class ColumnarTailExecutor:
    """Batch-aware tail operators over a :class:`ColumnarIntermediate`.

    The tail is consumed in batches of ``rows_per_batch`` live rows:
    aggregation folds batch streams into per-group accumulators, DISTINCT
    keeps one seen-set across batches, and LIMIT stops pulling batches as
    soon as the cutoff is reached (slicing mid-batch). Operation labels
    and tuple counts match the row operators, so Fig.-3-style breakdowns
    compare across modes; only ``ExecutionMetrics.batches`` is new.
    """

    def __init__(self, metrics: ExecutionMetrics, rows_per_batch: int):
        self._metrics = metrics
        self.rows_per_batch = rows_per_batch
        metrics.rows_per_batch = rows_per_batch

    # ------------------------------------------------------------------ #
    @staticmethod
    def match(node: PlanNode) -> Optional[_TailChain]:
        """Recognise the canonical tail chain; None -> run row-wise."""
        limit = distinct = sort = aggregate = None
        if isinstance(node, LimitNode):
            limit = node
            node = node.child
        if isinstance(node, DistinctNode):
            distinct = node
            node = node.child
        if not isinstance(node, ProjectNode):
            return None
        project = node
        node = node.child
        if isinstance(node, SortNode):
            sort = node
            node = node.child
        if isinstance(node, AggregateNode):
            aggregate = node
            node = node.child
        return _TailChain(limit, distinct, project, sort, aggregate, node)

    # ------------------------------------------------------------------ #
    def run(self, chain: _TailChain, source: ColumnarIntermediate) -> Intermediate:
        if chain.aggregate is not None:
            source = self._aggregate(chain.aggregate, source)
        if chain.sort is not None:
            source = self._sort(chain.sort, source)
        labels: list[object] = [item.name for item in chain.project.items]
        rows = self._stream(chain, source)
        return Intermediate(labels, rows)

    # ------------------------------------------------------------------ #
    def _aggregate(
        self, node: AggregateNode, inter: ColumnarIntermediate
    ) -> ColumnarIntermediate:
        start = time.perf_counter()
        layout = inter.layout
        group_positions = [layout[attr] for attr in node.group_by]
        factories = [
            _columnar_accumulator(call, layout) for call in node.calls
        ]
        groups: dict[tuple, list] = {}
        rows_in = 0

        # fast path: grouped COUNT(*) folds to a pure counting pass
        counting_only = bool(group_positions) and all(
            mode == "count_star" for _, _, _, mode in factories
        )

        for batch in inter.iter_batches(self.rows_per_batch):
            self._metrics.batches += 1
            rows_in += len(batch)
            if group_positions:
                group_columns = [
                    [inter.columns[p][i] for i in batch] for p in group_positions
                ]
                keys: Sequence[tuple] = list(zip(*group_columns))
            else:
                keys = [()] * len(batch)
            if counting_only:
                for key in keys:
                    states = groups.get(key)
                    if states is None:
                        groups[key] = [[1] for _ in factories]
                    else:
                        for state in states:
                            state[0] += 1
                continue
            value_lists = []
            for _, _, _, mode in factories:
                if mode == "count_star":
                    value_lists.append(None)
                elif mode == "row":
                    value_lists.append(
                        [
                            tuple(column[i] for column in inter.columns)
                            for i in batch
                        ]
                    )
                else:
                    value_lists.append(
                        columnar_values(mode, layout, inter.columns, batch)
                    )
            if len(factories) == 1:
                # hoisted single-aggregate loop (no per-row zip dispatch)
                make, update = factories[0][0], factories[0][1]
                values = value_lists[0]
                for j, key in enumerate(keys):
                    states = groups.get(key)
                    if states is None:
                        states = [make()]
                        groups[key] = states
                    update(states[0], values[j] if values is not None else None)
                continue
            for j, key in enumerate(keys):
                states = groups.get(key)
                if states is None:
                    states = [make() for make, _, _, _ in factories]
                    groups[key] = states
                for state, (_, update, _, _), values in zip(
                    states, factories, value_lists
                ):
                    update(state, values[j] if values is not None else None)

        if not group_positions and not groups:
            # scalar aggregate over no rows still yields one group
            groups[()] = [make() for make, _, _, _ in factories]

        labels: list[object] = list(node.group_by) + list(node.calls)
        rows = [
            key
            + tuple(
                finalize(state)
                for state, (_, _, finalize, _) in zip(states, factories)
            )
            for key, states in groups.items()
        ]
        result = ColumnarIntermediate.from_rows(labels, rows)
        if node.having is not None:
            aggregate_values = {
                call: result.layout[call] for call in node.calls
            }
            predicate = compile_predicate(
                node.having, result.layout, aggregate_values
            )
            rows = [row for row in rows if predicate(row)]
            result = ColumnarIntermediate.from_rows(labels, rows)
        self._metrics.record(
            "aggregate", rows_in, len(rows), time.perf_counter() - start
        )
        return result

    # ------------------------------------------------------------------ #
    def _sort(
        self, node: SortNode, inter: ColumnarIntermediate
    ) -> ColumnarIntermediate:
        start = time.perf_counter()
        layout = inter.layout
        aggregate_values = {
            label: index
            for label, index in layout.items()
            if isinstance(label, ast.FunctionCall)
        }
        indices = list(inter.live)
        # stable sorts applied last-key-first, exactly like the row operator
        for order in reversed(node.order_by):
            values = columnar_values(
                order.expression, layout, inter.columns, indices, aggregate_values
            )
            ranks = sorted(
                range(len(indices)),
                key=lambda k: _sort_key(values[k]),
                reverse=not order.ascending,
            )
            indices = [indices[k] for k in ranks]
        self._metrics.record(
            "sort", len(indices), len(indices), time.perf_counter() - start
        )
        return ColumnarIntermediate(
            inter.labels, inter.columns, inter.count, sel=indices
        )

    # ------------------------------------------------------------------ #
    def _stream(self, chain: _TailChain, inter: ColumnarIntermediate) -> list[Row]:
        """Project -> distinct -> limit over the batch stream, with an
        early stop once LIMIT is satisfied mid-batch."""
        start = time.perf_counter()
        layout = inter.layout
        aggregate_values = {
            label: index
            for label, index in layout.items()
            if isinstance(label, ast.FunctionCall)
        }
        items = chain.project.items
        plain_positions: list[Optional[int]] = []
        for item in items:
            expr = item.expression
            if isinstance(expr, ast.ColumnRef):
                label = (
                    Attribute(expr.table, expr.name) if expr.table else expr.name
                )
                plain_positions.append(layout.get(label))
            else:
                plain_positions.append(None)

        offset = chain.limit.offset or 0 if chain.limit is not None else 0
        end: Optional[int] = None
        if chain.limit is not None and chain.limit.limit is not None:
            end = offset + chain.limit.limit

        seen: Optional[set] = set() if chain.distinct is not None else None
        out_rows: list[Row] = []
        project_in = project_out = distinct_out = position = 0
        project_seconds = distinct_seconds = 0.0
        stop = False

        for batch in inter.iter_batches(self.rows_per_batch):
            self._metrics.batches += 1
            project_in += len(batch)
            stage_start = time.perf_counter()
            columns = [
                inter.columns[position_fast]
                if position_fast is not None
                else None
                for position_fast in plain_positions
            ]
            gathered = [
                [column[i] for i in batch]
                if column is not None
                else columnar_values(
                    item.expression, layout, inter.columns, batch, aggregate_values
                )
                for column, item in zip(columns, items)
            ]
            rows: list[Row] = list(zip(*gathered)) if gathered else [()] * len(batch)
            project_out += len(rows)
            project_seconds += time.perf_counter() - stage_start

            if seen is not None:
                stage_start = time.perf_counter()
                fresh: list[Row] = []
                for row in rows:
                    if row not in seen:
                        seen.add(row)
                        fresh.append(row)
                rows = fresh
                distinct_out += len(rows)
                distinct_seconds += time.perf_counter() - stage_start

            if chain.limit is not None:
                for row in rows:
                    if end is not None and position >= end:
                        stop = True
                        break
                    if position >= offset:
                        out_rows.append(row)
                    position += 1
                if stop:
                    break
            else:
                out_rows.extend(rows)

        self._metrics.record("project", project_in, project_out, project_seconds)
        if chain.distinct is not None:
            self._metrics.record(
                "distinct", project_out, distinct_out, distinct_seconds
            )
        if chain.limit is not None:
            limit_in = distinct_out if chain.distinct is not None else project_out
            self._metrics.record("limit", limit_in, len(out_rows), 0.0)
        return out_rows


def _columnar_accumulator(call: ast.FunctionCall, layout: dict[object, int]):
    """Streaming accumulator for one aggregate call.

    Returns ``(make, update, finalize, mode)`` where ``mode`` selects the
    per-batch input: ``"count_star"`` (no argument; eligible for the
    counting fast path), ``"row"`` (full row tuples, for
    ``COUNT(DISTINCT *)``), or the argument expression itself. Finalised
    values match
    :meth:`PhysicalExecutor._compile_aggregate` exactly — same NULL
    handling and the same accumulation order for float sums.
    """
    if call.name == "COUNT" and isinstance(call.args[0], ast.Star):
        if call.distinct:
            return (set, lambda s, v: s.add(v), len, "row")
        return (
            lambda: [0],
            lambda s, v: s.__setitem__(0, s[0] + 1),
            lambda s: s[0],
            "count_star",
        )

    argument = call.args[0]
    name = call.name
    if name == "COUNT":
        if call.distinct:

            def update_count_distinct(s: set, v) -> None:
                if v is not None:
                    s.add(v)

            return (set, update_count_distinct, len, argument)

        def update_count(s: list, v) -> None:
            if v is not None:
                s[0] += 1

        return (lambda: [0], update_count, lambda s: s[0], argument)
    if name == "SUM":
        if call.distinct:

            def update_sum_distinct(s: set, v) -> None:
                if v is not None:
                    s.add(v)

            return (
                set,
                update_sum_distinct,
                lambda s: sum(s) if s else None,
                argument,
            )

        def update_sum(s: list, v) -> None:
            if v is not None:
                s[0] += v
                s[1] = True

        return (
            lambda: [0, False],
            update_sum,
            lambda s: s[0] if s[1] else None,
            argument,
        )
    if name == "AVG":
        if call.distinct:

            def update_avg_distinct(s: set, v) -> None:
                if v is not None:
                    s.add(v)

            return (
                set,
                update_avg_distinct,
                lambda s: sum(s) / len(s) if s else None,
                argument,
            )

        def update_avg(s: list, v) -> None:
            if v is not None:
                s[0] += v
                s[1] += 1

        return (
            lambda: [0, 0],
            update_avg,
            lambda s: s[0] / s[1] if s[1] else None,
            argument,
        )
    if name == "MIN":

        def update_min(s: list, v) -> None:
            if v is not None and (not s[1] or v < s[0]):
                s[0] = v
                s[1] = True

        return (
            lambda: [None, False],
            update_min,
            lambda s: s[0] if s[1] else None,
            argument,
        )
    if name == "MAX":

        def update_max(s: list, v) -> None:
            if v is not None and (not s[1] or v > s[0]):
                s[0] = v
                s[1] = True

        return (
            lambda: [None, False],
            update_max,
            lambda s: s[0] if s[1] else None,
            argument,
        )
    raise ExecutionError(f"unsupported aggregate {name}")  # pragma: no cover


def _dedupe(rows: list[Row]) -> list[Row]:
    seen: set[Row] = set()
    out: list[Row] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


def _sort_key(value: Any) -> tuple:
    """NULLs first on ascending order; values assumed type-homogeneous."""
    return (value is not None, value)
