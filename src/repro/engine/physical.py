"""Physical operators: interpret a logical plan over a Database.

Everything is materialised (lists of row tuples) — predictable, easy to
meter, and appropriate for an in-memory engine. Each operator records an
:class:`~repro.engine.metrics.OperationCost` so the Fig.-3-style analyzer
can break a query's cost down per operation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.normalize import Attribute
from repro.storage.database import Database
from repro.engine.expressions import compile_expression, compile_predicate
from repro.engine.logical import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    MaterializedNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SetOpNode,
    SortNode,
)
from repro.engine.metrics import ExecutionMetrics
from repro.engine.profiles import EngineProfile

Row = tuple


@dataclass
class Intermediate:
    """A materialised intermediate relation with labelled columns."""

    labels: list[object]  # Attribute | str | ast.FunctionCall
    rows: list[Row]
    _layout: Optional[dict[object, int]] = field(default=None, repr=False)

    @property
    def layout(self) -> dict[object, int]:
        if self._layout is None:
            self._layout = {label: i for i, label in enumerate(self.labels)}
        return self._layout


def _busy_work(row: Row, units: int) -> None:
    """Honest per-row overhead work for comparator profiles (see profiles.py)."""
    for _ in range(units):
        list(row)


class PhysicalExecutor:
    """Interprets logical plans against a database under a profile."""

    def __init__(
        self,
        database: Database,
        profile: EngineProfile,
        metrics: ExecutionMetrics,
    ):
        self._db = database
        self._profile = profile
        self._metrics = metrics

    # ------------------------------------------------------------------ #
    def run(self, node: PlanNode) -> Intermediate:
        if isinstance(node, ScanNode):
            return self._scan(node)
        if isinstance(node, FilterNode):
            return self._filter(node)
        if isinstance(node, JoinNode):
            return self._join(node)
        if isinstance(node, AggregateNode):
            return self._aggregate(node)
        if isinstance(node, ProjectNode):
            return self._project(node)
        if isinstance(node, DistinctNode):
            return self._distinct(node)
        if isinstance(node, SortNode):
            return self._sort(node)
        if isinstance(node, LimitNode):
            return self._limit(node)
        if isinstance(node, SetOpNode):
            return self._set_op(node)
        if isinstance(node, MaterializedNode):
            return Intermediate(list(node.labels), list(node.rows))
        raise ExecutionError(f"unknown plan node {node!r}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    def _scan(self, node: ScanNode) -> Intermediate:
        start = time.perf_counter()
        table = self._db.table(node.table_name)
        base_labels = [
            Attribute(node.binding, column) for column in table.schema.column_names
        ]
        base_layout = {label: i for i, label in enumerate(base_labels)}
        keep = table.schema.positions(node.columns)
        labels: list[object] = [Attribute(node.binding, c) for c in node.columns]
        overhead = self._profile.row_overhead

        predicate = (
            compile_predicate(node.predicate, base_layout)
            if node.predicate is not None
            else None
        )
        rows: list[Row] = []
        if overhead:
            for row in table.rows:
                _busy_work(row, overhead)
                if predicate is None or predicate(row):
                    rows.append(tuple(row[i] for i in keep))
        else:
            if predicate is None:
                rows = [tuple(row[i] for i in keep) for row in table.rows]
            else:
                rows = [
                    tuple(row[i] for i in keep)
                    for row in table.rows
                    if predicate(row)
                ]
        self._metrics.tuples_scanned += len(table)
        self._metrics.record(
            f"scan({node.table_name} as {node.binding})",
            len(table),
            len(rows),
            time.perf_counter() - start,
        )
        return Intermediate(labels, rows)

    def _filter(self, node: FilterNode) -> Intermediate:
        child = self.run(node.child)
        start = time.perf_counter()
        predicate = compile_predicate(node.predicate, child.layout)
        rows = [row for row in child.rows if predicate(row)]
        self._metrics.record(
            "filter", len(child.rows), len(rows), time.perf_counter() - start
        )
        return Intermediate(child.labels, rows)

    # ------------------------------------------------------------------ #
    def _join(self, node: JoinNode) -> Intermediate:
        left = self.run(node.left)
        right = self.run(node.right)
        start = time.perf_counter()
        labels = left.labels + right.labels

        if not node.pairs:
            rows = [l + r for l in left.rows for r in right.rows]
            algorithm = "cross"
        else:
            left_keys = [left.layout[a] for a, _ in node.pairs]
            right_keys = [right.layout[b] for _, b in node.pairs]
            algorithm = self._profile.join_algorithm
            if algorithm == "hash":
                rows = self._hash_join(left.rows, right.rows, left_keys, right_keys)
            elif algorithm == "sort_merge":
                rows = self._sort_merge_join(
                    left.rows, right.rows, left_keys, right_keys
                )
            else:
                rows = self._block_nested_join(
                    left.rows, right.rows, left_keys, right_keys
                )
        self._metrics.intermediate_rows += len(rows)
        self._metrics.record(
            f"join[{algorithm}]",
            len(left.rows) + len(right.rows),
            len(rows),
            time.perf_counter() - start,
        )
        return Intermediate(labels, rows)

    @staticmethod
    def _hash_join(
        left_rows: list[Row],
        right_rows: list[Row],
        left_keys: list[int],
        right_keys: list[int],
    ) -> list[Row]:
        # build on the smaller input
        if len(left_rows) <= len(right_rows):
            table: dict[tuple, list[Row]] = {}
            for row in left_rows:
                key = tuple(row[i] for i in left_keys)
                if None in key:
                    continue
                table.setdefault(key, []).append(row)
            out: list[Row] = []
            for row in right_rows:
                key = tuple(row[i] for i in right_keys)
                if None in key:
                    continue
                for match in table.get(key, ()):
                    out.append(match + row)
            return out
        table = {}
        for row in right_rows:
            key = tuple(row[i] for i in right_keys)
            if None in key:
                continue
            table.setdefault(key, []).append(row)
        out = []
        for row in left_rows:
            key = tuple(row[i] for i in left_keys)
            if None in key:
                continue
            for match in table.get(key, ()):
                out.append(row + match)
        return out

    @staticmethod
    def _sort_merge_join(
        left_rows: list[Row],
        right_rows: list[Row],
        left_keys: list[int],
        right_keys: list[int],
    ) -> list[Row]:
        def keyed(rows: list[Row], keys: list[int]) -> list[tuple[tuple, Row]]:
            out = []
            for row in rows:
                key = tuple(row[i] for i in keys)
                if None in key:
                    continue
                out.append((key, row))
            out.sort(key=lambda kr: kr[0])
            return out

        left_sorted = keyed(left_rows, left_keys)
        right_sorted = keyed(right_rows, right_keys)
        out: list[Row] = []
        i = j = 0
        while i < len(left_sorted) and j < len(right_sorted):
            lk = left_sorted[i][0]
            rk = right_sorted[j][0]
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                # gather the equal-key runs and emit their product
                i_end = i
                while i_end < len(left_sorted) and left_sorted[i_end][0] == lk:
                    i_end += 1
                j_end = j
                while j_end < len(right_sorted) and right_sorted[j_end][0] == rk:
                    j_end += 1
                for _, lrow in left_sorted[i:i_end]:
                    for _, rrow in right_sorted[j:j_end]:
                        out.append(lrow + rrow)
                i, j = i_end, j_end
        return out

    def _block_nested_join(
        self,
        left_rows: list[Row],
        right_rows: list[Row],
        left_keys: list[int],
        right_keys: list[int],
    ) -> list[Row]:
        block = self._profile.block_size
        out: list[Row] = []
        for offset in range(0, len(left_rows), block):
            chunk = left_rows[offset : offset + block]
            for rrow in right_rows:
                rkey = tuple(rrow[i] for i in right_keys)
                if None in rkey:
                    continue
                for lrow in chunk:
                    if tuple(lrow[i] for i in left_keys) == rkey:
                        out.append(lrow + rrow)
        return out

    # ------------------------------------------------------------------ #
    def _aggregate(self, node: AggregateNode) -> Intermediate:
        child = self.run(node.child)
        start = time.perf_counter()
        group_positions = [child.layout[attr] for attr in node.group_by]

        groups: dict[tuple, list[Row]] = {}
        if group_positions:
            for row in child.rows:
                key = tuple(row[i] for i in group_positions)
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = list(child.rows)  # scalar aggregate: one (maybe empty) group

        labels: list[object] = list(node.group_by) + list(node.calls)
        evaluators = [
            self._compile_aggregate(call, child.layout) for call in node.calls
        ]
        rows: list[Row] = []
        for key, members in groups.items():
            values = tuple(evaluate(members) for evaluate in evaluators)
            rows.append(key + values)

        result = Intermediate(labels, rows)
        if node.having is not None:
            aggregate_values = {
                call: result.layout[call] for call in node.calls
            }
            predicate = compile_predicate(
                node.having, result.layout, aggregate_values
            )
            result = Intermediate(labels, [r for r in result.rows if predicate(r)])
        self._metrics.record(
            "aggregate", len(child.rows), len(result.rows), time.perf_counter() - start
        )
        return result

    @staticmethod
    def _compile_aggregate(call: ast.FunctionCall, layout: dict[object, int]):
        """Return ``rows -> aggregate value`` for one call."""
        if call.name == "COUNT" and isinstance(call.args[0], ast.Star):
            if call.distinct:
                return lambda rows: len({tuple(r) for r in rows})
            return lambda rows: len(rows)

        argument = compile_expression(call.args[0], layout)

        def non_null(rows: list[Row]):
            for row in rows:
                value = argument(row)
                if value is not None:
                    yield value

        name = call.name
        distinct = call.distinct
        if name == "COUNT":
            if distinct:
                return lambda rows: len(set(non_null(rows)))
            return lambda rows: sum(1 for _ in non_null(rows))
        if name == "SUM":
            def agg_sum(rows: list[Row]):
                values = set(non_null(rows)) if distinct else list(non_null(rows))
                return sum(values) if values else None
            return agg_sum
        if name == "AVG":
            def agg_avg(rows: list[Row]):
                values = (
                    list(set(non_null(rows))) if distinct else list(non_null(rows))
                )
                return sum(values) / len(values) if values else None
            return agg_avg
        if name == "MIN":
            def agg_min(rows: list[Row]):
                values = list(non_null(rows))
                return min(values) if values else None
            return agg_min
        if name == "MAX":
            def agg_max(rows: list[Row]):
                values = list(non_null(rows))
                return max(values) if values else None
            return agg_max
        raise ExecutionError(f"unsupported aggregate {name}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    def _project(self, node: ProjectNode) -> Intermediate:
        child = self.run(node.child)
        start = time.perf_counter()
        aggregate_values = {
            label: index
            for label, index in child.layout.items()
            if isinstance(label, ast.FunctionCall)
        }
        evaluators = [
            compile_expression(item.expression, child.layout, aggregate_values)
            for item in node.items
        ]
        labels: list[object] = [item.name for item in node.items]
        rows = [tuple(e(row) for e in evaluators) for row in child.rows]
        self._metrics.record(
            "project", len(child.rows), len(rows), time.perf_counter() - start
        )
        return Intermediate(labels, rows)

    def _distinct(self, node: DistinctNode) -> Intermediate:
        child = self.run(node.child)
        start = time.perf_counter()
        seen: set[Row] = set()
        rows: list[Row] = []
        for row in child.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        self._metrics.record(
            "distinct", len(child.rows), len(rows), time.perf_counter() - start
        )
        return Intermediate(child.labels, rows)

    def _sort(self, node: SortNode) -> Intermediate:
        child = self.run(node.child)
        start = time.perf_counter()
        aggregate_values = {
            label: index
            for label, index in child.layout.items()
            if isinstance(label, ast.FunctionCall)
        }
        rows = list(child.rows)
        # stable sorts applied last-key-first
        for order in reversed(node.order_by):
            evaluator = compile_expression(
                order.expression, child.layout, aggregate_values
            )
            rows.sort(
                key=lambda row: _sort_key(evaluator(row)),
                reverse=not order.ascending,
            )
        self._metrics.record(
            "sort", len(child.rows), len(rows), time.perf_counter() - start
        )
        return Intermediate(child.labels, rows)

    def _limit(self, node: LimitNode) -> Intermediate:
        child = self.run(node.child)
        offset = node.offset or 0
        end = offset + node.limit if node.limit is not None else None
        rows = child.rows[offset:end]
        self._metrics.record("limit", len(child.rows), len(rows), 0.0)
        return Intermediate(child.labels, rows)

    def _set_op(self, node: SetOpNode) -> Intermediate:
        left = self.run(node.left)
        right = self.run(node.right)
        start = time.perf_counter()
        if len(left.labels) != len(right.labels):
            raise ExecutionError(
                "set operation arguments have different numbers of columns"
            )
        if node.op == "UNION":
            if node.all:
                rows = left.rows + right.rows
            else:
                rows = _dedupe(left.rows + right.rows)
        elif node.op == "INTERSECT":
            if node.all:
                from collections import Counter

                counts = Counter(right.rows)
                rows = []
                for row in left.rows:
                    if counts.get(row, 0) > 0:
                        counts[row] -= 1
                        rows.append(row)
            else:
                right_set = set(right.rows)
                rows = _dedupe([row for row in left.rows if row in right_set])
        elif node.op == "EXCEPT":
            if node.all:
                from collections import Counter

                counts = Counter(right.rows)
                rows = []
                for row in left.rows:
                    if counts.get(row, 0) > 0:
                        counts[row] -= 1
                    else:
                        rows.append(row)
            else:
                right_set = set(right.rows)
                rows = _dedupe([row for row in left.rows if row not in right_set])
        else:  # pragma: no cover
            raise ExecutionError(f"unknown set operation {node.op}")
        self._metrics.record(
            node.op.lower(),
            len(left.rows) + len(right.rows),
            len(rows),
            time.perf_counter() - start,
        )
        return Intermediate(left.labels, rows)


def _dedupe(rows: list[Row]) -> list[Row]:
    seen: set[Row] = set()
    out: list[Row] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


def _sort_key(value: Any) -> tuple:
    """NULLs first on ascending order; values assumed type-homogeneous."""
    return (value is not None, value)
