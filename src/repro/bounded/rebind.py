"""Binding-aware plan rebinding: reuse a pinned bounded plan across
bindings without re-running the BE Checker.

BEAS's contract (§3 of the paper) is that a query is *decided once*
against the access schema and then executed within bounds many times.
The checker's verdict and the deduced bound arithmetic depend on the
query *shape* — which equality classes carry constants and how many
values each class enumerates — never on the constant values themselves:
equivalence under the registered access constraints is preserved by any
substitution that keeps the per-class constant arity (the same
equivalence-under-dependencies reasoning as query equivalence under
dependencies à la Chirkova & Genesereth). So a
:class:`~repro.bounded.coverage.CoverageDecision` pinned for one binding
of a prepared template can be **rebound** for another binding of equal
arity by patching the plan's constant key parts directly:

* every ``fetch`` op's ``KeyPart(source="const")`` tuples,
* every ``selection`` op's value tuple,
* the canonical query's per-attribute selections (consumed by the tail
  operators),

leaving the deduced bounds — and therefore budget feasibility — exactly
as pinned. The executor then presents the same *number* of keys per
fetch in the same canonical order, so ``tuples_fetched`` accounting and
bound enforcement are identical to a freshly decided plan; the
rebinding differential suite (``tests/test_rebinding_differential.py``)
locks rebound-vs-fresh equality down to exact row order and per-fetch-op
metrics, in the spirit of bag-semantics equivalence checking (Zhou et
al., PAPERS.md).

The rebind itself is built to be orders of magnitude cheaper than a
checker run (``benchmarks/bench_rebind.py`` asserts >= 5x across a
binding stream): :func:`build_rebind_template` precomputes, once per
(template, arity signature), which plan operators draw constants from
which equality class and which classes each slot feeds, so a rebind
only touches the classes the new binding actually changes.

Guards — a rebind is refused (``None``; the caller falls back to a full
BE Checker run) whenever the new binding could change the decision:

* the serving layer keys pinned templates by an **arity signature**
  (slot names, IN-list arities, per-value type classes), so a binding
  that changes a slot's arity, NULL-ness, or type class never reaches a
  mismatched template in the first place;
* the rebinder re-derives the per-equality-class constant tuples
  (class members intersect their values) and refuses when any class's
  *merged* arity differs from the pinned plan's — two slots joined into
  one class can intersect differently even at equal per-slot arity;
* only covered single-block decisions (a :class:`BoundedPlan`) rebind;
  set operations and not-covered verdicts always re-check.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Optional

from repro.bounded.coverage import CoverageDecision
from repro.bounded.plan import BoundedPlan, FetchOp, KeyPart
from repro.bounded.planner import class_constant_map, equality_classes
from repro.sql.normalize import Attribute, ConjunctiveQuery


def _canonical_selection(values) -> tuple:
    """Canonicalise one selection's values exactly as the normalizer does
    (``sql.normalize._intersect_selection``): dedupe, then sort by
    (type name, value) so the rebound plan enumerates keys in the same
    order a fresh normalize would."""
    return tuple(sorted(set(values), key=lambda v: (str(type(v)), v)))


class RebindTemplate:
    """One pinned decision plus a precomputed constant-patch plan.

    Built once per (template fingerprint, arity signature) by
    :func:`build_rebind_template`; every equal-signature binding then
    pays only the patch in :meth:`rebind` — no parse, no normalize, no
    plan search, and no work on equality classes the binding leaves
    untouched.
    """

    __slots__ = (
        "decision",
        "plan",
        "pinned_classes",
        "_sel_contributors",
        "_roots_by_slot",
        "_sel_attrs_by_root",
        "_fetch_patches",
        "_select_patches",
    )

    def __init__(self, decision: CoverageDecision):
        self.decision = decision
        plan = decision.plan
        assert isinstance(plan, BoundedPlan)
        self.plan: BoundedPlan = plan
        cq = plan.cq
        uf = equality_classes(cq)
        self.pinned_classes = class_constant_map(cq, uf)

        # per class root, the ordered contributors to its merged constant
        # tuple: (slot name or None, the template's own value tuple)
        self._sel_contributors: dict[Attribute, list[tuple[Optional[str], tuple]]] = {}
        self._roots_by_slot: dict[str, set[Attribute]] = {}
        self._sel_attrs_by_root: dict[Attribute, list[Attribute]] = {}
        for attr, values in cq.selections.items():
            root = uf.find(attr)
            name = str(attr)
            self._sel_contributors.setdefault(root, []).append((name, values))
            self._roots_by_slot.setdefault(name, set()).add(root)
            self._sel_attrs_by_root.setdefault(root, []).append(attr)

        # the patch plan: which ops draw constants from which class
        self._fetch_patches: list[tuple[int, list[tuple[int, Attribute]]]] = []
        self._select_patches: list[tuple[int, Attribute]] = []
        for index, op in enumerate(plan.ops):
            if isinstance(op, FetchOp):
                const_parts = [
                    (i, uf.find(Attribute(op.binding, part.attribute)))
                    for i, part in enumerate(op.key_parts)
                    if part.source == "const"
                ]
                if const_parts:
                    self._fetch_patches.append((index, const_parts))
            elif op.kind == "selection":
                self._select_patches.append((index, uf.find(op.column)))

    # ------------------------------------------------------------------ #
    def rebind(
        self, overrides: Mapping[str, tuple]
    ) -> Optional[CoverageDecision]:
        """The pinned decision patched for ``overrides``, or ``None``
        when a guard demands a full re-check.

        ``overrides`` maps resolved slot names to canonical value tuples
        (``repro.serving.params.resolve_overrides`` output). Slots not
        overridden keep the template's own constants.
        """
        # which equality classes does this binding actually touch?
        affected: set[Attribute] = set()
        for name in overrides:
            roots = self._roots_by_slot.get(name)
            if roots is None:
                return None  # unknown slot: shape mismatch, re-check
            affected.update(roots)
        if not affected:
            return self.decision  # the template's own constants

        # re-derive the merged constants of the touched classes only;
        # any merged-arity change would change the deduced bounds, so it
        # forces a full re-check (the guard)
        class_tuples: dict[Attribute, tuple] = {}
        new_attr_values: dict[Attribute, tuple] = {}
        for root in affected:
            merged: Optional[tuple] = None
            for attr, (name, template_values) in zip(
                self._sel_attrs_by_root[root], self._sel_contributors[root]
            ):
                fresh = overrides.get(name)
                values = (
                    _canonical_selection(fresh)
                    if fresh is not None
                    else template_values
                )
                new_attr_values[attr] = values
                if merged is None:
                    merged = values
                else:
                    existing = set(merged)
                    merged = tuple(v for v in values if v in existing)
            assert merged is not None
            if len(merged) != len(self.pinned_classes[root]):
                return None  # merged arity changed: bounds would move
            class_tuples[root] = merged

        # patch the operator pipeline (untouched ops are shared)
        plan = self.plan
        new_ops = list(plan.ops)
        for index, const_parts in self._fetch_patches:
            op = plan.ops[index]
            if not any(root in class_tuples for _, root in const_parts):
                continue
            parts = list(op.key_parts)
            for i, root in const_parts:
                values = class_tuples.get(root)
                if values is not None:
                    parts[i] = KeyPart(
                        parts[i].attribute, "const", values=values
                    )
            new_ops[index] = replace(op, key_parts=parts)
        for index, root in self._select_patches:
            values = class_tuples.get(root)
            if values is not None:
                new_ops[index] = replace(plan.ops[index], values=values)

        # patch the canonical query's selections (tail-operator input)
        new_selections = dict(plan.cq.selections)
        new_selections.update(new_attr_values)
        new_cq = replace(plan.cq, selections=new_selections)
        return replace(self.decision, plan=plan.rebound(new_ops, new_cq))


def build_rebind_template(
    decision: CoverageDecision, overrides: Mapping[str, tuple]
) -> Optional[RebindTemplate]:
    """A :class:`RebindTemplate` for a freshly pinned decision, or
    ``None`` when the decision cannot soundly rebind (not covered, a set
    operation, or an override that does not surface as a selection).

    ``overrides`` is the binding the decision was pinned under; its keys
    delimit which selections future equal-signature bindings may patch.
    """
    if not decision.covered or not isinstance(decision.plan, BoundedPlan):
        return None
    cq: ConjunctiveQuery = decision.plan.cq
    selection_names = {str(attr) for attr in cq.selections}
    for name in overrides:
        if name not in selection_names:
            # the slot's conjunct did not normalize to a selection (e.g.
            # it was absorbed elsewhere): patching would be unsound
            return None
    return RebindTemplate(decision)
