"""Subsumption-based result reuse: answer a query from a cached superset.

The serving layer's result cache hits only on *presentation-equal*
queries (``sql/fingerprint`` canonicalises AND/IN order and BETWEEN
spelling, nothing deeper). Dashboards, however, issue sliding-window
variants of one template — ``date >= d1 AND date <= d2`` with moving
endpoints — and the §3 bound arithmetic guarantees that a cached bounded
answer for a *wider* predicate region is a superset of every tighter
variant's answer. This module supplies the containment machinery:

* :func:`summarize_statement` extracts a :class:`QuerySummary` from a
  SELECT block — a per-attribute constraint map (point/IN value sets and
  closed/open range intervals over literal constants, the predicate
  lattice over the same equality conjuncts ``bounded/rebind.py`` patches)
  plus the residual conjuncts by canonical text, keyed under a *shape
  key* that identifies the statement with its WHERE clause erased;
* :func:`subsumes` decides whether a cached summary's predicate region
  contains a new summary's (interval containment for ranges, subset for
  IN-lists/point constants, conjunct-superset for residual selections)
  and, when it does, produces the :class:`RefilterPlan` of *delta*
  predicates distinguishing the two;
* :func:`apply_refilter` replays the delta over the cached rows,
  preserving their order.

Soundness rules (hard refusals, never best-effort):

* **Shapes.** Aggregates, GROUP BY/HAVING, DISTINCT, LIMIT/OFFSET and
  set operations are never summarised: post-filtering a superset answer
  does not commute with duplicate elimination, grouping, or row-count
  truncation.
* **NULL constants.** A summary containing a NULL constant in an
  IN-list or range slot is never judged a subset *or* superset of
  anything (UNKNOWN poisons containment in both directions — mirroring
  the ``_KeyPlan`` const-combo skip in the bounded executor); the
  summary is marked non-reusable at extraction time and the comparators
  guard again defensively.
* **Incomparable constants.** Any ``TypeError`` while comparing bounds
  (``1`` vs ``'1'``) refuses rather than guessing an order.
* **Column visibility.** Every delta predicate must resolve to exactly
  one output column of the cached answer (by select-item match, or by
  name under a star over a single-occurrence FROM); multi-occurrence
  statements require qualified references, and a label that is missing
  or duplicated in the cached column list refuses at refilter time.

Row-order preservation: a bounded execution enumerates fetch keys in
canonical sorted order and applies stable sorts for ORDER BY, and
filtering a row stream commutes with both — so the re-filtered cached
rows are exactly the rows (and the order) a fresh bounded execution of
the tighter query would produce. The subsumption differential suite
asserts this equality row-for-row.

Filter semantics follow the engine's three-valued logic: a cached row is
kept only when every delta predicate is exactly ``True`` — a NULL row
value fails membership and interval checks just as it fails the fresh
execution's WHERE.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Hashable, Iterable, Optional

from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.fingerprint import canonical_statement
from repro.sql.printer import expression_to_sql, to_sql

#: Candidate summaries kept per shape key in :class:`SubsumptionIndex`.
#: Candidates are references into the result cache (a few hundred bytes
#: each) and a probe's containment check is a dict walk, so the cap
#: bounds probe latency, not memory: it must comfortably exceed the
#: number of concurrently-live broad templates per shape (e.g. one per
#: dashboard panel in a sliding-window workload).
DEFAULT_CANDIDATES_PER_SHAPE = 32


# --------------------------------------------------------------------------- #
# intervals
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Interval:
    """A one-dimensional range constraint over literal bounds.

    ``None`` for an endpoint means unbounded on that side (it is *not* a
    NULL constant — NULL-bounded conjuncts never build an Interval; see
    the module doc's NULL rule).
    """

    low: Any = None
    low_inclusive: bool = True
    high: Any = None
    high_inclusive: bool = True

    def admits(self, value: Any) -> bool:
        """Three-valued membership collapsed for filter position: NULL
        row values are excluded, exactly as the engine's WHERE does."""
        if value is None:
            return False
        if self.low is not None:
            if value < self.low:
                return False
            if value == self.low and not self.low_inclusive:
                return False
        if self.high is not None:
            if value > self.high:
                return False
            if value == self.high and not self.high_inclusive:
                return False
        return True

    def contains(self, other: "Interval") -> bool:
        """Region containment: every point admitted by ``other`` is
        admitted by ``self``. Raises ``TypeError`` on incomparable
        bounds (the caller refuses)."""
        if self.low is not None:
            if other.low is None:
                return False
            if other.low < self.low:
                return False
            if (
                other.low == self.low
                and other.low_inclusive
                and not self.low_inclusive
            ):
                return False
        if self.high is not None:
            if other.high is None:
                return False
            if other.high > self.high:
                return False
            if (
                other.high == self.high
                and other.high_inclusive
                and not self.high_inclusive
            ):
                return False
        return True

    def intersect(self, other: "Interval") -> "Interval":
        """The conjunction of two range conjuncts on one attribute."""
        low, low_inc = self.low, self.low_inclusive
        if other.low is not None and (
            low is None
            or other.low > low
            or (other.low == low and not other.low_inclusive)
        ):
            low, low_inc = other.low, other.low_inclusive
        high, high_inc = self.high, self.high_inclusive
        if other.high is not None and (
            high is None
            or other.high < high
            or (other.high == high and not other.high_inclusive)
        ):
            high, high_inc = other.high, other.high_inclusive
        return Interval(low, low_inc, high, high_inc)

    def describe(self) -> str:
        left = "(-inf" if self.low is None else (
            ("[" if self.low_inclusive else "(") + repr(self.low)
        )
        right = "+inf)" if self.high is None else (
            repr(self.high) + ("]" if self.high_inclusive else ")")
        )
        return f"{left}, {right}"


@dataclass(frozen=True)
class AttrConstraint:
    """The conjunction of the point/IN and range conjuncts on one
    attribute, plus the output-column label delta filters need.

    ``values`` is the intersection of the attribute's ``=``/``IN``
    literal sets (``None`` when no such conjunct exists); ``interval``
    the intersection of its range conjuncts. ``label`` is the cached
    answer's output column carrying the attribute (``None`` when it is
    not visible — such a constraint can be *matched* but never applied
    as a delta filter).
    """

    values: Optional[frozenset] = None
    interval: Optional[Interval] = None
    label: Optional[str] = None

    def admits(self, value: Any) -> bool:
        if value is None:
            return False
        if self.values is not None and value not in self.values:
            return False
        if self.interval is not None and not self.interval.admits(value):
            return False
        return True

    def same_region(self, other: "AttrConstraint") -> bool:
        return self.values == other.values and self.interval == other.interval


# --------------------------------------------------------------------------- #
# summaries
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ResidualConjunct:
    """One residual WHERE conjunct: canonical text + the expression with
    its column references rewritten to output labels (``None`` when some
    reference is not visible in the output — the conjunct can then be
    matched by text but never applied as a delta filter)."""

    text: str
    labeled: Optional[ast.Expression]


@dataclass(frozen=True)
class QuerySummary:
    """The predicate lattice entry for one SELECT block.

    ``reusable`` is False when the statement's shape or constants make
    post-filtering unsound; ``refusal`` names the rule that fired.
    """

    shape_key: str
    constraints: "OrderedDictType"
    residuals: tuple[ResidualConjunct, ...]
    reusable: bool
    refusal: Optional[str] = None

    def residual_texts(self) -> frozenset[str]:
        return frozenset(r.text for r in self.residuals)


# typing alias kept simple: attr text -> AttrConstraint, insertion ordered
OrderedDictType = "OrderedDict[str, AttrConstraint]"


def _refused(shape_key: str, reason: str) -> QuerySummary:
    return QuerySummary(
        shape_key=shape_key,
        constraints=OrderedDict(),
        residuals=(),
        reusable=False,
        refusal=reason,
    )


def shape_key_of(statement: ast.SelectStatement) -> str:
    """Hash of the canonical statement with its WHERE clause erased.

    Two queries share a shape key exactly when they differ only in their
    WHERE clause — same FROM, select list, ORDER BY and decoration — so
    every sliding-window variant of a template (prepared or spelled as
    raw SQL) probes one candidate bucket.
    """
    stripped = replace(statement, where=None)
    digest = hashlib.sha256(to_sql(stripped).encode("utf-8")).hexdigest()
    return f"shape:{digest}"


def _occurrence_count(statement: ast.SelectStatement) -> int:
    count = 0

    def visit(item: ast.FromItem) -> None:
        nonlocal count
        if isinstance(item, ast.TableRef):
            count += 1
        else:
            visit(item.left)
            visit(item.right)

    for item in statement.from_items:
        visit(item)
    return count


def _output_label(
    statement: ast.SelectStatement,
    ref: ast.ColumnRef,
    occurrences: int,
) -> Optional[str]:
    """The cached answer's output column carrying ``ref``, or ``None``.

    Conservative on purpose: with more than one FROM occurrence an
    unqualified reference is refused outright (the fresh path would
    raise AmbiguousColumnError for a genuinely ambiguous name, and a
    subsumed answer must never out-run that error), and a reference is
    accepted only via an exact select-item column match or a star item
    covering its table. Ambiguity across the *actual* column list is
    re-checked at refilter time against the cached entry's columns.
    """
    if ref.table is None and occurrences > 1:
        return None
    labels: set[str] = set()
    star_match = False
    for item in statement.items:
        expr = item.expression
        if isinstance(expr, ast.Star):
            if (
                expr.table is None
                or ref.table is None
                or expr.table == ref.table
            ):
                star_match = True
            continue
        if isinstance(expr, ast.ColumnRef) and expr.name == ref.name:
            if (
                ref.table is not None
                and expr.table is not None
                and expr.table != ref.table
            ):
                continue
            labels.add(item.alias or expr.name)
    if len(labels) == 1:
        return next(iter(labels))
    if not labels and star_match:
        return ref.name
    return None


def _label_residual(
    statement: ast.SelectStatement,
    expr: ast.Expression,
    occurrences: int,
) -> Optional[ast.Expression]:
    """Rewrite every ColumnRef in ``expr`` to its bare output label, so
    the conjunct compiles against a ``{label: index}`` row layout.
    Returns ``None`` when any reference is not visible in the output."""
    if isinstance(expr, ast.ColumnRef):
        label = _output_label(statement, expr, occurrences)
        if label is None:
            return None
        return ast.ColumnRef(label)
    if isinstance(expr, (ast.Literal, ast.Star)):
        return expr
    if isinstance(expr, ast.BinaryOp):
        left = _label_residual(statement, expr.left, occurrences)
        right = _label_residual(statement, expr.right, occurrences)
        if left is None or right is None:
            return None
        return ast.BinaryOp(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        operand = _label_residual(statement, expr.operand, occurrences)
        return None if operand is None else ast.UnaryOp(expr.op, operand)
    if isinstance(expr, ast.InList):
        operand = _label_residual(statement, expr.operand, occurrences)
        if operand is None:
            return None
        items = []
        for item in expr.items:
            labeled = _label_residual(statement, item, occurrences)
            if labeled is None:
                return None
            items.append(labeled)
        return ast.InList(operand, tuple(items), expr.negated)
    if isinstance(expr, ast.Between):
        parts = [
            _label_residual(statement, part, occurrences)
            for part in (expr.operand, expr.low, expr.high)
        ]
        if any(part is None for part in parts):
            return None
        return ast.Between(parts[0], parts[1], parts[2], expr.negated)
    if isinstance(expr, ast.Like):
        operand = _label_residual(statement, expr.operand, occurrences)
        pattern = _label_residual(statement, expr.pattern, occurrences)
        if operand is None or pattern is None:
            return None
        return ast.Like(operand, pattern, expr.negated)
    if isinstance(expr, ast.IsNull):
        operand = _label_residual(statement, expr.operand, occurrences)
        return None if operand is None else ast.IsNull(operand, expr.negated)
    return None  # FunctionCall & anything newer: refuse (aggregates etc.)


_RANGE_OPS = {"<": False, "<=": True, ">": False, ">=": True}


def summarize_statement(statement: ast.Statement) -> QuerySummary:
    """Extract the :class:`QuerySummary` for one statement.

    Always returns a summary carrying the shape key; ``reusable`` is
    False (with ``refusal`` set) for shapes where post-filtering a
    superset answer is unsound.
    """
    if isinstance(statement, ast.SetOperation):
        return _refused("shape:set-operation", "set-operation")
    statement = canonical_statement(statement)
    shape_key = shape_key_of(statement)
    if statement.distinct:
        return _refused(shape_key, "distinct")
    if statement.group_by or statement.having is not None:
        return _refused(shape_key, "group-by")
    if any(
        not isinstance(item.expression, ast.Star)
        and ast.contains_aggregate(item.expression)
        for item in statement.items
    ):
        return _refused(shape_key, "aggregate")
    if statement.limit is not None or statement.offset is not None:
        return _refused(shape_key, "limit-offset")

    occurrences = _occurrence_count(statement)
    constraints: OrderedDict[str, AttrConstraint] = OrderedDict()
    residuals: list[ResidualConjunct] = []

    def merge(attr_key: str, label: Optional[str], *,
              values: Optional[frozenset] = None,
              interval: Optional[Interval] = None) -> Optional[str]:
        existing = constraints.get(
            attr_key, AttrConstraint(label=label)
        )
        merged_values = existing.values
        if values is not None:
            merged_values = (
                values if merged_values is None else merged_values & values
            )
        merged_interval = existing.interval
        if interval is not None:
            try:
                merged_interval = (
                    interval
                    if merged_interval is None
                    else merged_interval.intersect(interval)
                )
            except TypeError:
                return "incomparable-bounds"
        constraints[attr_key] = AttrConstraint(
            values=merged_values,
            interval=merged_interval,
            label=existing.label if existing.label is not None else label,
        )
        return None

    for conjunct in ast.conjuncts(statement.where):
        classified = _classify_conjunct(conjunct)
        if classified == "null-constant":
            return _refused(shape_key, "null-constant")
        if classified is None:
            text = expression_to_sql(conjunct)
            residuals.append(
                ResidualConjunct(
                    text=text,
                    labeled=_label_residual(statement, conjunct, occurrences),
                )
            )
            continue
        ref, values, interval = classified
        label = _output_label(statement, ref, occurrences)
        error = merge(
            str(ref), label, values=values, interval=interval
        )
        if error is not None:
            return _refused(shape_key, error)

    return QuerySummary(
        shape_key=shape_key,
        constraints=constraints,
        residuals=tuple(residuals),
        reusable=True,
    )


def _classify_conjunct(conjunct: ast.Expression):
    """One WHERE conjunct into the lattice's vocabulary.

    Returns ``(ref, values, interval)`` for a point/IN/range conjunct
    over a column and literals, the string ``"null-constant"`` when a
    NULL constant poisons such a slot (satellite-2 rule: never judged
    subset/superset in either direction), or ``None`` for a residual.
    """
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op in ast.COMPARISONS:
        left, right = conjunct.left, conjunct.right
        op = conjunct.op
        if isinstance(left, ast.Literal) and isinstance(right, ast.ColumnRef):
            # flip so the column is on the left: 5 > x  ==  x < 5
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            left, right = right, left
            op = flipped.get(op, op)
        if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
            value = right.value
            # beaslint: ok(null-guard) - op is a parser operator token ("=", "<", ...), never a row value
            if op == "=":
                if value is None:
                    return "null-constant"
                return left, frozenset([value]), None
            if op in _RANGE_OPS:
                if value is None:
                    return "null-constant"
                inclusive = _RANGE_OPS[op]
                if op in ("<", "<="):
                    return left, None, Interval(
                        high=value, high_inclusive=inclusive
                    )
                return left, None, Interval(
                    low=value, low_inclusive=inclusive
                )
        return None
    if isinstance(conjunct, ast.InList) and not conjunct.negated:
        if isinstance(conjunct.operand, ast.ColumnRef) and all(
            isinstance(item, ast.Literal) for item in conjunct.items
        ):
            values = [item.value for item in conjunct.items]
            if any(v is None for v in values):
                return "null-constant"
            return conjunct.operand, frozenset(values), None
    return None


# --------------------------------------------------------------------------- #
# containment
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RefilterPlan:
    """The delta between a cached superset and a tighter query: per-row
    checks to replay over the cached rows (order-preserving)."""

    constraint_filters: tuple[tuple[str, AttrConstraint], ...]
    residual_filters: tuple[ast.Expression, ...]

    @property
    def is_identity(self) -> bool:
        return not self.constraint_filters and not self.residual_filters


def subsumes(
    cached: QuerySummary, new: QuerySummary
) -> Optional[RefilterPlan]:
    """Decide whether ``cached``'s predicate region contains ``new``'s.

    Returns the :class:`RefilterPlan` reproducing ``new``'s answer from
    the cached rows, or ``None`` (refusal). Only summaries with equal
    shape keys are comparable; callers index candidates by shape key.
    """
    if not cached.reusable or not new.reusable:
        return None
    if cached.shape_key != new.shape_key:
        return None

    # residual conjuncts: the cached set must be a subset of the new set
    # (every predicate the cached answer already applied is also required
    # by the new query); the extras are delta filters
    cached_texts = cached.residual_texts()
    new_texts = new.residual_texts()
    if not cached_texts <= new_texts:
        return None
    residual_filters: list[ast.Expression] = []
    for residual in new.residuals:
        if residual.text in cached_texts:
            continue
        if residual.labeled is None:
            return None  # delta conjunct not evaluable over the output
        residual_filters.append(residual.labeled)

    constraint_filters: list[tuple[str, AttrConstraint]] = []
    try:
        for attr_key, cached_constraint in cached.constraints.items():
            if _constraint_poisoned(cached_constraint):
                return None
            new_constraint = new.constraints.get(attr_key)
            if new_constraint is None:
                # the new query is *weaker* on this attribute: its region
                # is unbounded there, so the cached rows cannot cover it
                return None
        for attr_key, new_constraint in new.constraints.items():
            if _constraint_poisoned(new_constraint):
                return None
            cached_constraint = cached.constraints.get(attr_key)
            if cached_constraint is None:
                # unconstrained in the cached query: pure delta
                if new_constraint.label is None:
                    return None
                constraint_filters.append((new_constraint.label, new_constraint))
                continue
            if not _region_contains(cached_constraint, new_constraint):
                return None
            if new_constraint.same_region(cached_constraint):
                continue  # identical predicate: nothing to replay
            if new_constraint.label is None:
                return None
            constraint_filters.append((new_constraint.label, new_constraint))
    except TypeError:
        return None  # incomparable constants: refuse, never guess

    return RefilterPlan(
        constraint_filters=tuple(constraint_filters),
        residual_filters=tuple(residual_filters),
    )


def _constraint_poisoned(constraint: AttrConstraint) -> bool:
    """Defensive satellite-2 guard at comparator level (extraction
    already refuses NULL constants, but summaries can be constructed
    directly — e.g. by tests or future callers)."""
    # an Interval endpoint of None means "unbounded", never NULL — NULL
    # bounds are refused before an Interval is ever built — so only the
    # value sets can smuggle a NULL through direct construction.
    return constraint.values is not None and any(
        value is None for value in constraint.values
    )


def _region_contains(cached: AttrConstraint, new: AttrConstraint) -> bool:
    """Is every value admitted by ``new`` admitted by ``cached``?

    May raise ``TypeError`` on incomparable constants (caller refuses).
    """
    if new.values is not None:
        # finite candidate set: check each value that new actually admits
        return all(
            cached.admits(value)
            for value in new.values
            if new.interval is None or new.interval.admits(value)
        )
    # new is interval-only (an infinite region)
    if cached.values is not None:
        return False  # a finite set never covers an interval region
    if cached.interval is None:
        return True  # cached unconstrained (structurally unreachable)
    if new.interval is None:
        return False
    return cached.interval.contains(new.interval)


# --------------------------------------------------------------------------- #
# refiltering
# --------------------------------------------------------------------------- #
def apply_refilter(
    plan: RefilterPlan,
    columns: Iterable[str],
    rows: Iterable[tuple],
) -> Optional[list[tuple]]:
    """Replay ``plan`` over cached rows, preserving their order.

    Returns ``None`` when a delta label is missing from — or duplicated
    in — the cached column list (refusal; the caller falls through to a
    fresh execution). Residual conjuncts are compiled through the
    engine's expression compiler, so their NULL semantics are the
    engine's own.
    """
    column_list = list(columns)
    layout: dict[object, int] = {}
    duplicates: set[str] = set()
    for index, name in enumerate(column_list):
        if name in layout:
            duplicates.add(name)
        else:
            layout[name] = index

    checks: list = []
    for label, constraint in plan.constraint_filters:
        if label in duplicates or label not in layout:
            return None
        index = layout[label]
        if constraint.values is not None and constraint.interval is None:
            # sound without a None guard: poisoned value sets (ones
            # containing None) are refused before a plan is built, so
            # a NULL row value simply fails the membership test
            checks.append(
                lambda row, i=index, s=constraint.values: row[i] in s
            )
        elif constraint.interval is not None and constraint.values is None:
            checks.append(_compile_interval_check(index, constraint.interval))
        else:
            checks.append(
                lambda row, i=index, c=constraint: c.admits(row[i])
            )
    if plan.residual_filters:
        from repro.engine.expressions import compile_expression

        for expr in plan.residual_filters:
            for ref in ast.column_refs(expr):
                if ref.name in duplicates or ref.name not in layout:
                    return None
            try:
                evaluator = compile_expression(expr, layout)
            except ExecutionError:
                return None  # outside the compilable fragment: refuse
            checks.append(
                lambda row, e=evaluator: e(row) is True
            )

    if not checks:
        return list(rows)
    out: list[tuple] = []
    try:
        if len(checks) == 1:
            check = checks[0]
            for row in rows:
                if check(row):
                    out.append(row)
        else:
            for row in rows:
                for check in checks:
                    if not check(row):
                        break
                else:
                    out.append(row)
    except TypeError:
        return None  # incomparable row value vs constant: refuse
    return out


def _compile_interval_check(index: int, interval: Interval):
    """A direct-comparison closure for the hot refilter loop (one
    attribute lookup + chained comparison per row; a NULL row value is
    excluded, matching the 3VL outcome of the fresh WHERE)."""
    low, high = interval.low, interval.high
    if low is None and high is None:  # structurally unreachable
        return lambda row: row[index] is not None
    if high is None:
        if interval.low_inclusive:
            return lambda row: (v := row[index]) is not None and v >= low
        return lambda row: (v := row[index]) is not None and v > low
    if low is None:
        if interval.high_inclusive:
            return lambda row: (v := row[index]) is not None and v <= high
        return lambda row: (v := row[index]) is not None and v < high
    if interval.low_inclusive and interval.high_inclusive:
        return lambda row: (v := row[index]) is not None and low <= v <= high
    if interval.low_inclusive:
        return lambda row: (v := row[index]) is not None and low <= v < high
    if interval.high_inclusive:
        return lambda row: (v := row[index]) is not None and low < v <= high
    return lambda row: (v := row[index]) is not None and low < v < high


# --------------------------------------------------------------------------- #
# the candidate index
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Candidate:
    """One cached bounded answer eligible as a subsumption source."""

    shape_key: str
    result_key: Hashable
    home: str  # home shard's table name
    generation: int  # access-schema generation the entry was cached under
    summary: QuerySummary
    template_fingerprint: Optional[str] = None  # set for rebound templates


class SubsumptionIndex:
    """shape key -> recent :class:`Candidate` entries, MRU first.

    A leaf-locked bookkeeping structure (its mutex is never held while
    acquiring any shard or schema lock). It holds *references* to result
    cache entries, not the entries themselves: a candidate whose entry
    was evicted or invalidated is pruned lazily by the prober, and the
    whole index is cleared on a schema-generation bump.
    """

    def __init__(self, max_per_shape: int = DEFAULT_CANDIDATES_PER_SHAPE):
        if max_per_shape < 1:
            raise ValueError("max_per_shape must be >= 1")
        self._max_per_shape = max_per_shape
        self._lock = threading.Lock()
        self._by_shape: dict[str, OrderedDict[Hashable, Candidate]] = {}

    def add(self, candidate: Candidate) -> None:
        with self._lock:
            bucket = self._by_shape.setdefault(
                candidate.shape_key, OrderedDict()
            )
            bucket.pop(candidate.result_key, None)
            bucket[candidate.result_key] = candidate
            while len(bucket) > self._max_per_shape:
                bucket.popitem(last=False)

    def candidates(self, shape_key: str) -> list[Candidate]:
        """A snapshot of the bucket, most recently added first."""
        with self._lock:
            bucket = self._by_shape.get(shape_key)
            if not bucket:
                return []
            return list(reversed(bucket.values()))

    def touch(self, shape_key: str, result_key: Hashable) -> None:
        """Refresh a candidate's recency (it just served a hit), so the
        per-shape LRU keeps proven-broad sources over stale ones."""
        with self._lock:
            bucket = self._by_shape.get(shape_key)
            if bucket is not None and result_key in bucket:
                bucket.move_to_end(result_key)

    def discard(self, shape_key: str, result_key: Hashable) -> bool:
        with self._lock:
            bucket = self._by_shape.get(shape_key)
            if bucket is None:
                return False
            removed = bucket.pop(result_key, None) is not None
            if not bucket:
                self._by_shape.pop(shape_key, None)
            return removed

    def drop_template(self, template_fingerprint: str) -> int:
        """Drop every candidate derived from one rebind template (the
        stale-provenance hook: a merged-arity fallback abandons the
        pinned plan, so answers indexed under it stop being offered)."""
        dropped = 0
        with self._lock:
            for shape_key in list(self._by_shape):
                bucket = self._by_shape[shape_key]
                stale = [
                    key
                    for key, cand in bucket.items()
                    if cand.template_fingerprint == template_fingerprint
                ]
                for key in stale:
                    del bucket[key]
                dropped += len(stale)
                if not bucket:
                    del self._by_shape[shape_key]
        return dropped

    def clear(self) -> int:
        with self._lock:
            count = sum(len(b) for b in self._by_shape.values())
            self._by_shape.clear()
        return count

    def __len__(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._by_shape.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        with self._lock:
            shapes = len(self._by_shape)
            count = sum(len(b) for b in self._by_shape.values())
        return f"SubsumptionIndex({count} candidates across {shapes} shapes)"
