"""BE Plan Generator: search for a bounded query plan.

Given a canonical SPJA query and an access schema, the generator looks for
an ordering of ``fetch`` operations such that

* every fetch's X-attributes are *available* — bound to query constants or
  to columns already materialised in the running intermediate (propagated
  through the query's equality classes), and
* every relation occurrence is *soundly covered*: either one constraint's
  ``X ∪ Y`` contains all attributes the query needs from it, or a chain of
  fetches anchored on a candidate key extends the occurrence (key-chaining;
  see DESIGN.md for the soundness argument).

The search is a depth-first walk over fetch choices ordered greedily by
deduced access bound (smallest first), with memoisation on the materialised
attribute set. Following the Feasibility Theorem this is a sound PTIME
under-approximation of (undecidable) bounded evaluability: a returned plan
is always correct; a failure reports why each occurrence resisted coverage.

Bound deduction follows Example 2's arithmetic: a fetch presented with at
most ``k`` keys under constraint bound ``N`` accesses at most ``k·N``
partial tuples and grows the intermediate to at most ``k·N`` rows. The
``tight_*`` bounds additionally exploit per-equivalence-class distinctness
(ablation A3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.access.constraint import AccessConstraint
from repro.access.schema import AccessSchema
from repro.catalog.schema import DatabaseSchema, TableSchema
from repro.errors import NotCoveredError
from repro.sql.normalize import Attribute, ConjunctiveQuery
from repro.bounded.plan import BoundedPlan, FetchOp, KeyPart, PlanOp, SelectOp


class _UnionFind:
    """Union-find over attributes (the query's equality classes)."""

    def __init__(self) -> None:
        self._parent: dict[Attribute, Attribute] = {}

    def add(self, item: Attribute) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: Attribute) -> Attribute:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Attribute, b: Attribute) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def members(self) -> dict[Attribute, list[Attribute]]:
        groups: dict[Attribute, list[Attribute]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        return groups


# --------------------------------------------------------------------------- #
# equivalence-class constant propagation (shared with plan rebinding)
# --------------------------------------------------------------------------- #
def equality_classes(cq: ConjunctiveQuery) -> _UnionFind:
    """The query's equality classes over every attribute it touches.

    The partition is a property of the query *shape* — occurrences,
    equi-join atoms, and which attributes appear where — never of the
    constants, which is what makes constraint-preserving plan reuse
    across bindings sound (:mod:`repro.bounded.rebind`).
    """
    uf = _UnionFind()
    for binding in cq.occurrences:
        for column in cq.attributes_of(binding):
            uf.add(Attribute(binding, column))
    for left, right in cq.equalities:
        uf.union(left, right)
    return uf


def class_constant_map(
    cq: ConjunctiveQuery,
    uf: _UnionFind,
    selections: Optional[dict[Attribute, tuple]] = None,
) -> dict[Attribute, tuple]:
    """Constants per equality class: intersect the selection values of
    the class members, in ``selections`` iteration order.

    ``selections`` defaults to ``cq.selections``; rebinding passes a
    patched copy with fresh constants to recompute the per-class tuples
    for a new binding without re-running the planner. Distinct classes
    never share a tuple object — the executor's key planner groups
    constant key parts by tuple identity, so each class's parts must
    share exactly one tuple.
    """
    if selections is None:
        selections = cq.selections
    constants: dict[Attribute, tuple] = {}
    for attr, values in selections.items():
        root = uf.find(attr)
        if root in constants:
            existing = set(constants[root])
            merged = tuple(v for v in values if v in existing)
        else:
            merged = tuple(values)
        constants[root] = merged
    return constants


@dataclass
class _SearchState:
    """Mutable search state; copied when branching."""

    materialized: set[Attribute] = field(default_factory=set)
    fetched: set[str] = field(default_factory=set)  # bindings with >= 1 fetch
    anchored: set[str] = field(default_factory=set)  # key-covered bindings
    covered: set[str] = field(default_factory=set)
    ops: list[PlanOp] = field(default_factory=list)
    size_bound: int = 1
    tight_size: int = 1
    class_bound: dict[Attribute, int] = field(default_factory=dict)
    applied_selection_classes: set[Attribute] = field(default_factory=set)
    applied_filters: set[int] = field(default_factory=set)
    access_total: int = 0
    tight_access_total: int = 0
    constraints_used: list[AccessConstraint] = field(default_factory=list)

    def copy(self) -> "_SearchState":
        return _SearchState(
            materialized=set(self.materialized),
            fetched=set(self.fetched),
            anchored=set(self.anchored),
            covered=set(self.covered),
            ops=list(self.ops),
            size_bound=self.size_bound,
            tight_size=self.tight_size,
            class_bound=dict(self.class_bound),
            applied_selection_classes=set(self.applied_selection_classes),
            applied_filters=set(self.applied_filters),
            access_total=self.access_total,
            tight_access_total=self.tight_access_total,
            constraints_used=list(self.constraints_used),
        )

    def signature(self) -> tuple:
        return (
            frozenset(self.materialized),
            frozenset(self.covered),
            frozenset(self.anchored),
        )


@dataclass
class _Candidate:
    constraint: AccessConstraint
    binding: str
    key_parts: list[KeyPart]
    const_factor: int  # product of IN-list sizes over distinct const classes
    tight_key_classes: list[int]  # per-class enumeration bounds for X
    full_coverage: bool
    anchors: bool


class BoundedPlanGenerator:
    """Builds bounded plans for conjunctive queries under an access schema."""

    def __init__(self, db_schema: DatabaseSchema, access_schema: AccessSchema):
        self._db_schema = db_schema
        self._access_schema = access_schema

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def generate(
        self, cq: ConjunctiveQuery, *, require_bag_exact: bool = False
    ) -> BoundedPlan:
        plan, reasons = self.try_generate(cq, require_bag_exact=require_bag_exact)
        if plan is None:
            raise NotCoveredError(
                "query is not covered by the access schema", reasons
            )
        return plan

    def try_generate(
        self,
        cq: ConjunctiveQuery,
        *,
        require_bag_exact: bool = False,
        candidate_order: str = "greedy",
    ) -> tuple[Optional[BoundedPlan], list[str]]:
        """Return ``(plan, [])`` on success or ``(None, reasons)``.

        With ``require_bag_exact`` the search only accepts plans in which
        every occurrence is key-covered (needed for duplicate-sensitive
        aggregates); the DFS backtracks past covering-but-unanchored
        choices. ``candidate_order`` selects the fetch-ordering heuristic:
        ``"greedy"`` (smallest deduced access bound first, the default) or
        ``"anti_greedy"`` (largest first — the ablation baseline showing
        what fetch-order optimisation buys).
        """
        if candidate_order not in ("greedy", "anti_greedy"):
            raise ValueError(f"unknown candidate order {candidate_order!r}")
        context = _PlanContext(
            cq,
            self._db_schema,
            self._access_schema,
            require_bag_exact=require_bag_exact,
            candidate_order=candidate_order,
        )
        state = context.search(_SearchState())
        if state is None:
            return None, context.failure_reasons()
        return context.finalize(state), []

    def greedy_prefix(self, cq: ConjunctiveQuery) -> tuple[_SearchState, "_PlanContext"]:
        """Run the greedy loop without backtracking and return the final
        (possibly partial) state — the BE Plan Optimizer consumes this to
        build partially bounded plans."""
        context = _PlanContext(cq, self._db_schema, self._access_schema)
        state = _SearchState()
        while True:
            candidates = context.candidates(state)
            if not candidates:
                return state, context
            candidate = min(
                candidates, key=lambda c: context.access_bound_of(state, c)
            )
            state = context.apply(state, candidate)
            if len(state.covered) == len(cq.occurrences):
                return state, context


class _PlanContext:
    """Per-query immutable context + the DFS itself."""

    def __init__(
        self,
        cq: ConjunctiveQuery,
        db_schema: DatabaseSchema,
        access_schema: AccessSchema,
        *,
        require_bag_exact: bool = False,
        candidate_order: str = "greedy",
    ):
        self.cq = cq
        self.db_schema = db_schema
        self.access_schema = access_schema
        self.require_bag_exact = require_bag_exact
        self.candidate_order = candidate_order
        self.needed: dict[str, set[str]] = {
            binding: cq.attributes_of(binding) for binding in cq.occurrences
        }

        # equality classes over all attributes of the query, and the
        # constants per class (intersection over the class members);
        # shared with the binding-aware rebinder (bounded.rebind)
        self.uf = equality_classes(cq)
        self.class_constants = class_constant_map(cq, self.uf)

        self._visited: set[tuple] = set()

    # ------------------------------------------------------------------ #
    def table_schema(self, binding: str) -> TableSchema:
        return self.db_schema.table(self.cq.occurrences[binding])

    def _resolve_x(
        self, state: _SearchState, binding: str, constraint: AccessConstraint
    ) -> Optional[tuple[list[KeyPart], int, list[int]]]:
        """Resolve every X attribute; None when some attribute is unavailable.

        Returns (key_parts, const_factor, per-class tight bounds).
        """
        key_parts: list[KeyPart] = []
        const_factor = 1
        tight_class_bounds: list[int] = []
        seen_classes: set[Attribute] = set()
        for x_name in constraint.x:
            attr = Attribute(binding, x_name)
            root = self.uf.find(attr)
            new_class = root not in seen_classes
            seen_classes.add(root)

            if attr in state.materialized:
                key_parts.append(KeyPart(x_name, "column", column=attr))
                if new_class:
                    tight_class_bounds.append(
                        state.class_bound.get(root, state.tight_size)
                    )
                continue
            member = self._materialized_member(state, root)
            if member is not None:
                key_parts.append(KeyPart(x_name, "column", column=member))
                if new_class:
                    tight_class_bounds.append(
                        state.class_bound.get(root, state.tight_size)
                    )
                continue
            constants = self.class_constants.get(root)
            if constants is not None:
                key_parts.append(KeyPart(x_name, "const", values=constants))
                if new_class:
                    const_factor *= max(len(constants), 0)
                    tight_class_bounds.append(len(constants))
                continue
            return None
        return key_parts, const_factor, tight_class_bounds

    def _materialized_member(
        self, state: _SearchState, root: Attribute
    ) -> Optional[Attribute]:
        best: Optional[Attribute] = None
        for attr in state.materialized:
            if self.uf.find(attr) == root and (best is None or attr < best):
                best = attr
        return best

    # ------------------------------------------------------------------ #
    def candidates(self, state: _SearchState) -> list[_Candidate]:
        out: list[_Candidate] = []
        for binding, table_name in self.cq.occurrences.items():
            if binding in state.covered:
                continue
            schema = self.table_schema(binding)
            needed = self.needed[binding]
            for constraint in self.access_schema.constraints_for(table_name):
                exposes = set(constraint.x) | set(constraint.y)
                full = needed <= exposes
                anchors = schema.has_key_within(exposes)
                if binding not in state.fetched:
                    if not (full or anchors):
                        continue
                else:
                    # chain fetch: must be keyed by a materialised key of R
                    if binding not in state.anchored:
                        continue
                    keyed = any(
                        key <= set(constraint.x)
                        and all(
                            Attribute(binding, k) in state.materialized
                            for k in key
                        )
                        for key in schema.keys
                    )
                    if not keyed:
                        continue
                    # skip fetches that add nothing new
                    new = {
                        Attribute(binding, a)
                        for a in exposes
                        if Attribute(binding, a) not in state.materialized
                    }
                    if not new:
                        continue
                resolved = self._resolve_x(state, binding, constraint)
                if resolved is None:
                    continue
                key_parts, const_factor, tight_classes = resolved
                out.append(
                    _Candidate(
                        constraint=constraint,
                        binding=binding,
                        key_parts=key_parts,
                        const_factor=const_factor,
                        tight_key_classes=tight_classes,
                        full_coverage=full,
                        anchors=anchors,
                    )
                )
        return out

    def access_bound_of(self, state: _SearchState, candidate: _Candidate) -> int:
        return state.size_bound * candidate.const_factor * candidate.constraint.n

    # ------------------------------------------------------------------ #
    def apply(self, state: _SearchState, candidate: _Candidate) -> _SearchState:
        new = state.copy()
        constraint = candidate.constraint
        binding = candidate.binding

        key_bound = state.size_bound * candidate.const_factor
        access_bound = key_bound * constraint.n

        tight_product = 1
        for bound in candidate.tight_key_classes:
            tight_product *= bound
        tight_key = min(state.tight_size * candidate.const_factor, tight_product)
        tight_access = tight_key * constraint.n

        # columns this fetch adds
        new_columns: list[Attribute] = []
        for x_name in constraint.x:
            attr = Attribute(binding, x_name)
            if attr not in new.materialized:
                new_columns.append(attr)
        for y_name in constraint.y:
            attr = Attribute(binding, y_name)
            if attr not in new.materialized:
                new_columns.append(attr)

        fetch = FetchOp(
            constraint=constraint,
            binding=binding,
            key_parts=candidate.key_parts,
            new_columns=new_columns,
            input_bound=state.size_bound,
            key_bound=key_bound,
            access_bound=access_bound,
            output_bound=access_bound,
            tight_key_bound=tight_key,
            tight_access_bound=tight_access,
        )
        new.ops.append(fetch)
        new.constraints_used.append(constraint)
        new.size_bound = fetch.output_bound
        new.tight_size = tight_access
        new.access_total += access_bound
        new.tight_access_total += tight_access

        # maintain the per-class equality invariant and tight class bounds
        key_sources = {
            Attribute(binding, part.attribute): part.column
            for part in candidate.key_parts
            if part.source == "column"
        }
        for attr in new_columns:
            root = self.uf.find(attr)
            previous = self._materialized_member(state, root)
            new.materialized.add(attr)
            source = key_sources.get(attr)
            if previous is not None and source is None:
                # a Y-column landed in a class with materialised members:
                # enforce the equality explicitly
                new.ops.append(
                    SelectOp(kind="equality", column=attr, other=previous)
                )
            bound = new.class_bound.get(root)
            grown = new.tight_size
            new.class_bound[root] = min(bound, grown) if bound is not None else grown

        # apply constant selections on newly materialised classes
        for attr in new_columns:
            root = self.uf.find(attr)
            if root in new.applied_selection_classes:
                continue
            constants = self.class_constants.get(root)
            if constants is None:
                continue
            new.ops.append(
                SelectOp(kind="selection", column=attr, values=constants)
            )
            new.applied_selection_classes.add(root)
            new.class_bound[root] = min(
                new.class_bound.get(root, len(constants)), len(constants)
            )

        # apply residual filters whose attributes are all materialised
        for index, predicate in enumerate(self.cq.filters):
            if index in new.applied_filters:
                continue
            if predicate.attributes <= new.materialized:
                new.ops.append(
                    SelectOp(kind="filter", predicate=predicate.expression)
                )
                new.applied_filters.add(index)

        # coverage bookkeeping
        new.fetched.add(binding)
        if candidate.anchors:
            new.anchored.add(binding)
        materialized_here = {
            attr.column for attr in new.materialized if attr.binding == binding
        }
        if candidate.full_coverage or (
            binding in new.anchored and self.needed[binding] <= materialized_here
        ):
            new.covered.add(binding)
        return new

    # ------------------------------------------------------------------ #
    def _accepts(self, state: _SearchState) -> bool:
        if len(state.covered) != len(self.cq.occurrences):
            return False
        if self.require_bag_exact:
            return all(b in state.anchored for b in self.cq.occurrences)
        return True

    def search(self, state: _SearchState) -> Optional[_SearchState]:
        if self._accepts(state):
            return state
        signature = state.signature()
        if signature in self._visited:
            return None
        self._visited.add(signature)
        candidates = self.candidates(state)
        candidates.sort(
            key=lambda c: self.access_bound_of(state, c),
            reverse=self.candidate_order == "anti_greedy",
        )
        for candidate in candidates:
            result = self.search(self.apply(state, candidate))
            if result is not None:
                return result
        return None

    # ------------------------------------------------------------------ #
    def finalize(self, state: _SearchState) -> BoundedPlan:
        bag_exact = all(
            binding in state.anchored for binding in self.cq.occurrences
        )
        return BoundedPlan(
            cq=self.cq,
            ops=state.ops,
            bag_exact=bag_exact,
            access_bound=state.access_total,
            tight_access_bound=state.tight_access_total,
            output_bound=state.size_bound,
            constraints_used=state.constraints_used,
        )

    def _statically_available(self, binding: str, x_name: str) -> bool:
        """Over-approximation: an X attribute could ever become a fetch key
        only if its equality class has constants or a member in another
        occurrence (which some fetch might materialise)."""
        attr = Attribute(binding, x_name)
        root = self.uf.find(attr)
        if self.class_constants.get(root):
            return True
        return any(
            self.uf.find(other) == root and other.binding != binding
            for other in list(self.uf._parent)
        )

    def failure_reasons(self) -> list[str]:
        """Static explanation of why coverage failed, per occurrence."""
        reasons: list[str] = []
        for binding, table_name in self.cq.occurrences.items():
            needed = self.needed[binding]
            constraints = self.access_schema.constraints_for(table_name)
            if not constraints:
                reasons.append(
                    f"occurrence {binding!r} ({table_name}): no access "
                    "constraints on this relation"
                )
                continue
            schema = self.table_schema(binding)
            details = []
            for constraint in constraints:
                exposes = set(constraint.x) | set(constraint.y)
                missing = sorted(needed - exposes)
                if missing and not schema.has_key_within(exposes):
                    details.append(
                        f"{constraint.name} lacks {{{', '.join(missing)}}} "
                        "and does not expose a key"
                    )
                    continue
                unavailable = sorted(
                    x
                    for x in constraint.x
                    if not self._statically_available(binding, x)
                )
                if unavailable:
                    details.append(
                        f"{constraint.name} needs X attributes "
                        f"{{{', '.join(unavailable)}}} that no constant or "
                        "join can supply"
                    )
            if details:
                reasons.append(
                    f"occurrence {binding!r} ({table_name}): "
                    + "; ".join(details)
                )
        if not reasons:
            reasons.append(
                "no fetch ordering makes every constraint's X attributes "
                "available from constants or previously fetched values"
            )
        return reasons
