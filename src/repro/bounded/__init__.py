"""Bounded evaluation core (S6) — the paper's primary contribution.

Components map one-to-one onto Fig. 1 of the paper:

* **BE Checker** (:mod:`repro.bounded.coverage`) — decides in PTIME whether
  a query is *covered* by the access schema (the effective syntax of the
  Feasibility Theorem), and deduces the access bound ``M`` before
  execution.
* **BE Plan Generator** (:mod:`repro.bounded.planner`) — builds a bounded
  query plan whose only data access is the ``fetch(X ∈ T, Y, R)`` operator,
  each fetch annotated with an upper bound on the data it may touch.
* **BE Plan Executor** (:mod:`repro.bounded.executor`) — runs bounded plans
  against the AS catalog's modified hash indices.
* **BE Plan Optimizer** (:mod:`repro.bounded.optimizer`) — partially
  bounded plans for non-covered queries.
* **Resource-bounded approximation** (:mod:`repro.bounded.approximation`).
* **Performance analyzer** (:mod:`repro.bounded.analyzer`) — the Fig.-3
  style report.
"""

from repro.bounded.plan import BoundedPlan, FetchOp, SelectOp, explain_plan
from repro.bounded.coverage import BoundedEvaluabilityChecker, CoverageDecision
from repro.bounded.planner import BoundedPlanGenerator
from repro.bounded.executor import BoundedPlanExecutor
from repro.bounded.optimizer import BEPlanOptimizer, PartialPlan
from repro.bounded.approximation import ApproximateResult, BoundedApproximator
from repro.bounded.analyzer import PerformanceAnalysis, PerformanceAnalyzer

__all__ = [
    "BoundedPlan",
    "FetchOp",
    "SelectOp",
    "explain_plan",
    "BoundedEvaluabilityChecker",
    "CoverageDecision",
    "BoundedPlanGenerator",
    "BoundedPlanExecutor",
    "BEPlanOptimizer",
    "PartialPlan",
    "BoundedApproximator",
    "ApproximateResult",
    "PerformanceAnalyzer",
    "PerformanceAnalysis",
]
