"""BE Plan Optimizer: partially bounded plans for non-covered queries.

Paper §3: *"BE Plan Optimizer improves the conventional plan of the DBMS
for Q when Q is not bounded ... It identifies sub-queries of Q that are
boundedly evaluable under access schema A, and speeds up the evaluation of
Q by capitalizing on the indices of A."*

The optimizer runs the plan generator's greedy loop without backtracking;
whatever subset ``C`` of occurrences it manages to cover becomes a bounded
sub-plan. The sub-plan's result is materialised as a temporary relation,
and the *residual* query — the uncovered occurrences joined with the
temporary relation — runs on the conventional engine. Scans of the covered
relations are thereby replaced with index fetches, which is exactly the
speed-up the paper describes.

Soundness of the splice requires the temporary relation to carry correct
multiplicities into the residual join: we therefore only splice when the
final query is duplicate-insensitive (DISTINCT, or only MIN/MAX/COUNT-
DISTINCT-style aggregates) or when the bounded sub-plan is bag-exact.
Otherwise the optimizer falls back to the fully conventional plan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.access.catalog import ASCatalog
from repro.catalog.schema import Column, TableSchema
from repro.errors import NormalizationError, SQLError
from repro.sql import ast
from repro.sql.normalize import (
    Attribute,
    ConjunctiveQuery,
    OutputItem,
    ResolvedPredicate,
    normalize,
)
from repro.sql.parser import parse
from repro.storage.database import Database
from repro.storage.table import Table
from repro.engine.executor import QueryResult
from repro.engine.metrics import ExecutionMetrics
from repro.engine.physical import PhysicalExecutor
from repro.engine.planner import plan_conjunctive_query
from repro.engine.profiles import EngineProfile, POSTGRESQL
from repro.bounded.coverage import duplicate_sensitive_calls
from repro.bounded.executor import BoundedPlanExecutor
from repro.bounded.plan import BoundedPlan
from repro.bounded.planner import BoundedPlanGenerator

_TEMP = "__bounded__"


def _substitute(expr: ast.Expression, mapping: dict[Attribute, Attribute]) -> ast.Expression:
    """Rewrite column references according to ``mapping``."""
    if isinstance(expr, ast.ColumnRef):
        if expr.table is not None:
            replacement = mapping.get(Attribute(expr.table, expr.name))
            if replacement is not None:
                return ast.ColumnRef(replacement.column, table=replacement.binding)
        return expr
    if isinstance(expr, (ast.Literal, ast.Star)):
        return expr
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op, _substitute(expr.left, mapping), _substitute(expr.right, mapping)
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _substitute(expr.operand, mapping))
    if isinstance(expr, ast.InList):
        return ast.InList(
            _substitute(expr.operand, mapping),
            tuple(_substitute(i, mapping) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            _substitute(expr.operand, mapping),
            _substitute(expr.low, mapping),
            _substitute(expr.high, mapping),
            expr.negated,
        )
    if isinstance(expr, ast.Like):
        return ast.Like(
            _substitute(expr.operand, mapping),
            _substitute(expr.pattern, mapping),
            expr.negated,
        )
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_substitute(expr.operand, mapping), expr.negated)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(_substitute(a, mapping) for a in expr.args),
            expr.distinct,
        )
    return expr  # pragma: no cover


@dataclass
class PartialPlan:
    """A bounded prefix + a residual conventional query."""

    covered_bindings: list[str]
    uncovered_bindings: list[str]
    sub_plan: BoundedPlan
    sub_plan_bag_exact: bool
    residual_cq: ConjunctiveQuery
    temp_schema: TableSchema
    mapping: dict[Attribute, Attribute]

    @property
    def access_bound(self) -> int:
        return self.sub_plan.access_bound

    def describe(self) -> str:
        return (
            f"partially bounded plan: bounded prefix covers "
            f"{{{', '.join(self.covered_bindings)}}} "
            f"(<= {self.sub_plan.access_bound} tuples via "
            f"{len(self.sub_plan.fetch_ops)} fetches); conventional residual "
            f"over {{{', '.join(self.uncovered_bindings) or 'none'}}}"
        )


class BEPlanOptimizer:
    """Builds and executes partially bounded plans."""

    def __init__(
        self,
        catalog: ASCatalog,
        profile: EngineProfile = POSTGRESQL,
        *,
        dedup_keys: bool = False,
        executor: Optional[str] = None,
        rows_per_batch: Optional[int] = None,
        pool=None,
        dispatch: Optional[str] = None,
    ):
        self._catalog = catalog
        self._profile = profile
        self._dedup_keys = dedup_keys
        self._executor_mode = executor
        self._rows_per_batch = rows_per_batch
        self._pool = pool
        self._dispatch = dispatch
        self._generator = BoundedPlanGenerator(
            catalog.database.schema, catalog.schema
        )

    # ------------------------------------------------------------------ #
    def analyze(self, query: Union[str, ast.Statement]) -> Optional[PartialPlan]:
        """Find a bounded sub-query; None when no useful prefix exists."""
        try:
            statement = parse(query) if isinstance(query, str) else query
            if not isinstance(statement, ast.SelectStatement):
                return None
            cq = normalize(statement, self._catalog.database.schema)
        except (SQLError, NormalizationError):
            return None

        state, context = self._generator.greedy_prefix(cq)
        covered = sorted(state.covered)
        if not covered:
            return None
        uncovered = [b for b in cq.occurrences if b not in state.covered]

        sub_cq = self._build_sub_cq(cq, set(covered), context)
        sub_plan, reasons = self._generator.try_generate(sub_cq)
        if sub_plan is None:
            return None

        # multiplicity soundness of the splice (see module docstring):
        # the residual query must see correct multiplicities, so splice only
        # when the prefix is bag-exact or the query is duplicate-insensitive
        sensitive = bool(duplicate_sensitive_calls(cq))
        splice_ok = (
            sub_plan.bag_exact
            or cq.distinct
            or (cq.has_aggregates and not sensitive)
        )
        if not splice_ok:
            return None

        mapping, temp_schema = self._temp_layout(cq, set(covered))
        residual_cq = self._build_residual_cq(cq, set(covered), mapping, temp_schema)
        return PartialPlan(
            covered_bindings=covered,
            uncovered_bindings=uncovered,
            sub_plan=sub_plan,
            sub_plan_bag_exact=sub_plan.bag_exact,
            residual_cq=residual_cq,
            temp_schema=temp_schema,
            mapping=mapping,
        )

    # ------------------------------------------------------------------ #
    def execute(
        self, partial: PartialPlan, *, executor: Optional[str] = None
    ) -> QueryResult:
        """Run the bounded prefix, materialise it, and finish conventionally.

        ``executor`` overrides the bounded prefix's execution mode
        ("row"/"columnar") for this call; the default is the mode the
        optimizer was constructed with.
        """
        start = time.perf_counter()
        executor = BoundedPlanExecutor(
            self._catalog,
            dedup_keys=self._dedup_keys,
            executor=executor or self._executor_mode,
            rows_per_batch=self._rows_per_batch,
            pool=self._pool,
            dispatch=self._dispatch,
        )
        prefix_result = executor.execute(partial.sub_plan)

        temp_table = Table(partial.temp_schema)
        for row in prefix_result.rows:
            temp_table.rows.append(tuple(row))

        overlay = Database(name="overlay")
        for table in self._catalog.database:
            overlay.add_table(table)
        overlay.add_table(temp_table)

        # row-count-only statistics for the residual plan: computing full
        # column statistics per execution would dwarf the query itself, and
        # the residual join graph is small enough that row counts suffice
        from repro.catalog.statistics import TableStatistics

        statistics = {}
        for name in set(partial.residual_cq.occurrences.values()):
            statistics[name] = TableStatistics(
                table=name, row_count=len(overlay.table(name))
            )
        plan = plan_conjunctive_query(partial.residual_cq, statistics)
        metrics = ExecutionMetrics()
        metrics.tuples_fetched = prefix_result.metrics.tuples_fetched
        metrics.rows_per_batch = prefix_result.metrics.rows_per_batch
        metrics.batches = prefix_result.metrics.batches
        metrics.pool_workers = prefix_result.metrics.pool_workers
        metrics.pool_batches = prefix_result.metrics.pool_batches
        metrics.pool_wait_seconds = prefix_result.metrics.pool_wait_seconds
        metrics.operations.extend(prefix_result.metrics.operations)
        physical = PhysicalExecutor(overlay, self._profile, metrics)
        result = physical.run(plan)
        metrics.seconds = time.perf_counter() - start
        metrics.rows_output = len(result.rows)
        columns = [
            label if isinstance(label, str) else str(label)
            for label in result.labels
        ]
        return QueryResult(columns=columns, rows=result.rows, metrics=metrics)

    # ------------------------------------------------------------------ #
    def _build_sub_cq(
        self, cq: ConjunctiveQuery, covered: set[str], context
    ) -> ConjunctiveQuery:
        """Project the query onto the covered occurrences.

        The sub-query outputs every attribute the *full* query needs from a
        covered occurrence, keeps equalities/filters internal to the
        covered set, and inherits constants through equality classes (a
        selection on an uncovered attribute still binds a covered one when
        they are equated).
        """
        occurrences = {b: cq.occurrences[b] for b in cq.occurrences if b in covered}
        output: list[OutputItem] = []
        for binding in occurrences:
            for column in sorted(cq.attributes_of(binding)):
                ref = ast.ColumnRef(column, table=binding)
                output.append(OutputItem(ref, f"{binding}__{column}"))

        selections: dict[Attribute, tuple] = {}
        for binding in occurrences:
            for column in cq.attributes_of(binding):
                attr = Attribute(binding, column)
                root = context.uf.find(attr)
                constants = context.class_constants.get(root)
                if constants is not None:
                    selections[attr] = constants

        equalities = [
            (a, b)
            for a, b in cq.equalities
            if a.binding in covered and b.binding in covered
        ]
        filters = [
            predicate
            for predicate in cq.filters
            if all(attr.binding in covered for attr in predicate.attributes)
        ]
        return ConjunctiveQuery(
            occurrences=occurrences,
            output=output,
            selections=selections,
            equalities=equalities,
            filters=filters,
        )

    # ------------------------------------------------------------------ #
    def _temp_layout(
        self, cq: ConjunctiveQuery, covered: set[str]
    ) -> tuple[dict[Attribute, Attribute], TableSchema]:
        mapping: dict[Attribute, Attribute] = {}
        columns: list[Column] = []
        db_schema = self._catalog.database.schema
        for binding in cq.occurrences:
            if binding not in covered:
                continue
            table_schema = db_schema.table(cq.occurrences[binding])
            for column in sorted(cq.attributes_of(binding)):
                name = f"{binding}__{column}"
                mapping[Attribute(binding, column)] = Attribute(_TEMP, name)
                columns.append(Column(name, table_schema.dtype(column)))
        return mapping, TableSchema(_TEMP, columns)

    def _build_residual_cq(
        self,
        cq: ConjunctiveQuery,
        covered: set[str],
        mapping: dict[Attribute, Attribute],
        temp_schema: TableSchema,
    ) -> ConjunctiveQuery:
        occurrences = {_TEMP: temp_schema.name}
        for binding, table in cq.occurrences.items():
            if binding not in covered:
                occurrences[binding] = table

        def remap(attr: Attribute) -> Attribute:
            return mapping.get(attr, attr)

        selections = {
            remap(attr): values
            for attr, values in cq.selections.items()
            if attr.binding not in covered  # covered ones already enforced
        }
        equalities = []
        for a, b in cq.equalities:
            if a.binding in covered and b.binding in covered:
                continue  # enforced inside the bounded prefix
            equalities.append((remap(a), remap(b)))
        filters = []
        for predicate in cq.filters:
            if all(attr.binding in covered for attr in predicate.attributes):
                continue  # applied inside the bounded prefix
            expression = _substitute(predicate.expression, mapping)
            filters.append(
                ResolvedPredicate(
                    expression,
                    frozenset(remap(attr) for attr in predicate.attributes),
                )
            )

        output = [
            OutputItem(_substitute(item.expression, mapping), item.name)
            for item in cq.output
        ]
        aggregates = [
            OutputItem(_substitute(item.expression, mapping), item.name)
            for item in cq.aggregates
        ]
        having = _substitute(cq.having, mapping) if cq.having is not None else None
        order_by = [
            ast.OrderItem(_substitute(o.expression, mapping), o.ascending)
            for o in cq.order_by
        ]
        group_by = [remap(attr) for attr in cq.group_by]
        return ConjunctiveQuery(
            occurrences=occurrences,
            output=output,
            selections=selections,
            equalities=equalities,
            filters=filters,
            group_by=group_by,
            aggregates=aggregates,
            having=having,
            order_by=order_by,
            limit=cq.limit,
            offset=cq.offset,
            distinct=cq.distinct,
        )
