"""BE Checker: decide bounded evaluability before execution.

Implements the practical side of the paper's Feasibility Theorem: a query
is *covered* by the access schema ``A`` when the plan generator finds a
bounded plan (a PTIME check — the DFS is bounded by the polynomial number
of (occurrence, constraint) fetch choices and materialised-attribute
states for the fixed-size queries BEAS targets). The checker layers two
policies on top of raw plan existence:

* **Aggregate exactness** — duplicate-sensitive aggregates (plain COUNT /
  SUM / AVG) are only covered when the plan is *bag-exact*, i.e. every
  occurrence's fetches expose a candidate key, so distinct partial tuples
  are in bijection with rows. MIN / MAX / COUNT(DISTINCT) / SUM(DISTINCT)
  / AVG(DISTINCT) are duplicate-insensitive and need no key coverage.
* **Budget** — the user may supply a tuple budget (Fig. 2(A) of the demo);
  the checker compares the deduced bound ``M`` against it *without
  executing the query*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.access.constraint import AccessConstraint
from repro.access.schema import AccessSchema
from repro.catalog.schema import DatabaseSchema
from repro.errors import NormalizationError, SQLError
from repro.sql import ast
from repro.sql.normalize import ConjunctiveQuery, normalize
from repro.sql.parser import parse
from repro.bounded.plan import AnyBoundedPlan, SetOpPlan
from repro.bounded.planner import BoundedPlanGenerator

#: Aggregates whose value changes when duplicates collapse.
_DUPLICATE_SENSITIVE = ("COUNT", "SUM", "AVG")


def duplicate_sensitive_calls(cq: ConjunctiveQuery) -> list[ast.FunctionCall]:
    """Aggregate calls that require exact bag semantics."""
    calls: list[ast.FunctionCall] = []
    sources = [item.expression for item in cq.output]
    if cq.having is not None:
        sources.append(cq.having)
    for source in sources:
        for sub in ast.walk_expression(source):
            if (
                isinstance(sub, ast.FunctionCall)
                and sub.is_aggregate
                and sub.name in _DUPLICATE_SENSITIVE
                and not sub.distinct
            ):
                calls.append(sub)
    return calls


@dataclass
class CoverageDecision:
    """Outcome of the BE Checker for one query."""

    covered: bool
    reasons: list[str] = field(default_factory=list)
    plan: Optional[AnyBoundedPlan] = None
    bag_exact: bool = False
    access_bound: Optional[int] = None
    tight_access_bound: Optional[int] = None
    within_budget: Optional[bool] = None  # None when no budget was given
    constraints_used: list[AccessConstraint] = field(default_factory=list)

    def describe(self) -> str:
        if not self.covered:
            lines = ["NOT covered by the access schema:"]
            lines.extend(f"  - {reason}" for reason in self.reasons)
            return "\n".join(lines)
        lines = [
            "covered: bounded plan found",
            f"  access bound M = {self.access_bound} tuples "
            f"(tight: {self.tight_access_bound})",
            f"  constraints used: "
            f"{', '.join(c.name for c in self.constraints_used) or '(none)'}",
            f"  exact bag semantics: {self.bag_exact}",
        ]
        if self.within_budget is not None:
            lines.append(f"  within budget: {self.within_budget}")
        return "\n".join(lines)


class BoundedEvaluabilityChecker:
    """Checks queries against an access schema (paper §3, BE Checker).

    ``require_exact_multiplicities=True`` additionally rejects non-DISTINCT
    SELECTs whose plan is not bag-exact; by default BEAS answers those with
    set semantics (the demo's Example 2 treats the answer as a set of
    regions), and the decision records ``bag_exact=False`` so callers can
    tell.
    """

    def __init__(
        self,
        db_schema: DatabaseSchema,
        access_schema: AccessSchema,
        *,
        require_exact_multiplicities: bool = False,
    ):
        self._db_schema = db_schema
        self._access_schema = access_schema
        self._require_exact = require_exact_multiplicities
        self._generator = BoundedPlanGenerator(db_schema, access_schema)
        #: Number of full checker runs (parse/normalize + plan search)
        #: this instance has performed. The rebinding differential suite
        #: asserts that equal-arity plan rebinds never bump it.
        self.check_count = 0

    # ------------------------------------------------------------------ #
    def check(
        self,
        query: Union[str, ast.Statement],
        budget: Optional[int] = None,
    ) -> CoverageDecision:
        """Decide coverage (and budget feasibility) without executing."""
        self.check_count += 1
        try:
            statement = parse(query) if isinstance(query, str) else query
        except SQLError as error:
            return CoverageDecision(covered=False, reasons=[str(error)])
        decision = self._check_statement(statement)
        if decision.covered and budget is not None:
            decision.within_budget = decision.access_bound <= budget
        return decision

    # ------------------------------------------------------------------ #
    def _check_statement(self, statement: ast.Statement) -> CoverageDecision:
        if isinstance(statement, ast.SetOperation):
            left = self._check_statement(statement.left)
            right = self._check_statement(statement.right)
            if not (left.covered and right.covered):
                reasons = [
                    f"{statement.op}: {side} argument not covered: {reason}"
                    for side, decision in (("left", left), ("right", right))
                    if not decision.covered
                    for reason in decision.reasons
                ]
                return CoverageDecision(covered=False, reasons=reasons)
            # set semantics of UNION/INTERSECT/EXCEPT absorb multiplicities;
            # the ALL variants require bag exactness on both sides
            if statement.all and not (left.bag_exact and right.bag_exact):
                return CoverageDecision(
                    covered=False,
                    reasons=[
                        f"{statement.op} ALL requires exact bag semantics but "
                        "some occurrence is not key-covered by its fetches"
                    ],
                )
            plan = SetOpPlan(statement.op, left.plan, right.plan, statement.all)
            return CoverageDecision(
                covered=True,
                plan=plan,
                bag_exact=left.bag_exact and right.bag_exact,
                access_bound=left.access_bound + right.access_bound,
                tight_access_bound=left.tight_access_bound
                + right.tight_access_bound,
                constraints_used=plan.constraints_used,
            )

        try:
            cq = normalize(statement, self._db_schema)
        except NormalizationError as error:
            return CoverageDecision(
                covered=False,
                reasons=[f"outside the SPJA fragment: {error}"],
            )

        sensitive = duplicate_sensitive_calls(cq)
        need_bag_exact = bool(sensitive) or (
            self._require_exact and not cq.distinct and not cq.has_aggregates
        )
        plan, reasons = self._generator.try_generate(
            cq, require_bag_exact=need_bag_exact
        )
        if plan is None and need_bag_exact:
            relaxed, _ = self._generator.try_generate(cq)
            if relaxed is not None:
                if sensitive:
                    names = ", ".join(sorted({c.name for c in sensitive}))
                    reason = (
                        f"aggregates ({names}) need exact multiplicities, but "
                        "no bag-exact bounded plan exists: some occurrence "
                        "cannot be key-covered by its fetches"
                    )
                else:
                    reason = (
                        "exact multiplicities were requested "
                        "(require_exact_multiplicities=True) but no bag-exact "
                        "bounded plan exists"
                    )
                return CoverageDecision(covered=False, reasons=[reason])
        if plan is None:
            return CoverageDecision(covered=False, reasons=reasons)

        return CoverageDecision(
            covered=True,
            plan=plan,
            bag_exact=plan.bag_exact,
            access_bound=plan.access_bound,
            tight_access_bound=plan.tight_access_bound,
            constraints_used=plan.constraints_used,
        )
