"""Bounded query plans.

A bounded plan is a pipeline that starts from the query's constants and
accesses data *only* through ``fetch(X ∈ T, Y, R)`` operations (paper §3,
BE Plan Generator): each fetch extends the running intermediate ``T`` with
the Y-values the access index returns for the X-keys drawn from ``T``.
Selections, equality enforcement, aggregation, and projection are applied
to intermediate results and never touch base data.

Every fetch is annotated with the upper bound on the amount of data it can
access, deduced from the cardinality constraints alone (Example 2 of the
paper: 2 000, 24 000, 12 000 000 for Q under A0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

from repro.access.constraint import AccessConstraint
from repro.sql import ast
from repro.sql.normalize import Attribute, ConjunctiveQuery


@dataclass(frozen=True)
class KeyPart:
    """How one X-attribute of a fetch obtains its key values.

    ``column`` sources take the value from an already-materialised column
    of the intermediate; ``const`` sources enumerate literals from the
    query (an ``IN`` list contributes all its members).
    """

    attribute: str  # X attribute name within the constraint's relation
    source: Literal["column", "const"]
    column: Optional[Attribute] = None
    values: Optional[tuple] = None

    def __str__(self) -> str:
        if self.source == "column":
            return f"{self.attribute}:={self.column}"
        rendered = ", ".join(repr(v) for v in self.values or ())
        return f"{self.attribute} in ({rendered})"


@dataclass
class FetchOp:
    """``fetch(X ∈ T, Y, R)`` via one access constraint."""

    constraint: AccessConstraint
    binding: str  # relation occurrence served
    key_parts: list[KeyPart]
    new_columns: list[Attribute]  # columns this fetch adds to the intermediate
    # --- deduced bounds (counts of partial tuples) ---
    input_bound: int = 0  # |T| upper bound when the fetch runs
    key_bound: int = 0  # number of keys presented to the index
    access_bound: int = 0  # key_bound * N  (paper's arithmetic)
    output_bound: int = 0  # |T'| after the extension
    tight_key_bound: int = 0  # dedup-aware refinement (ablation A3)
    tight_access_bound: int = 0

    def describe(self) -> str:
        keys = ", ".join(str(part) for part in self.key_parts)
        return (
            f"fetch[{self.constraint.name}] {self.constraint.relation} as "
            f"{self.binding} ({keys}) -> {{{', '.join(self.constraint.y)}}} "
            f"(<= {self.access_bound} tuples)"
        )


@dataclass
class SelectOp:
    """Filter the intermediate; never touches base data.

    * ``selection`` — keep rows whose ``column`` value is among ``values``
    * ``equality``  — keep rows where ``column == other`` (enforces an
      equi-join atom that no fetch keyed on)
    * ``filter``    — arbitrary residual predicate over materialised columns
    """

    kind: Literal["selection", "equality", "filter"]
    column: Optional[Attribute] = None
    values: Optional[tuple] = None
    other: Optional[Attribute] = None
    predicate: Optional[ast.Expression] = None

    def describe(self) -> str:
        if self.kind == "selection":
            rendered = ", ".join(repr(v) for v in self.values or ())
            return f"select {self.column} in ({rendered})"
        if self.kind == "equality":
            return f"select {self.column} = {self.other}"
        from repro.sql.printer import expression_to_sql

        return f"select [{expression_to_sql(self.predicate)}]"


PlanOp = FetchOp | SelectOp


@dataclass
class BoundedPlan:
    """A complete bounded plan for one SELECT block."""

    cq: ConjunctiveQuery
    ops: list[PlanOp]
    bag_exact: bool  # every occurrence key-covered => exact bag semantics
    access_bound: int  # sum of fetch access bounds (paper's M)
    tight_access_bound: int
    output_bound: int  # bound on the final intermediate size
    constraints_used: list[AccessConstraint] = field(default_factory=list)

    @property
    def fetch_ops(self) -> list[FetchOp]:
        return [op for op in self.ops if isinstance(op, FetchOp)]

    def rebound(
        self, ops: list[PlanOp], cq: ConjunctiveQuery
    ) -> "BoundedPlan":
        """A copy of this plan with patched ops/cq and *identical* bounds.

        Used by constraint-preserving plan rebinding
        (:mod:`repro.bounded.rebind`): when a new binding keeps every
        equality class's constant arity, the §3 bound arithmetic —
        ``access_bound``, ``tight_access_bound``, ``output_bound`` — is
        unchanged by construction, so only the operator pipeline and the
        canonical query carry new constants.
        """
        return BoundedPlan(
            cq=cq,
            ops=ops,
            bag_exact=self.bag_exact,
            access_bound=self.access_bound,
            tight_access_bound=self.tight_access_bound,
            output_bound=self.output_bound,
            constraints_used=self.constraints_used,
        )

    def describe(self) -> str:
        lines = [op.describe() for op in self.ops]
        lines.append(
            f"-- access bound: {self.access_bound} tuples "
            f"(tight: {self.tight_access_bound}); "
            f"{len(self.fetch_ops)} fetches; bag-exact: {self.bag_exact}"
        )
        return "\n".join(lines)


@dataclass
class SetOpPlan:
    """Bounded plan for a set operation: both sides bounded."""

    op: str  # 'UNION' | 'INTERSECT' | 'EXCEPT'
    left: "AnyBoundedPlan"
    right: "AnyBoundedPlan"
    all: bool = False

    @property
    def access_bound(self) -> int:
        return self.left.access_bound + self.right.access_bound

    @property
    def tight_access_bound(self) -> int:
        return self.left.tight_access_bound + self.right.tight_access_bound

    @property
    def bag_exact(self) -> bool:
        return self.left.bag_exact and self.right.bag_exact

    @property
    def constraints_used(self) -> list[AccessConstraint]:
        merged: list[AccessConstraint] = []
        seen: set[str] = set()
        for side in (self.left, self.right):
            for constraint in side.constraints_used:
                if constraint.name not in seen:
                    seen.add(constraint.name)
                    merged.append(constraint)
        return merged

    def describe(self) -> str:
        keyword = self.op + (" ALL" if self.all else "")
        return (
            self.left.describe()
            + f"\n{keyword}\n"
            + self.right.describe()
        )


AnyBoundedPlan = BoundedPlan | SetOpPlan


def explain_plan(plan: AnyBoundedPlan) -> str:
    """Human-readable plan listing with per-fetch bound annotations
    (what Fig. 2(B) of the demo shows)."""
    return plan.describe()
