"""Resource-bounded approximation (paper §2/§3).

When a user "can afford only bounded resources and hence opts to take
approximate query answers", BEAS executes the bounded plan under a hard
tuple budget: each fetch stops consuming input rows once the budget is
exhausted. For monotone SPJ queries this yields a **sound** subset of the
exact answer, and the cardinality constraints let us derive a
**deterministic accuracy (recall) lower bound**: every input row a fetch
dropped can produce at most ``Π_{j ≥ i} (factor_j · N_j)`` final
intermediate rows, so the number of missed answers is bounded above by a
number computed from the access schema alone.

Aggregates, HAVING, and EXCEPT are rejected (truncation is not monotone
for them); the checker/facade fall back to exact evaluation instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


from repro.access.catalog import ASCatalog
from repro.errors import ExecutionError, PlanningError
from repro.engine.expressions import compile_predicate
from repro.engine.logical import MaterializedNode
from repro.engine.metrics import ExecutionMetrics
from repro.engine.physical import Intermediate, PhysicalExecutor
from repro.engine.planner import attach_tail
from repro.engine.profiles import EngineProfile
from repro.bounded.executor import _KeyPlan
from repro.bounded.plan import BoundedPlan, FetchOp, SelectOp

_NEUTRAL_PROFILE = EngineProfile(
    name="beas-approx-tail", join_algorithm="hash", row_overhead=0
)


@dataclass
class ApproximateResult:
    """Approximate answers plus the deterministic accuracy guarantee."""

    columns: list[str]
    rows: list[tuple]
    budget: int
    tuples_fetched: int
    complete: bool  # no truncation happened: the answer is exact
    missed_bound: int  # upper bound on the number of missed answers
    recall_lower_bound: float  # |found| / (|found| + missed_bound)
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)

    def describe(self) -> str:
        status = "exact (budget not reached)" if self.complete else "approximate"
        return (
            f"{status}: {len(self.rows)} answers, fetched "
            f"{self.tuples_fetched}/{self.budget} tuples, recall >= "
            f"{self.recall_lower_bound:.4f} (missed <= {self.missed_bound})"
        )


class BoundedApproximator:
    """Executes bounded plans under a hard tuple budget."""

    def __init__(self, catalog: ASCatalog):
        self._catalog = catalog

    # ------------------------------------------------------------------ #
    def execute(self, plan: BoundedPlan, budget: int) -> ApproximateResult:
        if not isinstance(plan, BoundedPlan):
            raise PlanningError(
                "resource-bounded approximation supports single SELECT blocks"
            )
        cq = plan.cq
        if cq.has_aggregates or cq.group_by or cq.having is not None:
            raise PlanningError(
                "resource-bounded approximation does not support aggregates; "
                "truncated inputs make aggregate values non-monotone"
            )
        if budget < 0:
            raise PlanningError("budget must be non-negative")

        metrics = ExecutionMetrics()
        start = time.perf_counter()
        remaining = budget
        intermediate = Intermediate(labels=[], rows=[()])
        truncated = False
        # dropped input rows per fetch index, for the missed-answer bound
        fetch_ops = plan.fetch_ops
        dropped: list[int] = [0] * len(fetch_ops)
        fetch_index = -1

        for op in plan.ops:
            if isinstance(op, FetchOp):
                fetch_index += 1
                intermediate, used, rows_dropped = self._fetch_within(
                    op, intermediate, remaining
                )
                remaining -= used
                metrics.tuples_fetched += used
                dropped[fetch_index] = rows_dropped
                if rows_dropped:
                    truncated = True
            elif isinstance(op, SelectOp):
                intermediate = self._select(op, intermediate)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown bounded plan op {op!r}")

        tail = attach_tail(
            MaterializedNode(intermediate.labels, intermediate.rows),
            cq,
            force_distinct=True,  # approximate answers are a set
        )
        executor = PhysicalExecutor(self._catalog.database, _NEUTRAL_PROFILE, metrics)
        final = executor.run(tail)

        missed = self._missed_bound(fetch_ops, dropped)
        found = len(final.rows)
        recall = 1.0 if (found + missed) == 0 else found / (found + missed)
        metrics.seconds = time.perf_counter() - start
        metrics.rows_output = found
        columns = [
            label if isinstance(label, str) else str(label)
            for label in final.labels
        ]
        return ApproximateResult(
            columns=columns,
            rows=final.rows,
            budget=budget,
            tuples_fetched=budget - remaining,
            complete=not truncated,
            missed_bound=0 if not truncated else missed,
            recall_lower_bound=1.0 if not truncated else recall,
            metrics=metrics,
        )

    # ------------------------------------------------------------------ #
    def _fetch_within(
        self, op: FetchOp, intermediate: Intermediate, remaining: int
    ) -> tuple[Intermediate, int, int]:
        """Run one fetch, stopping before the budget is exceeded.

        (row, key) pairs are consumed atomically — a key's whole bucket or
        nothing — so IN-list expansions truncate per key, and the count of
        dropped keys cleanly bounds the missed answers (each dropped key
        yields at most N output rows at this fetch).
        """
        index = self._catalog.index_for(op.constraint)
        key_plan = _KeyPlan(op, intermediate.layout)
        labels = intermediate.labels + key_plan.new_labels
        parts_len = len(op.key_parts)

        used = 0
        out_rows: list[tuple] = []
        dropped_keys = 0
        exhausted = False
        for row in intermediate.rows:
            for key_tuple in key_plan.keys_for(row, parts_len):
                if exhausted:
                    dropped_keys += 1
                    continue
                bucket = index.fetch(key_tuple)
                if used + len(bucket) > remaining:
                    exhausted = True
                    dropped_keys += 1
                    continue
                used += len(bucket)
                x_extension = tuple(key_tuple[i] for i in key_plan.x_new)
                for y_value in bucket:
                    if any(
                        y_value[i] != row[pos] for i, pos in key_plan.y_existing
                    ):
                        continue
                    out_rows.append(
                        row
                        + x_extension
                        + tuple(y_value[i] for i in key_plan.y_new)
                    )
        return Intermediate(labels, out_rows), used, dropped_keys

    @staticmethod
    def _select(op: SelectOp, intermediate: Intermediate) -> Intermediate:
        layout = intermediate.layout
        if op.kind == "selection":
            position = layout[op.column]
            allowed = set(op.values or ())
            rows = [
                row
                for row in intermediate.rows
                if row[position] is not None and row[position] in allowed
            ]
        elif op.kind == "equality":
            a = layout[op.column]
            b = layout[op.other]
            rows = [
                row
                for row in intermediate.rows
                if row[a] is not None and row[a] == row[b]
            ]
        else:
            predicate = compile_predicate(op.predicate, layout)
            rows = [row for row in intermediate.rows if predicate(row)]
        return Intermediate(intermediate.labels, rows)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _missed_bound(fetch_ops: list[FetchOp], dropped: list[int]) -> int:
        """Upper bound on final-intermediate rows lost to truncation.

        A *key* dropped at fetch ``i`` yields at most ``N_i`` rows there,
        each expanding into at most ``Π_{j > i} factor_j · N_j`` rows
        downstream, where ``factor_j = key_bound_j / input_bound_j``
        accounts for IN-list enumeration. All quantities come from the
        access schema, so the bound is deterministic.
        """
        multipliers: list[int] = []
        for op in fetch_ops:
            factor = op.key_bound // max(op.input_bound, 1)
            multipliers.append(max(factor, 1) * max(op.constraint.n, 0))
        missed = 0
        for i, keys_dropped in enumerate(dropped):
            if not keys_dropped:
                continue
            expansion = max(fetch_ops[i].constraint.n, 0)
            for j in range(i + 1, len(multipliers)):
                expansion *= multipliers[j]
            missed += keys_dropped * expansion
        return missed
