"""BE Plan Executor: run bounded plans against the AS catalog's indices.

The executor extends the host engine's physical operator set with the
``fetch`` operator (paper §3): data is accessed exclusively through the
modified hash indices of the access schema — base tables are never
scanned. After the fetch/select pipeline produces the final intermediate,
the conventional engine's tail operators (aggregate, sort, project,
distinct, limit) finish the job, which is exactly how the paper describes
BEAS sitting on top of a DBMS's physical plan implementation.

``dedup_keys=False`` (default) mirrors the paper's accounting, where the
plan of Example 2 "still accesses over 12 million tuples": every
intermediate row presents its key to the index. ``dedup_keys=True``
fetches each distinct key once — an optimisation the paper's bound
arithmetic does not assume (ablation bench A1).
"""

from __future__ import annotations

import itertools
import time
from typing import Optional

from repro.access.catalog import ASCatalog
from repro.errors import ExecutionError
from repro.sql.normalize import Attribute
from repro.engine.executor import QueryResult
from repro.engine.expressions import compile_predicate
from repro.engine.logical import MaterializedNode, SetOpNode
from repro.engine.metrics import ExecutionMetrics
from repro.engine.physical import Intermediate, PhysicalExecutor
from repro.engine.planner import attach_tail
from repro.engine.profiles import EngineProfile
from repro.bounded.plan import AnyBoundedPlan, BoundedPlan, FetchOp, SelectOp, SetOpPlan

_NEUTRAL_PROFILE = EngineProfile(name="beas-tail", join_algorithm="hash", row_overhead=0)


class _KeyPlan:
    """Resolved fetch-key layout: how each X part obtains its value, which
    fetched attributes extend the row, and which must match existing columns.

    Shared by the BE Plan Executor and the resource-bounded approximator.
    """

    def __init__(self, op: FetchOp, layout: dict[object, int]):
        self.column_positions: list[Optional[int]] = []
        const_values: list[Optional[tuple]] = []
        for part in op.key_parts:
            if part.source == "column":
                self.column_positions.append(layout[part.column])
                const_values.append(None)
            else:
                self.column_positions.append(None)
                const_values.append(part.values or ())

        # constant parts sharing the same values tuple (same equality class)
        # must take the same enumerated value
        const_groups: dict[int, list[int]] = {}
        for i, values in enumerate(const_values):
            if values is not None:
                const_groups.setdefault(id(values), []).append(i)
        self.group_value_lists = [
            const_values[positions[0]] for positions in const_groups.values()
        ]
        self.group_positions = list(const_groups.values())

        new_set = set(op.new_columns)
        self.x_new = [
            i
            for i, part in enumerate(op.key_parts)
            if Attribute(op.binding, part.attribute) in new_set
        ]
        y_names = op.constraint.y
        self.y_new = [
            i
            for i, name in enumerate(y_names)
            if Attribute(op.binding, name) in new_set
        ]
        self.y_existing = [
            (i, layout[Attribute(op.binding, name)])
            for i, name in enumerate(y_names)
            if Attribute(op.binding, name) not in new_set
        ]
        self.new_labels = [
            Attribute(op.binding, op.key_parts[i].attribute) for i in self.x_new
        ] + [Attribute(op.binding, y_names[i]) for i in self.y_new]

    def keys_for(self, row: tuple, key_parts_len: int):
        """Yield the fully resolved key tuples for one input row (several
        when an IN-list enumerates constants); yields nothing when a key
        column is NULL."""
        combos = (
            itertools.product(*self.group_value_lists)
            if self.group_value_lists
            else ((),)
        )
        for combo in combos:
            key = [None] * key_parts_len
            for group_index, positions in enumerate(self.group_positions):
                for position in positions:
                    key[position] = combo[group_index]
            valid = True
            for i, position in enumerate(self.column_positions):
                if position is not None:
                    value = row[position]
                    if value is None:
                        valid = False  # SQL: NULL never joins
                        break
                    key[i] = value
            if valid:
                yield tuple(key)


class BoundedPlanExecutor:
    """Executes bounded plans; the only data access is via access indices."""

    def __init__(self, catalog: ASCatalog, *, dedup_keys: bool = False):
        self._catalog = catalog
        self._dedup_keys = dedup_keys

    # ------------------------------------------------------------------ #
    def execute(self, plan: AnyBoundedPlan) -> QueryResult:
        metrics = ExecutionMetrics()
        start = time.perf_counter()
        intermediate = self._run(plan, metrics)
        metrics.seconds = time.perf_counter() - start
        metrics.rows_output = len(intermediate.rows)
        columns = [
            label if isinstance(label, str) else str(label)
            for label in intermediate.labels
        ]
        return QueryResult(columns=columns, rows=intermediate.rows, metrics=metrics)

    def _run(self, plan: AnyBoundedPlan, metrics: ExecutionMetrics) -> Intermediate:
        if isinstance(plan, SetOpPlan):
            left = self._run(plan.left, metrics)
            right = self._run(plan.right, metrics)
            node = SetOpNode(
                plan.op,
                MaterializedNode(left.labels, left.rows),
                MaterializedNode(right.labels, right.rows),
                plan.all,
            )
            executor = PhysicalExecutor(
                self._catalog.database, _NEUTRAL_PROFILE, metrics
            )
            return executor.run(node)
        return self._run_select(plan, metrics)

    # ------------------------------------------------------------------ #
    def _run_select(self, plan: BoundedPlan, metrics: ExecutionMetrics) -> Intermediate:
        intermediate = Intermediate(labels=[], rows=[()])
        for op in plan.ops:
            if isinstance(op, FetchOp):
                intermediate = self._fetch(op, intermediate, metrics)
            elif isinstance(op, SelectOp):
                intermediate = self._select(op, intermediate, metrics)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown bounded plan op {op!r}")

        # hand the final intermediate to the conventional tail operators
        tail = attach_tail(
            MaterializedNode(intermediate.labels, intermediate.rows),
            plan.cq,
            force_distinct=not plan.bag_exact,
        )
        executor = PhysicalExecutor(self._catalog.database, _NEUTRAL_PROFILE, metrics)
        return executor.run(tail)

    # ------------------------------------------------------------------ #
    def _fetch(
        self, op: FetchOp, intermediate: Intermediate, metrics: ExecutionMetrics
    ) -> Intermediate:
        start = time.perf_counter()
        index = self._catalog.index_for(op.constraint)
        key_plan = _KeyPlan(op, intermediate.layout)
        labels = intermediate.labels + key_plan.new_labels
        parts_len = len(op.key_parts)

        cache: dict[tuple, list[tuple]] = {}
        fetched = 0
        out_rows: list[tuple] = []
        for row in intermediate.rows:
            for key_tuple in key_plan.keys_for(row, parts_len):
                if self._dedup_keys:
                    if key_tuple in cache:
                        bucket = cache[key_tuple]
                    else:
                        bucket = index.fetch(key_tuple)
                        cache[key_tuple] = bucket
                        fetched += len(bucket)
                else:
                    bucket = index.fetch(key_tuple)
                    fetched += len(bucket)
                x_extension = tuple(key_tuple[i] for i in key_plan.x_new)
                for y_value in bucket:
                    # consistency with already-materialised Y columns
                    if any(
                        y_value[i] != row[pos] for i, pos in key_plan.y_existing
                    ):
                        continue
                    out_rows.append(
                        row
                        + x_extension
                        + tuple(y_value[i] for i in key_plan.y_new)
                    )

        if fetched > op.access_bound:
            raise ExecutionError(
                f"fetch {op.constraint.name} accessed {fetched} tuples, "
                f"exceeding its deduced bound {op.access_bound}; "
                "the dataset no longer conforms to the access schema"
            )
        metrics.tuples_fetched += fetched
        metrics.intermediate_rows += len(out_rows)
        metrics.record(
            f"fetch[{op.constraint.name}]({op.constraint.relation} as {op.binding})",
            len(intermediate.rows),
            len(out_rows),
            time.perf_counter() - start,
        )
        return Intermediate(labels, out_rows)

    # ------------------------------------------------------------------ #
    def _select(
        self, op: SelectOp, intermediate: Intermediate, metrics: ExecutionMetrics
    ) -> Intermediate:
        start = time.perf_counter()
        layout = intermediate.layout
        if op.kind == "selection":
            position = layout[op.column]
            allowed = set(op.values or ())
            rows = [row for row in intermediate.rows if row[position] in allowed]
        elif op.kind == "equality":
            a = layout[op.column]
            b = layout[op.other]
            rows = [
                row
                for row in intermediate.rows
                if row[a] is not None and row[a] == row[b]
            ]
        else:
            predicate = compile_predicate(op.predicate, layout)
            rows = [row for row in intermediate.rows if predicate(row)]
        metrics.record(
            op.describe(), len(intermediate.rows), len(rows), time.perf_counter() - start
        )
        return Intermediate(intermediate.labels, rows)
