"""BE Plan Executor: run bounded plans against the AS catalog's indices.

The executor extends the host engine's physical operator set with the
``fetch`` operator (paper §3): data is accessed exclusively through the
modified hash indices of the access schema — base tables are never
scanned. After the fetch/select pipeline produces the final intermediate,
the conventional engine's tail operators (aggregate, sort, project,
distinct, limit) finish the job, which is exactly how the paper describes
BEAS sitting on top of a DBMS's physical plan implementation.

``dedup_keys=False`` (default) mirrors the paper's accounting, where the
plan of Example 2 "still accesses over 12 million tuples": every
intermediate row presents its key to the index. ``dedup_keys=True``
fetches each distinct key once — an optimisation the paper's bound
arithmetic does not assume (ablation bench A1).

Two execution modes share the same plans, bounds, and accounting:

* ``executor="row"`` (default) materialises row-tuple intermediates;
* ``executor="columnar"`` runs the pipeline over per-attribute column
  batches (``engine.columnar``): fetches gather index postings for a
  whole key batch and build the output column by column, selections only
  shrink a selection vector, and the tail operators stream batches of
  ``rows_per_batch`` rows (``engine.physical.ColumnarTailExecutor``).

Both modes present exactly the same keys to the indices in the same
order, so ``tuples_fetched``, the per-fetch bound enforcement, and the
``dedup_keys`` semantics are identical by construction — the paper's §3
bound arithmetic holds unchanged. NULL semantics (both modes): a fetch
key with a NULL part never matches any index entry (SQL three-valued
logic — an equality against NULL is UNKNOWN), whether the part comes
from a materialised column or an enumerated constant, and key dedup
never conflates distinct NULL-bearing keys because such keys are never
presented at all.

With an :class:`~repro.engine.pool.EnginePool` attached, the columnar
pipeline additionally runs **in parallel across worker processes**:
whole plans are shipped to one worker (``dispatch="plan"``), or each
fetch's input batches fan out across idle workers (``"batch"``;
``"auto"`` tries the plan route first). Per-worker fetch accounting is
merged deterministically (see :mod:`repro.engine.pool`), so the pooled
mode keeps the same bound arithmetic and ``dedup_keys`` semantics; the
cross-process differential suite (``tests/test_parallel_differential``)
locks all three modes together. Any pool failure falls back to
in-process execution — answers are never wrong, only slower.
"""

from __future__ import annotations

import itertools
import time
from typing import Optional

from repro.access.catalog import ASCatalog
from repro.errors import ExecutionError
from repro.sql.normalize import Attribute
from repro.engine.columnar import (
    ColumnarIntermediate,
    compile_columnar_predicate,
    resolve_executor_mode,
    resolve_rows_per_batch,
)
from repro.engine.executor import QueryResult
from repro.engine.expressions import compile_predicate
from repro.engine.logical import MaterializedNode, SetOpNode
from repro.engine.metrics import ExecutionMetrics
from repro.engine.physical import ColumnarTailExecutor, Intermediate, PhysicalExecutor
from repro.engine.planner import attach_tail
from repro.engine.pool import (
    EnginePool,
    FetchChunkSpec,
    merge_dedup_counts,
    resolve_dispatch,
    run_fetch_chunk,
)
from repro.engine.profiles import EngineProfile
from repro.bounded.plan import AnyBoundedPlan, BoundedPlan, FetchOp, SelectOp, SetOpPlan

_NEUTRAL_PROFILE = EngineProfile(name="beas-tail", join_algorithm="hash", row_overhead=0)


class _KeyPlan:
    """Resolved fetch-key layout: how each X part obtains its value, which
    fetched attributes extend the row, and which must match existing columns.

    Shared by the BE Plan Executor (both modes) and the resource-bounded
    approximator.
    """

    def __init__(self, op: FetchOp, layout: dict[object, int]):
        self.column_positions: list[Optional[int]] = []
        const_values: list[Optional[tuple]] = []
        for part in op.key_parts:
            if part.source == "column":
                self.column_positions.append(layout[part.column])
                const_values.append(None)
            else:
                self.column_positions.append(None)
                const_values.append(part.values or ())

        # constant parts sharing the same values tuple (same equality class)
        # must take the same enumerated value
        const_groups: dict[int, list[int]] = {}
        for i, values in enumerate(const_values):
            if values is not None:
                const_groups.setdefault(id(values), []).append(i)
        self.group_value_lists = [
            const_values[positions[0]] for positions in const_groups.values()
        ]
        self.group_positions = list(const_groups.values())

        new_set = set(op.new_columns)
        self.x_new = [
            i
            for i, part in enumerate(op.key_parts)
            if Attribute(op.binding, part.attribute) in new_set
        ]
        y_names = op.constraint.y
        self.y_new = [
            i
            for i, name in enumerate(y_names)
            if Attribute(op.binding, name) in new_set
        ]
        self.y_existing = [
            (i, layout[Attribute(op.binding, name)])
            for i, name in enumerate(y_names)
            if Attribute(op.binding, name) not in new_set
        ]
        self.new_labels = [
            Attribute(op.binding, op.key_parts[i].attribute) for i in self.x_new
        ] + [Attribute(op.binding, y_names[i]) for i in self.y_new]

    def _const_combos(self):
        """Enumerated constant combinations, NULL-bearing ones skipped:
        a key part equal to NULL can never match (three-valued logic)."""
        if not self.group_value_lists:
            return ((),)
        return (
            combo
            for combo in itertools.product(*self.group_value_lists)
            if None not in combo
        )

    def keys_for(self, row: tuple, key_parts_len: int):
        """Yield the fully resolved key tuples for one input row (several
        when an IN-list enumerates constants); yields nothing when a key
        part — column-sourced or constant — is NULL."""
        for combo in self._const_combos():
            key = [None] * key_parts_len
            for group_index, positions in enumerate(self.group_positions):
                for position in positions:
                    key[position] = combo[group_index]
            valid = True
            for i, position in enumerate(self.column_positions):
                if position is not None:
                    value = row[position]
                    if value is None:
                        valid = False  # SQL: NULL never joins
                        break
                    key[i] = value
            if valid:
                yield tuple(key)

    def chunk_spec(self, parts_len: int, track_gather: bool) -> FetchChunkSpec:
        """The fetch-chunk kernel spec with slots = real intermediate
        positions (the in-process columnar path hands the kernel the full
        column list)."""
        return FetchChunkSpec(
            parts_len=parts_len,
            column_slots=tuple(self.column_positions),
            group_value_lists=tuple(self.group_value_lists),
            group_positions=tuple(tuple(p) for p in self.group_positions),
            x_new=tuple(self.x_new),
            y_new=tuple(self.y_new),
            y_existing=tuple(self.y_existing),
            track_gather=track_gather,
        )

    def wire_spec(
        self, parts_len: int, track_gather: bool
    ) -> tuple[FetchChunkSpec, list[int]]:
        """The same spec in compact *wire* terms: slots index the list of
        needed columns only, so a dispatched chunk pickles just the
        columns the key plan actually reads (key sources + existing-Y
        consistency checks), not the whole intermediate."""
        needed: list[int] = []
        slot_of: dict[int, int] = {}

        def slot(position: int) -> int:
            if position not in slot_of:
                slot_of[position] = len(needed)
                needed.append(position)
            return slot_of[position]

        column_slots = tuple(
            slot(position) if position is not None else None
            for position in self.column_positions
        )
        y_existing = tuple((i, slot(position)) for i, position in self.y_existing)
        spec = FetchChunkSpec(
            parts_len=parts_len,
            column_slots=column_slots,
            group_value_lists=tuple(self.group_value_lists),
            group_positions=tuple(tuple(p) for p in self.group_positions),
            x_new=tuple(self.x_new),
            y_new=tuple(self.y_new),
            y_existing=y_existing,
            track_gather=track_gather,
        )
        return spec, needed


class BoundedPlanExecutor:
    """Executes bounded plans; the only data access is via access indices."""

    def __init__(
        self,
        catalog: ASCatalog,
        *,
        dedup_keys: bool = False,
        executor: Optional[str] = None,
        rows_per_batch: Optional[int] = None,
        pool=None,
        dispatch: Optional[str] = None,
        fleet=None,
    ):
        """``pool`` is an :class:`~repro.engine.pool.EnginePool`, a
        zero-argument provider returning one (or ``None``) — BEAS passes
        a provider so workers fork only when pooled work actually runs —
        or ``None`` for in-process execution. ``fleet`` is the same
        shape for a :class:`~repro.distributed.fleet.ReplicaFleet`:
        covered bounded plans are offered to their co-located serving
        replica before the pool or the in-process pipeline."""
        self._catalog = catalog
        self._dedup_keys = dedup_keys
        self.executor = resolve_executor_mode(executor)
        self.rows_per_batch = resolve_rows_per_batch(rows_per_batch)
        self._pool = pool
        self._dispatch = resolve_dispatch(dispatch)
        self._fleet = fleet

    def _pool_active(self) -> Optional[EnginePool]:
        pool = self._pool
        if pool is not None and not isinstance(pool, EnginePool):
            pool = pool()  # lazy provider
        if pool is None or pool.closed:
            return None
        return pool

    def _fleet_active(self):
        fleet = self._fleet
        if fleet is not None and callable(fleet):
            fleet = fleet()  # lazy provider
        if fleet is None or fleet.closed:
            return None
        return fleet

    def _snapshot_state(self):
        """The warm-snapshot key for the catalog's current state plus the
        payload builder the pool pickles on a miss.

        The key is the access-schema generation and the data version of
        every table an access constraint covers — exactly the state a
        worker's indices reflect — so any maintenance on a covered table
        forces a fresh snapshot before the next dispatched task. The
        index map is captured at the same instant as the version vector
        (not when the pool later pickles it), keeping key and payload
        consistent; the serving layer's shard read locks additionally
        pin the indices' contents for the duration of an execute.
        """
        catalog = self._catalog
        database = catalog.database
        tables = {constraint.relation for constraint in catalog.schema}
        payload = catalog.index_map()
        versions = tuple(
            sorted(
                (name, database.table(name).version)
                for name in tables
                if name in database
            )
        )
        return (catalog.schema_generation, versions), lambda: payload

    # ------------------------------------------------------------------ #
    def execute(self, plan: AnyBoundedPlan) -> QueryResult:
        metrics = ExecutionMetrics()
        pool = self._pool_active()
        if self.executor == "columnar" or pool is not None:
            # pooled execution always runs the columnar pipeline (the wire
            # format is column batches); answers are mode-independent
            metrics.rows_per_batch = self.rows_per_batch
        start = time.perf_counter()
        fleet = self._fleet_active()
        if fleet is not None and isinstance(plan, BoundedPlan):
            outcome = self._execute_fleet_plan(fleet, plan)
            if outcome is not None:
                outcome.metrics.seconds = time.perf_counter() - start
                return outcome
            # the fleet could not serve it (no co-located replica, dead
            # replica, busy connection): fall through to pool/in-process
        if (
            pool is not None
            and self._dispatch in ("auto", "plan")
            and isinstance(plan, BoundedPlan)
        ):
            outcome = self._execute_pooled_plan(pool, plan)
            if outcome is not None:
                outcome.metrics.seconds = time.perf_counter() - start
                return outcome
            # the pooled dispatch was attempted but fell back in-process:
            # pool_workers below still describes the attempted shape, so
            # mark the outcome as (at least partly) serial
            metrics.pool_fallbacks += 1
        intermediate = self._run(plan, metrics)
        if pool is not None:
            metrics.pool_workers = pool.workers
        metrics.seconds = time.perf_counter() - start
        metrics.rows_output = len(intermediate.rows)
        columns = [
            label if isinstance(label, str) else str(label)
            for label in intermediate.labels
        ]
        return QueryResult(columns=columns, rows=intermediate.rows, metrics=metrics)

    def _execute_fleet_plan(self, fleet, plan: BoundedPlan) -> Optional[QueryResult]:
        """Serve the plan from its co-located replica; ``None`` falls
        back (to the pool branch, then in-process)."""
        outcome = fleet.execute_plan(
            plan,
            dedup=self._dedup_keys,
            rows_per_batch=self.rows_per_batch,
        )
        if outcome is None:
            return None
        columns, rows, metrics, wire, replica_id = outcome
        metrics.replica_id = replica_id
        metrics.wire_seconds = wire
        return QueryResult(columns=columns, rows=rows, metrics=metrics)

    def _execute_pooled_plan(
        self, pool: EnginePool, plan: BoundedPlan
    ) -> Optional[QueryResult]:
        """Ship the whole plan to one worker; ``None`` means fall back."""
        snapshot_key, payload_fn = self._snapshot_state()
        outcome = pool.execute_plan(
            snapshot_key,
            payload_fn,
            plan,
            dedup=self._dedup_keys,
            rows_per_batch=self.rows_per_batch,
        )
        if outcome is None:
            return None
        columns, rows, metrics, wait = outcome
        metrics.pool_workers = pool.workers
        metrics.pool_batches = metrics.batches
        metrics.pool_wait_seconds = wait
        return QueryResult(columns=columns, rows=rows, metrics=metrics)

    def _run(self, plan: AnyBoundedPlan, metrics: ExecutionMetrics) -> Intermediate:
        if isinstance(plan, SetOpPlan):
            left = self._run(plan.left, metrics)
            right = self._run(plan.right, metrics)
            node = SetOpNode(
                plan.op,
                MaterializedNode(left.labels, left.rows),
                MaterializedNode(right.labels, right.rows),
                plan.all,
            )
            executor = PhysicalExecutor(
                self._catalog.database, _NEUTRAL_PROFILE, metrics
            )
            return executor.run(node)
        if self.executor == "columnar" or self._pool_active() is not None:
            return self._run_select_columnar(plan, metrics)
        return self._run_select(plan, metrics)

    # ------------------------------------------------------------------ #
    # row mode
    # ------------------------------------------------------------------ #
    def _run_select(self, plan: BoundedPlan, metrics: ExecutionMetrics) -> Intermediate:
        intermediate = Intermediate(labels=[], rows=[()])
        for op in plan.ops:
            if isinstance(op, FetchOp):
                intermediate = self._fetch(op, intermediate, metrics)
            elif isinstance(op, SelectOp):
                intermediate = self._select(op, intermediate, metrics)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown bounded plan op {op!r}")

        # hand the final intermediate to the conventional tail operators
        tail = attach_tail(
            MaterializedNode(intermediate.labels, intermediate.rows),
            plan.cq,
            force_distinct=not plan.bag_exact,
        )
        executor = PhysicalExecutor(self._catalog.database, _NEUTRAL_PROFILE, metrics)
        return executor.run(tail)

    # ------------------------------------------------------------------ #
    def _fetch(
        self, op: FetchOp, intermediate: Intermediate, metrics: ExecutionMetrics
    ) -> Intermediate:
        start = time.perf_counter()
        index = self._catalog.index_for(op.constraint)
        key_plan = _KeyPlan(op, intermediate.layout)
        labels = intermediate.labels + key_plan.new_labels
        parts_len = len(op.key_parts)

        cache: dict[tuple, list[tuple]] = {}
        fetched = 0
        out_rows: list[tuple] = []
        for row in intermediate.rows:
            for key_tuple in key_plan.keys_for(row, parts_len):
                if self._dedup_keys:
                    if key_tuple in cache:
                        bucket = cache[key_tuple]
                    else:
                        bucket = index.fetch(key_tuple)
                        cache[key_tuple] = bucket
                        fetched += len(bucket)
                else:
                    bucket = index.fetch(key_tuple)
                    fetched += len(bucket)
                x_extension = tuple(key_tuple[i] for i in key_plan.x_new)
                for y_value in bucket:
                    # consistency with already-materialised Y columns
                    if any(
                        y_value[i] != row[pos] for i, pos in key_plan.y_existing
                    ):
                        continue
                    out_rows.append(
                        row
                        + x_extension
                        + tuple(y_value[i] for i in key_plan.y_new)
                    )

        self._enforce_bound(op, fetched)
        metrics.tuples_fetched += fetched
        metrics.intermediate_rows += len(out_rows)
        metrics.record(
            f"fetch[{op.constraint.name}]({op.constraint.relation} as {op.binding})",
            len(intermediate.rows),
            len(out_rows),
            time.perf_counter() - start,
        )
        return Intermediate(labels, out_rows)

    # ------------------------------------------------------------------ #
    def _select(
        self, op: SelectOp, intermediate: Intermediate, metrics: ExecutionMetrics
    ) -> Intermediate:
        start = time.perf_counter()
        layout = intermediate.layout
        if op.kind == "selection":
            position = layout[op.column]
            allowed = set(op.values or ())
            rows = [
                row
                for row in intermediate.rows
                if row[position] is not None and row[position] in allowed
            ]
        elif op.kind == "equality":
            a = layout[op.column]
            b = layout[op.other]
            rows = [
                row
                for row in intermediate.rows
                if row[a] is not None and row[a] == row[b]
            ]
        else:
            predicate = compile_predicate(op.predicate, layout)
            rows = [row for row in intermediate.rows if predicate(row)]
        metrics.record(
            op.describe(), len(intermediate.rows), len(rows), time.perf_counter() - start
        )
        return Intermediate(intermediate.labels, rows)

    # ------------------------------------------------------------------ #
    # columnar mode
    # ------------------------------------------------------------------ #
    def _run_select_columnar(
        self, plan: BoundedPlan, metrics: ExecutionMetrics
    ) -> Intermediate:
        intermediate = ColumnarIntermediate.seed()
        for op in plan.ops:
            if isinstance(op, FetchOp):
                intermediate = self._fetch_columnar(op, intermediate, metrics)
            elif isinstance(op, SelectOp):
                intermediate = self._select_columnar(op, intermediate, metrics)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown bounded plan op {op!r}")

        # the same conventional tail, interpreted batch-wise
        sentinel = MaterializedNode(intermediate.labels, [])
        tail = attach_tail(sentinel, plan.cq, force_distinct=not plan.bag_exact)
        chain = ColumnarTailExecutor.match(tail)
        if chain is None or chain.child is not sentinel:  # pragma: no cover
            # defensive: an unexpected tail shape falls back to row mode
            rows_tail = attach_tail(
                MaterializedNode(intermediate.labels, intermediate.to_rows()),
                plan.cq,
                force_distinct=not plan.bag_exact,
            )
            executor = PhysicalExecutor(
                self._catalog.database, _NEUTRAL_PROFILE, metrics
            )
            return executor.run(rows_tail)
        executor = ColumnarTailExecutor(metrics, self.rows_per_batch)
        return executor.run(chain, intermediate)

    # ------------------------------------------------------------------ #
    def _fetch_columnar(
        self,
        op: FetchOp,
        intermediate: ColumnarIntermediate,
        metrics: ExecutionMetrics,
    ) -> ColumnarIntermediate:
        """Batch fetch: resolve the key batch, gather all postings, then
        materialise the output column by column (no per-row tuples).

        With an attached pool (``dispatch`` allowing batch fan-out) the
        input batches are executed on worker processes via the same
        :func:`~repro.engine.pool.run_fetch_chunk` kernel the in-process
        path uses; batches the pool cannot serve run locally, and the
        merged accounting is identical either way.
        """
        start = time.perf_counter()
        index = self._catalog.index_for(op.constraint)
        key_plan = _KeyPlan(op, intermediate.layout)
        labels = intermediate.labels + key_plan.new_labels
        parts_len = len(op.key_parts)
        columns = intermediate.columns
        dedup = self._dedup_keys
        rows_in = intermediate.live_count
        # one gather position per output row (skipped entirely when there
        # are no input columns to replicate), plus the new columns' values
        track_gather = bool(columns)

        chunks = list(intermediate.iter_batches(self.rows_per_batch))
        metrics.batches += len(chunks)

        pool = self._pool_active()
        use_pool = (
            pool is not None
            and self._dispatch in ("auto", "batch")
            and len(chunks) > 1
            # cheap pre-flight: building the wire-format column copies is
            # the expensive part, so skip it when no worker looks idle
            # (racy, but losing the race only means one serial fetch)
            and pool.idle_count() > 0
        )
        if use_pool:
            spec, needed = key_plan.wire_spec(parts_len, track_gather)
            payloads = [
                ([[columns[p][i] for i in chunk] for p in needed], len(chunk))
                for chunk in chunks
            ]
            snapshot_key, payload_fn = self._snapshot_state()
            results, remote, wait = pool.run_fetch_chunks(
                snapshot_key,
                payload_fn,
                op.constraint.name,
                spec,
                payloads,
                dedup=dedup,
                local_fn=lambda payload: run_fetch_chunk(
                    index.fetch, spec, payload[0], range(payload[1]), dedup
                ),
            )
            metrics.pool_batches += remote
            metrics.pool_wait_seconds += wait
            # chunks the pool could not serve ran locally via local_fn
            metrics.pool_fallbacks += len(payloads) - remote
            if dedup:
                fetched = merge_dedup_counts(results)
            else:
                fetched = sum(result.fetched for result in results)
            # map chunk-local gathers back to global physical positions
            gather: list[int] = []
            if track_gather:
                for chunk, result in zip(chunks, results):
                    gather.extend(chunk[g] for g in result.gather)
        else:
            spec = key_plan.chunk_spec(parts_len, track_gather)
            cache: Optional[dict] = {} if dedup else None
            results = [
                run_fetch_chunk(index.fetch, spec, columns, chunk, dedup, cache)
                for chunk in chunks
            ]
            fetched = sum(result.fetched for result in results)
            gather = [g for result in results for g in result.gather]

        out_count = sum(result.out_count for result in results)
        new_x_columns = [
            [value for result in results for value in result.x_columns[k]]
            for k in range(len(key_plan.x_new))
        ]
        new_y_columns = [
            [value for result in results for value in result.y_columns[k]]
            for k in range(len(key_plan.y_new))
        ]

        self._enforce_bound(op, fetched)
        out_columns = [
            [column[g] for g in gather] for column in columns
        ] + new_x_columns + new_y_columns
        metrics.tuples_fetched += fetched
        metrics.intermediate_rows += out_count
        metrics.record(
            f"fetch[{op.constraint.name}]({op.constraint.relation} as {op.binding})",
            rows_in,
            out_count,
            time.perf_counter() - start,
        )
        return ColumnarIntermediate(labels, out_columns, out_count)

    # ------------------------------------------------------------------ #
    def _select_columnar(
        self,
        op: SelectOp,
        intermediate: ColumnarIntermediate,
        metrics: ExecutionMetrics,
    ) -> ColumnarIntermediate:
        """Column-wise filters: only the selection vector shrinks."""
        start = time.perf_counter()
        layout = intermediate.layout
        live = intermediate.live
        rows_in = intermediate.live_count
        if op.kind == "selection":
            column = intermediate.columns[layout[op.column]]
            allowed = set(op.values or ())
            sel = [
                i
                for i in live
                if (value := column[i]) is not None and value in allowed
            ]
        elif op.kind == "equality":
            a = intermediate.columns[layout[op.column]]
            b = intermediate.columns[layout[op.other]]
            sel = [
                i for i in live if (value := a[i]) is not None and value == b[i]
            ]
        else:
            columnar_predicate = compile_columnar_predicate(op.predicate, layout)
            sel = columnar_predicate(intermediate.columns, live)
        metrics.record(
            op.describe(), rows_in, len(sel), time.perf_counter() - start
        )
        return ColumnarIntermediate(
            intermediate.labels, intermediate.columns, intermediate.count, sel=sel
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _enforce_bound(op: FetchOp, fetched: int) -> None:
        if fetched > op.access_bound:
            raise ExecutionError(
                f"fetch {op.constraint.name} accessed {fetched} tuples, "
                f"exceeding its deduced bound {op.access_bound}; "
                "the dataset no longer conforms to the access schema"
            )
