"""Bound deduction reporting.

The arithmetic itself happens during plan generation (every
:class:`~repro.bounded.plan.FetchOp` carries its deduced bounds); this
module renders the result the way the demo's Fig. 2(B) does — each fetch
annotated with an upper bound on the amount of data it can access — and
gives programmatic access for the budget feature and bench E4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bounded.plan import AnyBoundedPlan, BoundedPlan, FetchOp, SetOpPlan


@dataclass(frozen=True)
class FetchBound:
    """Deduced bounds for one fetch operation."""

    constraint_name: str
    relation: str
    binding: str
    n: int
    key_bound: int
    access_bound: int
    tight_access_bound: int


@dataclass
class BoundSummary:
    """All per-fetch bounds plus plan totals."""

    fetches: list[FetchBound]
    access_bound: int
    tight_access_bound: int
    output_bound: int

    def describe(self) -> str:
        lines = []
        for fetch in self.fetches:
            lines.append(
                f"fetch[{fetch.constraint_name}] on {fetch.relation} as "
                f"{fetch.binding}: <= {fetch.key_bound} keys x N={fetch.n} "
                f"= {fetch.access_bound} tuples (tight {fetch.tight_access_bound})"
            )
        lines.append(
            f"total access bound M = {self.access_bound} "
            f"(tight {self.tight_access_bound})"
        )
        return "\n".join(lines)


def deduce_bounds(plan: AnyBoundedPlan) -> BoundSummary:
    """Collect the bound annotations of ``plan`` into one summary."""
    fetches: list[FetchBound] = []

    def visit(node: AnyBoundedPlan) -> None:
        if isinstance(node, SetOpPlan):
            visit(node.left)
            visit(node.right)
            return
        assert isinstance(node, BoundedPlan)
        for op in node.ops:
            if isinstance(op, FetchOp):
                fetches.append(
                    FetchBound(
                        constraint_name=op.constraint.name,
                        relation=op.constraint.relation,
                        binding=op.binding,
                        n=op.constraint.n,
                        key_bound=op.key_bound,
                        access_bound=op.access_bound,
                        tight_access_bound=op.tight_access_bound,
                    )
                )

    visit(plan)
    output_bound = (
        plan.output_bound if isinstance(plan, BoundedPlan) else sum(
            f.access_bound for f in fetches
        )
    )
    return BoundSummary(
        fetches=fetches,
        access_bound=plan.access_bound,
        tight_access_bound=plan.tight_access_bound,
        output_bound=output_bound,
    )
