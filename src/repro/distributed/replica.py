"""The replica process: a socket-served snapshot peer.

A replica is the fleet's analogue of an engine-pool worker
(:func:`repro.engine.pool._worker_main`), promoted from a pipe to a TCP
socket and from ephemeral batch work to steady-state serving. It binds
``127.0.0.1:port`` on startup, accepts exactly one connection — its
coordinator — and then runs the snapshot protocol
(:mod:`repro.distributed.protocol`) until the connection ends:

* ``snapshot`` installs a pickled subset of the coordinator's access
  indices under a *(schema generation, version vector)* key.
* ``delta`` advances an installed snapshot in place by replaying
  maintenance records (rows codec-encoded exactly like WAL frames);
  any record the replica cannot apply answers ``unsupported`` and the
  coordinator re-ships the full snapshot instead — delta replay
  degrades to slower, never to wrong.
* ``plan`` executes a bounded plan over the installed indices — only
  when the task's key matches; otherwise ``stale`` with the installed
  key, and the coordinator re-ships. A replica therefore **never serves
  a read from an unsynced snapshot** (see ``docs/invariants.md``,
  *fleet discipline*).

Like pool workers, a replica holds only indices
(:class:`~repro.distributed.protocol.SnapshotCatalog`): it has no base
tables and physically cannot scan. The ``debug`` task carries the chaos
hooks the fleet suites drive, including ``corrupt_next_reply`` — the
wire-corruption fault injector (torn frame, CRC flip, implausible
length) that proves a bad frame degrades to coordinator-local serving.
"""

from __future__ import annotations

import os
import pickle
import socket
from typing import Optional

from repro.errors import ReproError
from repro.storage.codec import decode_row
from repro.storage.wal import MAX_FRAME_BYTES, frame_record
from repro.distributed.protocol import (
    MSG_DEBUG,
    MSG_DELTA,
    MSG_EXIT,
    MSG_PING,
    MSG_PLAN,
    MSG_SNAPSHOT,
    REPLY_OK,
    REPLY_PONG,
    REPLY_RAISE,
    REPLY_RESULT,
    REPLY_STALE,
    REPLY_UNSUPPORTED,
    SnapshotCatalog,
    WireError,
    describe_error,
    recv_message,
    send_frame,
)

#: replicas are serving-tier processes on the coordinator's host; the
#: fleet never listens on an external interface
FLEET_HOST = "127.0.0.1"

#: exit codes, distinguishable in a worker post-mortem
EXIT_KILLED = 17  # chaos hook: same code the pool's die hook uses
EXIT_BIND_FAILED = 21
EXIT_NO_COORDINATOR = 22

#: how long a fresh replica waits for its coordinator to connect
ACCEPT_TIMEOUT_SECONDS = 30.0


# --------------------------------------------------------------------------- #
# delta replay (the socket twin of MmapStore._apply_record)
# --------------------------------------------------------------------------- #
def apply_delta_records(indexes: dict, records: list[dict]) -> None:
    """Replay maintenance records onto the installed index subset.

    Rows arrive codec-encoded (the WAL's record shape); each decoded row
    is applied to every held index on the record's table. Raises on
    anything it cannot apply — the serve loop reports ``unsupported``
    and the coordinator falls back to a full snapshot ship.
    """
    for record in records:
        op = record["op"]
        table = record["table"]
        dtypes = record["dtypes"]
        rows = [decode_row(cells, dtypes) for cells in record["rows"]]
        targets = [
            index
            for index in indexes.values()
            if index.constraint.relation == table
        ]
        if op == "insert":
            for index in targets:
                for row in rows:
                    # validate=False: the coordinator already type-checked
                    # the batch when it committed it
                    index.insert_row(row, validate=False)
        elif op == "delete":
            for index in targets:
                for row in rows:
                    index.delete_row(row)
        else:
            raise ReproError(f"unknown delta op {op!r}")


# --------------------------------------------------------------------------- #
# the serve loop
# --------------------------------------------------------------------------- #
def _run_plan(indexes: dict, task: tuple) -> tuple:  # pragma: no cover - subprocess
    _, _, plan, dedup, rows_per_batch = task
    try:
        # imported lazily: the executor pulls in the full engine stack,
        # which the replica only needs once it actually serves
        from repro.bounded.executor import BoundedPlanExecutor

        executor = BoundedPlanExecutor(
            SnapshotCatalog(indexes),
            dedup_keys=dedup,
            executor="columnar",
            rows_per_batch=rows_per_batch,
        )
        result = executor.execute(plan)
        return (REPLY_RESULT, result.columns, result.rows, result.metrics)
    except ReproError as error:
        # semantic failure (bound exceeded, type error): identical to the
        # in-process outcome, so it must propagate, not fall back
        return (REPLY_RAISE, error)
    except Exception as error:  # noqa: BLE001 - infra failure -> coordinator-local fallback
        return (REPLY_UNSUPPORTED, describe_error(error))


def _send_reply(
    sock: socket.socket, message: tuple, corrupt: Optional[str]
) -> None:  # pragma: no cover - subprocess
    """Send one reply, optionally injecting a wire fault first.

    The fault modes mirror the WAL-tail corruption classes
    (``tests/test_storage_persistence.py``): ``truncate`` sends a torn
    prefix and shuts the stream (partial header / short payload on the
    coordinator), ``crc`` flips a payload byte under an honest header,
    ``length`` rewrites the header to an implausible frame length.
    """
    if corrupt is None:
        send_frame(sock, pickle.dumps(message, pickle.HIGHEST_PROTOCOL))
        return
    frame = frame_record(pickle.dumps(message, pickle.HIGHEST_PROTOCOL))
    try:
        if corrupt == "truncate":
            sock.sendall(frame[: max(1, len(frame) // 2)])
            # half a frame then EOF: the coordinator must fail fast on
            # the closed stream, not wait out its task timeout
            sock.shutdown(socket.SHUT_WR)
        elif corrupt == "crc":
            torn = bytearray(frame)
            torn[-1] ^= 0xFF  # last payload byte: header stays honest
            sock.sendall(bytes(torn))
        elif corrupt == "length":
            bad_length = (MAX_FRAME_BYTES + 1).to_bytes(4, "little")
            sock.sendall(bad_length + frame[4:])
        else:
            # unknown mode: send the truthful reply; the debug call that
            # set the mode already answered ok, so failing here would
            # just wedge the test
            sock.sendall(frame)
    except OSError as error:
        raise WireError(f"socket send failed: {error}") from error


def _serve(sock: socket.socket, replica_id: int) -> None:  # pragma: no cover - subprocess
    installed_key: Optional[tuple] = None
    indexes: dict = {}
    die_next = False
    corrupt_next: Optional[str] = None
    arm_corrupt: Optional[str] = None
    while True:
        try:
            task = recv_message(sock)
        except WireError:
            # the coordinator hung up or the stream died: a replica
            # without its coordinator has nothing to serve
            return
        kind = task[0]
        if kind == MSG_EXIT:
            return
        if kind == MSG_PING:
            reply: tuple = (REPLY_PONG, os.getpid(), replica_id)
        elif kind == MSG_DEBUG:
            action = task[1]
            if action == "die":
                os._exit(EXIT_KILLED)
            if action == "die_on_next_task":
                die_next = True
                reply = (REPLY_OK,)
            elif action == "sleep":
                import time

                time.sleep(task[2])
                reply = (REPLY_OK,)
            elif action == "set_snapshot_key":
                # chaos hook: claim a key without holding its data —
                # simulates a replica whose snapshot silently went stale
                installed_key = task[2]
                reply = (REPLY_OK,)
            elif action == "corrupt_next_reply":
                # armed only after this ok is acked cleanly: the fault
                # hits the *next* reply, not the hook's own confirmation
                arm_corrupt = task[2]
                reply = (REPLY_OK,)
            else:
                reply = (REPLY_UNSUPPORTED, f"unknown debug action {action!r}")
        elif kind == MSG_SNAPSHOT:
            installed_key = task[1]
            indexes = task[2]
            reply = (REPLY_OK,)
        elif kind == MSG_DELTA:
            try:
                apply_delta_records(indexes, task[2])
                installed_key = task[1]
                reply = (REPLY_OK,)
            except Exception as error:  # noqa: BLE001 - an unapplicable delta reports back and the coordinator re-ships the full snapshot
                reply = (REPLY_UNSUPPORTED, describe_error(error))
        else:
            if die_next:
                os._exit(EXIT_KILLED)
            expected_key = task[1]
            if expected_key != installed_key:
                reply = (REPLY_STALE, installed_key)
            elif kind == MSG_PLAN:
                reply = _run_plan(indexes, task)
            else:
                reply = (REPLY_UNSUPPORTED, f"unknown task kind {kind!r}")
        try:
            _send_reply(sock, reply, corrupt_next)
        except WireError:
            return
        corrupt_next, arm_corrupt = arm_corrupt, None


def replica_main(port: int, replica_id: int) -> None:  # pragma: no cover - subprocess
    """Entry point of one replica process: bind, accept, serve, exit."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        listener.bind((FLEET_HOST, port))
        listener.listen(1)
    except OSError:
        listener.close()
        os._exit(EXIT_BIND_FAILED)
    listener.settimeout(ACCEPT_TIMEOUT_SECONDS)
    try:
        sock, _ = listener.accept()
    except OSError:
        listener.close()
        os._exit(EXIT_NO_COORDINATOR)
    listener.close()
    sock.settimeout(None)
    # the protocol is small request/reply frames: Nagle plus delayed-ACK
    # would stall each round-trip; the coordinator disables it too
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        _serve(sock, replica_id)
    finally:
        try:
            sock.close()
        except OSError:
            pass
