"""The serving fleet: a coordinator's client for socket-served replicas.

The :class:`ReplicaFleet` is the distributed tier's master half: it
spawns N :mod:`repro.distributed.replica` processes on
``127.0.0.1:port_base + i``, places access constraints across them, and
dispatches covered bounded plans to whichever replica co-locates every
constraint the plan uses — speaking the snapshot protocol the engine
pool pioneered (:mod:`repro.distributed.protocol`), now over TCP.

**Placement** is by access-constraint group: the sorted constraint
names round-robin across replicas, so two constraints over the same hot
table land on *different* replicas — one table's slices finally split
across serving processes instead of serialising on a single shard
owner. Placement is recomputed whenever the catalog's schema generation
moves.

**Writes stay on the coordinator.** Maintenance commits locally (WAL,
version bump), then :meth:`note_insert` / :meth:`note_delete` append
the batch — rows codec-encoded, exactly the WAL's record shape — to a
bounded per-table delta tail. A replica that answers ``stale`` is
caught up with the cheapest re-ship that is provably sufficient: the
delta tail when it covers the replica's installed version vector
contiguously, the full pickled index subset otherwise (schema change,
evicted tail, or a replica that cannot apply the delta).

**Failure is never an answer.** A dead replica, a torn frame, a CRC
mismatch, a wedged socket past the task timeout, or a second ``stale``
after a re-ship all make the dispatch return ``None`` — the executor
runs the plan in-coordinator (the engine pool's graceful-degradation
contract) and the failure shows up in :class:`FleetStats`, never in a
row set.
"""

from __future__ import annotations

import multiprocessing
import pickle
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro import config
from repro.errors import BEASError
from repro.storage.codec import canonical_key, encode_row
from repro.distributed.protocol import (
    MSG_DEBUG,
    MSG_DELTA,
    MSG_EXIT,
    MSG_PING,
    MSG_PLAN,
    MSG_SNAPSHOT,
    REPLY_OK,
    REPLY_RAISE,
    REPLY_RESULT,
    StalePeer,
    WireError,
    compute_with_stale_retry,
    connect_with_retry,
    recv_message,
    send_frame,
    send_message,
    snapshot_key,
)
from repro.distributed.replica import FLEET_HOST, replica_main

#: per-table delta-tail capacity; a replica further behind than this
#: many maintenance batches is caught up with a full snapshot instead
DELTA_TAIL_RECORDS = 64

#: a permanently flapping replica (port conflict, crash loop) stops
#: being respawned after this many attempts and serves nothing
RESPAWN_BUDGET = 3

_ROUTE_MISS = object()


@dataclass
class FleetStats:
    """Cumulative counters for one :class:`ReplicaFleet`."""

    replicas: int = 0
    alive: int = 0
    plans_dispatched: int = 0
    serves: dict[int, int] = field(default_factory=dict)  # replica -> plans
    snapshots_sent: int = 0
    delta_reships: int = 0
    delta_records_shipped: int = 0
    bytes_shipped: int = 0  # wire bytes of snapshot + delta installs
    stale_reships: int = 0  # stale replies that triggered a re-ship
    failovers: int = 0  # dispatches that failed over on replica death
    respawns: int = 0
    routing_misses: int = 0  # plans no single replica co-locates
    fallbacks: int = 0  # dispatches served in-coordinator for any reason
    wait_seconds: float = 0.0  # time spent acquiring replica connections
    wire_seconds: float = 0.0  # total socket roundtrip time of serves

    def describe(self) -> str:
        per_replica = " ".join(
            f"r{replica_id}:{count}"
            for replica_id, count in sorted(self.serves.items())
        )
        return (
            f"serving fleet: {self.alive}/{self.replicas} replicas alive, "
            f"{self.plans_dispatched} plans served"
            f"{f' ({per_replica})' if per_replica else ''}, "
            f"{self.snapshots_sent} snapshots + {self.delta_reships} delta "
            f"reships shipped ({self.bytes_shipped} B, "
            f"{self.delta_records_shipped} records), {self.stale_reships} "
            f"stale reships, {self.failovers} failovers "
            f"({self.respawns} respawns), {self.routing_misses} routing "
            f"misses, {self.fallbacks} fallbacks, "
            f"wire {self.wire_seconds * 1000:.2f} ms"
        )


class _Replica:
    """One replica process plus the coordinator-side bookkeeping."""

    __slots__ = (
        "id",
        "port",
        "process",
        "sock",
        "snapshot_key",
        "alive",
        "lock",
        "respawn_budget",
    )

    def __init__(self, replica_id: int, port: int):
        self.id = replica_id
        self.port = port
        self.process = None
        self.sock: Optional[socket.socket] = None
        self.snapshot_key: Optional[tuple] = None
        self.alive = False
        # one dispatch at a time per socket: the connection is a serial
        # request/reply stream, exactly like a pool worker's pipe
        self.lock = threading.Lock()
        self.respawn_budget = RESPAWN_BUDGET


class ReplicaFleet:
    """N socket-connected read replicas behind one coordinator.

    Thread-safe: serving threads dispatch concurrently, one in-flight
    task per replica connection; a busy replica's lock is waited on only
    up to ``acquire_timeout`` before the dispatch falls back
    in-coordinator. Replicas are daemonic processes, so an abandoned
    fleet cannot outlive the interpreter; :meth:`close` shuts them down
    deterministically.
    """

    def __init__(
        self,
        catalog,
        *,
        replicas: int,
        port_base: int,
        start_method: Optional[str] = None,
        acquire_timeout: float = 0.05,
        task_timeout: float = 120.0,
        connect_timeout: float = 10.0,
    ):
        if replicas < 2:
            raise BEASError(
                f"a fleet needs >= 2 replicas, got {replicas} "
                f"(1 means in-process serving; no fleet is spawned)"
            )
        self._catalog = catalog
        self.replicas = replicas
        self.port_base = port_base
        self.acquire_timeout = acquire_timeout
        self.task_timeout = task_timeout
        self.connect_timeout = connect_timeout
        method = start_method or config.env_pool_start_method()
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else "spawn"
        self._context = multiprocessing.get_context(method)
        self._closed = False
        self._stats = FleetStats(replicas=replicas)
        self._stats_lock = threading.Lock()
        # placement: constraint name -> replica id, rebuilt per schema
        # generation; the route cache maps a plan's constraint-name set
        # to the one replica co-locating it (or None)
        self._placement: dict[str, int] = {}
        self._relation_of: dict[str, str] = {}
        self._placement_generation: Optional[int] = None
        self._placement_lock = threading.Lock()
        self._route_cache: dict[tuple, Optional[int]] = {}
        # the delta tail: per-table maintenance records since the oldest
        # version any replica may still hold (bounded; see _delta_for)
        self._tail: dict[str, deque] = {}
        self._tail_lock = threading.Lock()
        self._replicas = [
            _Replica(i, port_base + i) for i in range(replicas)
        ]
        for replica in self._replicas:
            self._launch(replica)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _launch(self, replica: _Replica) -> bool:
        """Start one replica process and connect to it; on failure the
        replica is left dead (its routed plans serve in-coordinator)."""
        process = self._context.Process(
            target=replica_main,
            args=(replica.port, replica.id),
            name=f"beas-fleet-replica-{replica.id}",
            daemon=True,
        )
        process.start()
        replica.process = process
        sock = connect_with_retry(
            (FLEET_HOST, replica.port),
            deadline_seconds=self.connect_timeout,
        )
        if sock is None:
            try:
                process.terminate()
            except (OSError, ValueError):
                pass
            replica.alive = False
            return False
        # request/reply over one stream: Nagle's algorithm would add a
        # delayed-ACK stall to every small task frame
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self.task_timeout)
        replica.sock = sock
        replica.snapshot_key = None
        replica.alive = True
        return True

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut every replica down; in-flight dispatches finish first
        (each connection is owned by its lock holder until released)."""
        self._closed = True
        for replica in self._replicas:
            acquired = replica.lock.acquire(timeout=2.0)
            try:
                if replica.alive and replica.sock is not None:
                    try:
                        send_message(replica.sock, (MSG_EXIT,))
                    except WireError:
                        pass
                self._drop_connection(replica)
                process = replica.process
                if process is not None:
                    process.join(timeout=2.0)
                    if process.is_alive():  # pragma: no cover - stuck replica
                        process.terminate()
                        process.join(timeout=1.0)
                replica.alive = False
            finally:
                if acquired:
                    replica.lock.release()

    def __enter__(self) -> "ReplicaFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-time best effort
        try:
            if not self._closed:
                self.close()
        except Exception:  # beaslint: ok(except-discipline) - GC-time best effort; __del__ must never raise
            pass

    def _drop_connection(self, replica: _Replica) -> None:
        sock, replica.sock = replica.sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        replica.snapshot_key = None

    def _note_death(self, replica: _Replica) -> None:
        """Caller holds ``replica.lock``."""
        replica.alive = False
        self._drop_connection(replica)

    def _respawn(self, replica: _Replica) -> bool:
        """Caller holds ``replica.lock``. One respawn attempt, against a
        bounded budget so a crash-looping replica cannot stall serving."""
        if self._closed or replica.respawn_budget <= 0:
            return False
        replica.respawn_budget -= 1
        self._drop_connection(replica)
        process = replica.process
        if process is not None and process.is_alive():
            try:
                process.terminate()
                process.join(timeout=1.0)
            except (OSError, ValueError):  # pragma: no cover
                pass
        if not self._launch(replica):
            return False
        with self._stats_lock:
            self._stats.respawns += 1
        return True

    # ------------------------------------------------------------------ #
    # placement + routing
    # ------------------------------------------------------------------ #
    def _refresh_placement(self) -> None:
        generation = self._catalog.schema_generation
        if generation == self._placement_generation:
            return
        with self._placement_lock:
            if generation == self._placement_generation:
                return
            constraints = sorted(
                self._catalog.schema, key=lambda c: c.name
            )
            # round-robin over the sorted names: constraints of one hot
            # table spread across replicas instead of stacking on one
            self._relation_of = {c.name: c.relation for c in constraints}
            self._placement = {
                constraint.name: position % self.replicas
                for position, constraint in enumerate(constraints)
            }
            self._route_cache = {}
            self._placement_generation = generation

    def placement(self) -> dict[str, int]:
        """Constraint name -> replica id (current schema generation)."""
        self._refresh_placement()
        with self._placement_lock:
            return dict(self._placement)

    def _route(self, plan) -> Optional[int]:
        """The one replica holding every constraint the plan uses, or
        ``None`` when no replica co-locates them all."""
        names = tuple(sorted(c.name for c in plan.constraints_used))
        if not names:
            return None
        cached = self._route_cache.get(names, _ROUTE_MISS)
        if cached is not _ROUTE_MISS:
            return cached
        with self._placement_lock:
            placement = self._placement
            target: Optional[int] = placement.get(names[0])
            if target is not None:
                for name in names[1:]:
                    if placement.get(name) != target:
                        target = None
                        break
            self._route_cache[names] = target
        return target

    def _replica_versions(self, replica_id: int) -> dict[str, int]:
        database = self._catalog.database
        with self._placement_lock:
            tables = {
                self._relation_of[name]
                for name, owner in self._placement.items()
                if owner == replica_id
            }
        return {
            name: database.table(name).version
            for name in sorted(tables)
            if name in database
        }

    def _capture_key(self, replica_id: int) -> tuple:
        return snapshot_key(
            self._catalog.schema_generation,
            self._replica_versions(replica_id),
        )

    def _capture_subset(self, replica_id: int) -> dict:
        index_map = self._catalog.index_map()
        with self._placement_lock:
            placement = dict(self._placement)
        return {
            name: index
            for name, index in index_map.items()
            if placement.get(name) == replica_id
        }

    # ------------------------------------------------------------------ #
    # the delta tail (fed by the coordinator's maintenance path)
    # ------------------------------------------------------------------ #
    def note_insert(self, table, rows, prev_version: Optional[int]) -> None:
        """Record one committed insert batch for delta re-ship."""
        dtypes = [column.dtype for column in table.schema.columns]
        self._note_maintenance(
            "insert",
            table,
            [encode_row(row, dtypes) for row in rows],
            dtypes,
            prev_version,
        )

    def note_delete(self, table, rows, prev_version: Optional[int]) -> None:
        """Record one committed delete batch for delta re-ship."""
        dtypes = [column.dtype for column in table.schema.columns]
        self._note_maintenance(
            "delete",
            table,
            [encode_row(canonical_key(row), dtypes) for row in rows],
            dtypes,
            prev_version,
        )

    def _note_maintenance(
        self,
        op: str,
        table,
        encoded_rows: list,
        dtypes: list,
        prev_version: Optional[int],
    ) -> None:
        record = {
            "op": op,
            "table": table.schema.name,
            "rows": encoded_rows,
            "dtypes": dtypes,
            "prev": prev_version,
            "version": table.version,
        }
        with self._tail_lock:
            tail = self._tail.get(table.schema.name)
            if tail is None:
                tail = deque(maxlen=DELTA_TAIL_RECORDS)
                self._tail[table.schema.name] = tail
            tail.append(record)

    def _delta_for(
        self, old_key: Optional[tuple], new_key: tuple
    ) -> Optional[list]:
        """The record chain advancing ``old_key`` to ``new_key``, or
        ``None`` when only a full snapshot is provably sufficient."""
        if old_key is None:
            return None
        old_generation, old_versions = old_key
        new_generation, new_versions = new_key
        if old_generation != new_generation:
            # a schema change may have added/dropped constraints or
            # adjusted bounds: re-ship the subset, never patch over it
            return None
        old_map = dict(old_versions)
        new_map = dict(new_versions)
        if set(old_map) != set(new_map):
            return None
        records: list[dict] = []
        with self._tail_lock:
            for name in sorted(new_map):
                old_version = old_map[name]
                new_version = new_map[name]
                if old_version == new_version:
                    continue
                cursor = old_version
                for record in self._tail.get(name, ()):
                    if record["version"] <= cursor:
                        continue
                    if record["prev"] != cursor:
                        return None  # gap (evicted tail): not contiguous
                    records.append(record)
                    cursor = record["version"]
                    if cursor == new_version:
                        break
                if cursor != new_version:
                    return None
        return records

    # ------------------------------------------------------------------ #
    # the wire
    # ------------------------------------------------------------------ #
    def _roundtrip(self, replica: _Replica, task: tuple) -> tuple:
        send_message(replica.sock, task)
        return recv_message(replica.sock)

    def _ensure_snapshot(self, replica: _Replica, key: tuple) -> None:
        """Install ``key`` on the replica: the delta tail when it covers
        the replica's installed vector, the full subset otherwise."""
        if replica.snapshot_key == key:
            return
        delta = self._delta_for(replica.snapshot_key, key)
        if delta is not None:
            sent = send_message(replica.sock, (MSG_DELTA, key, delta))
            reply = recv_message(replica.sock)
            if reply[0] == REPLY_OK:
                replica.snapshot_key = key
                with self._stats_lock:
                    self._stats.delta_reships += 1
                    self._stats.delta_records_shipped += len(delta)
                    self._stats.bytes_shipped += sent
                return
            # the replica could not apply the delta: its installed state
            # is now unknown, so fall through to the full snapshot
            replica.snapshot_key = None
        subset = self._capture_subset(replica.id)
        try:
            payload = pickle.dumps(
                (MSG_SNAPSHOT, key, subset), pickle.HIGHEST_PROTOCOL
            )
        except Exception as error:  # noqa: BLE001 - a snapshot that cannot serialize (mid-mutation index, exotic value) must fail over, not crash the serving thread
            raise WireError(f"snapshot failed to serialize: {error}") from error
        sent = send_frame(replica.sock, payload)
        reply = recv_message(replica.sock)
        if reply[0] != REPLY_OK:  # pragma: no cover - defensive
            raise WireError(f"snapshot install failed: {reply[0]!r}")
        replica.snapshot_key = key
        with self._stats_lock:
            self._stats.snapshots_sent += 1
            self._stats.bytes_shipped += sent

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def execute_plan(
        self, plan, *, dedup: bool, rows_per_batch: int
    ) -> Optional[tuple]:
        """Serve one bounded plan from its co-located replica.

        Returns ``(columns, rows, metrics, wire_seconds, replica_id)``
        on success or ``None`` when the fleet cannot serve it (no
        co-locating replica, busy connection, replica death, corrupt
        wire) — the caller executes in-coordinator. Semantic errors
        raised by the plan itself propagate, exactly as on a pool
        worker.
        """
        if self._closed:
            return None
        self._refresh_placement()
        replica_id = self._route(plan)
        if replica_id is None:
            with self._stats_lock:
                self._stats.routing_misses += 1
                self._stats.fallbacks += 1
            return None
        replica = self._replicas[replica_id]
        start = time.perf_counter()
        if not replica.lock.acquire(timeout=self.acquire_timeout):
            with self._stats_lock:
                self._stats.wait_seconds += time.perf_counter() - start
                self._stats.fallbacks += 1
            return None
        try:
            with self._stats_lock:
                self._stats.wait_seconds += time.perf_counter() - start
            if not replica.alive and not self._respawn(replica):
                with self._stats_lock:
                    self._stats.fallbacks += 1
                return None
            key = self._capture_key(replica_id)
            task = (MSG_PLAN, key, plan, dedup, rows_per_batch)

            def on_stale() -> None:
                with self._stats_lock:
                    self._stats.stale_reships += 1
                replica.snapshot_key = None

            try:
                reply = compute_with_stale_retry(
                    ensure=lambda: self._ensure_snapshot(replica, key),
                    roundtrip=lambda: self._roundtrip(replica, task),
                    on_stale=on_stale,
                )
            except (WireError, StalePeer):
                # the connection or the replica is gone: tear it down
                # and serve this plan in-coordinator; the next dispatch
                # routed here attempts a respawn
                self._note_death(replica)
                with self._stats_lock:
                    self._stats.failovers += 1
                    self._stats.fallbacks += 1
                return None
            wire = time.perf_counter() - start
            if reply[0] == REPLY_RESULT:
                with self._stats_lock:
                    self._stats.plans_dispatched += 1
                    self._stats.serves[replica_id] = (
                        self._stats.serves.get(replica_id, 0) + 1
                    )
                    self._stats.wire_seconds += wire
                return reply[1], reply[2], reply[3], wire, replica_id
            if reply[0] == REPLY_RAISE:
                # semantic failure (bound exceeded, type error): the
                # in-process outcome would be identical, so it propagates
                raise reply[1]
            with self._stats_lock:  # unsupported
                self._stats.fallbacks += 1
            return None
        finally:
            replica.lock.release()

    # ------------------------------------------------------------------ #
    # introspection / chaos hooks
    # ------------------------------------------------------------------ #
    def stats(self) -> FleetStats:
        with self._stats_lock:
            snapshot = replace(self._stats, serves=dict(self._stats.serves))
        snapshot.alive = sum(
            1
            for replica in self._replicas
            if replica.alive
            and replica.process is not None
            and replica.process.is_alive()
        )
        return snapshot

    def debug(self, action: str, *args: Any, replica_id: int = 0) -> tuple:
        """Send a chaos hook to one replica (``die``,
        ``die_on_next_task``, ``sleep``, ``set_snapshot_key``,
        ``corrupt_next_reply``, ``ping``)."""
        replica = self._replicas[replica_id]
        with replica.lock:
            if not replica.alive and not self._respawn(replica):
                raise BEASError(f"replica {replica_id} is not alive")
            try:
                if action == "ping":
                    return self._roundtrip(replica, (MSG_PING,))
                return self._roundtrip(
                    replica, (MSG_DEBUG, action, *args)
                )
            except WireError as error:
                self._note_death(replica)
                if action == "die":
                    # the hook's purpose: the process is gone before it
                    # can reply, and that is the success condition
                    return (REPLY_OK,)
                raise BEASError(
                    f"debug {action!r} failed: {error}"
                ) from error

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return f"ReplicaFleet({self.replicas} replicas, {state})"
