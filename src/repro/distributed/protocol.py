"""The snapshot protocol, extracted from the engine pool and put on a wire.

``engine/pool.py`` (PR 4) invented the conversation this module now
owns: a master ships a catalog snapshot keyed by *(schema generation,
per-table version vector)*; a peer answers compute tasks only when the
task's key matches its installed snapshot, replying ``stale`` with what
it has installed otherwise; the master re-ships and retries exactly
once. The pool spoke that protocol over ``multiprocessing`` pipes; the
serving fleet (:mod:`repro.distributed.fleet`) speaks it over TCP
sockets to replica processes. The vocabulary — task kinds, reply tags,
the stale-retry state machine, the indices-only peer catalog — lives
here so the two transports cannot drift apart.

Wire framing reuses the WAL's ``u32 len | u32 crc32 | payload`` frame
(:func:`repro.storage.wal.frame_record`): one format for disk, shared
memory, and sockets. Frame payloads are pickled task/reply tuples whose
row values are already codec-encoded strings
(:mod:`repro.storage.codec`) — the socket never invents its own value
coding. Any framing violation (EOF mid-frame, an implausible length, a
CRC mismatch, an unpicklable payload) raises :class:`WireError`; a
corrupt stream is never resynchronised, the connection is torn down and
the dispatch fails over to coordinator-local execution.
"""

from __future__ import annotations

import pickle
import socket
from typing import Any, Callable, Optional

from repro.errors import ReproError, StorageError
from repro.storage.wal import (
    FRAME_HEADER_BYTES,
    frame_payload_matches,
    frame_record,
    split_frame_header,
)

# --------------------------------------------------------------------------- #
# the shared vocabulary (tags predate this module: the pool's pipe wire
# already speaks them, so they are string constants, not an enum)
# --------------------------------------------------------------------------- #
MSG_EXIT = "exit"
MSG_PING = "ping"
MSG_DEBUG = "debug"
MSG_SNAPSHOT = "snapshot"
MSG_SNAPSHOT_SHM = "snapshot_shm"
MSG_DELTA = "delta"
MSG_PLAN = "plan"
MSG_FETCH = "fetch"

REPLY_OK = "ok"
REPLY_PONG = "pong"
REPLY_STALE = "stale"
REPLY_RESULT = "result"
REPLY_CHUNKS = "chunks"
REPLY_RAISE = "raise"
REPLY_UNSUPPORTED = "unsupported"
REPLY_SHM_FAILED = "shm-failed"

#: one receive buffer's worth of socket payload
_RECV_CHUNK = 1 << 20


def describe_error(error: BaseException) -> str:
    """The unsupported-reply rendering of an exception (class + message).

    The pool's pipe wire used ``repr``; the codec rule bans ad-hoc
    ``repr`` coding in wire modules, and the class name plus message is
    the part a fallback log actually needs.
    """
    return f"{type(error).__name__}: {error}"


class SnapshotCatalog:
    """The peer-side stand-in for ``ASCatalog``: indices only.

    ``database`` is deliberately ``None`` — a snapshot peer (pool worker
    or fleet replica) must never scan base data; any plan shape that
    would need it is reported back as unsupported and re-executed
    in-process by the coordinator.
    """

    def __init__(self, indexes: dict):
        self._indexes = indexes
        self.database = None

    def index_for(self, constraint) -> Any:
        index = self._indexes.get(constraint.name)
        if index is None:
            raise ReproError(
                f"worker snapshot has no index for {constraint.name!r}"
            )
        return index


class StalePeer(Exception):
    """Internal: the peer's snapshot stayed stale after a re-ship."""


def compute_with_stale_retry(
    *,
    ensure: Callable[[], None],
    roundtrip: Callable[[], tuple],
    on_stale: Callable[[], None],
) -> tuple:
    """The protocol's core state machine, shared by pool and fleet.

    ``ensure`` installs the snapshot if the peer's bookkeeping says it
    is missing; ``roundtrip`` sends the compute task and returns the
    reply; ``on_stale`` records the retry and invalidates the local
    bookkeeping so ``ensure`` re-ships. A peer that answers ``stale``
    twice is lying about its installs and is reported dead via
    :class:`StalePeer` — the caller fails over, it never loops.
    """
    ensure()
    reply = roundtrip()
    if reply[0] == REPLY_STALE:
        on_stale()
        ensure()
        reply = roundtrip()
        if reply[0] == REPLY_STALE:
            raise StalePeer("peer snapshot remained stale after resend")
    return reply


def snapshot_key(
    schema_generation: int, versions: dict[str, int]
) -> tuple[int, tuple]:
    """The snapshot key for a peer covering ``versions``' tables.

    Sorted so two captures of the same state compare equal regardless of
    iteration order — the key is compared with ``==`` on both ends of
    the wire.
    """
    return (schema_generation, tuple(sorted(versions.items())))


# --------------------------------------------------------------------------- #
# the socket wire
# --------------------------------------------------------------------------- #
class WireError(Exception):
    """The connection's framed stream is unusable (EOF, torn frame, CRC
    mismatch, undecodable payload, socket failure). Deliberately not a
    :class:`~repro.errors.ReproError`: a wire failure is infrastructure,
    the dispatcher fails over to local execution and must never surface
    it as a semantic query error."""


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`WireError`."""
    if count == 0:
        return b""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, _RECV_CHUNK))
        except OSError as error:
            raise WireError(f"socket receive failed: {error}") from error
        if not chunk:
            raise WireError(
                f"connection closed {count - remaining} bytes into a "
                f"{count}-byte read"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: bytes) -> int:
    """Send one framed payload; returns the bytes put on the wire."""
    try:
        frame = frame_record(payload)
    except StorageError as error:
        raise WireError(str(error)) from error
    try:
        sock.sendall(frame)
    except OSError as error:
        raise WireError(f"socket send failed: {error}") from error
    return len(frame)


def recv_frame(sock: socket.socket) -> bytes:
    """Receive one framed payload, verifying length and CRC.

    The failure reasons mirror :func:`repro.storage.wal.scan_frames`:
    a partial header, an implausible length, a short payload, and a
    checksum mismatch are all :class:`WireError` — on a socket there is
    no valid-prefix recovery, the stream is dead.
    """
    header = recv_exact(sock, FRAME_HEADER_BYTES)
    try:
        length, checksum = split_frame_header(header)
    except StorageError as error:
        raise WireError(str(error)) from error
    payload = recv_exact(sock, length)
    if not frame_payload_matches(payload, checksum):
        raise WireError("frame checksum mismatch")
    return payload


def send_message(sock: socket.socket, message: tuple) -> int:
    """Pickle + frame + send one protocol tuple; returns wire bytes."""
    return send_frame(sock, pickle.dumps(message, pickle.HIGHEST_PROTOCOL))


def recv_message(sock: socket.socket) -> tuple:
    """Receive one protocol tuple from a verified frame."""
    payload = recv_frame(sock)
    try:
        message = pickle.loads(payload)
    except Exception as error:  # noqa: BLE001 - a CRC-valid but undecodable payload is still a dead stream, same failover as corruption
        raise WireError(f"frame payload failed to unpickle: {error}") from error
    if not isinstance(message, tuple) or not message:
        raise WireError(
            f"frame payload is not a protocol tuple: {type(message).__name__}"
        )
    return message


def connect_with_retry(
    address: tuple[str, int],
    *,
    deadline_seconds: float,
    attempt_timeout: float = 0.25,
    pause_seconds: float = 0.02,
) -> Optional[socket.socket]:
    """Connect to a replica that may still be binding its listener.

    Returns ``None`` when the deadline passes without a connection —
    the caller marks the replica dead and serves locally (graceful
    degradation, never an error on the query path).
    """
    import time

    deadline = time.perf_counter() + deadline_seconds
    while True:
        try:
            return socket.create_connection(address, timeout=attempt_timeout)
        except OSError:
            if time.perf_counter() >= deadline:
                return None
            time.sleep(pause_seconds)
