"""Distributed serving tier: coordinator + socket-connected read replicas.

The package generalises the engine pool's snapshot protocol (PR 4) from
worker processes on pipes to serving replicas on TCP sockets:

* :mod:`repro.distributed.protocol` — the shared vocabulary (task
  kinds, reply tags, the stale-retry state machine, the indices-only
  peer catalog) plus the CRC-framed socket wire. The engine pool
  imports its protocol pieces from here, so pipe and socket cannot
  drift apart.
* :mod:`repro.distributed.replica` — the replica process: binds a
  loopback port, accepts its coordinator, installs snapshot subsets and
  deltas, and serves covered bounded plans over its indices.
* :mod:`repro.distributed.fleet` — the coordinator's client:
  constraint-group placement, template routing, delta-tail catch-up,
  death/failover handling, and :class:`~repro.distributed.fleet.FleetStats`.

Enable it with ``replicas >= 2`` (``BEAS_REPLICAS``); see
``docs/api.md``, *Distributed serving*.
"""

from repro.distributed.fleet import FleetStats, ReplicaFleet
from repro.distributed.protocol import (
    REPLY_STALE,
    SnapshotCatalog,
    WireError,
    compute_with_stale_retry,
    snapshot_key,
)

__all__ = [
    "FleetStats",
    "ReplicaFleet",
    "REPLY_STALE",
    "SnapshotCatalog",
    "WireError",
    "compute_with_stale_retry",
    "snapshot_key",
]
