"""The canonical value codec shared by every storage boundary.

Exactly one module encodes values to text and back — CSV import/export,
WAL records, mmap segment files, and the shared-memory snapshot wire all
call :func:`encode_value` / :func:`decode_value`.  The beaslint
``storage-codec`` rule enforces this: ad-hoc ``float(...)`` / ``repr(...)``
value coding outside this module is flagged, so the formats cannot
drift apart (the PR 4 CSV round-trip and the pickled snapshot wire each
grew their own silent-corruption bug before this module existed).

Text format (identical to the historical CSV cell encoding, extended
with explicit float specials):

* NULL is the empty string; the empty *string value* is ``""``.
* A literal string that itself looks like a quoted cell is wrapped in
  one extra quote pair, undone symmetrically on decode.
* Booleans are ``true`` / ``false``.
* Floats encode via ``repr`` (shortest round-tripping form); the IEEE
  specials encode as ``nan`` / ``inf`` / ``-inf`` and decode back to
  the *canonical* special objects below.

NaN treatment (the 3VL decision, documented once, here)
-------------------------------------------------------
IEEE-754 and Python agree that ``nan == nan`` is **false** — and the
whole reproduction compares values with Python ``==`` (the brute-force
oracle, the executors, bucket dict keys).  We keep those semantics:

* An equality *lookup* with a NaN component never matches —
  ``AccessIndex.fetch`` returns ``[]`` for NaN-containing keys, exactly
  as it does for NULL (the predicate is UNKNOWN-or-false, never TRUE).
* For *storage accounting* (bucket membership, support counts, dedup
  keys) every NaN is canonicalised to the single shared
  :data:`CANONICAL_NAN` object.  Python's tuple/dict machinery short-
  circuits on identity, so rows carrying the canonical NaN hash and
  match deterministically — insert/delete maintenance and round-tripped
  data stay exact instead of silently diverging whenever a *distinct*
  NaN object (``float("nan")`` parses a fresh one every time) fails to
  equal the one already in a bucket.

Decoding a FLOAT ``nan`` cell therefore returns :data:`CANONICAL_NAN`,
and :func:`canonical_value` maps any NaN seen on an ingest path to it.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

from repro.catalog.types import DataType, coerce_value
from repro.errors import StorageError

#: the single NaN object used for storage accounting (see module docstring)
CANONICAL_NAN: float = float("nan")

NULL_TEXT = ""
QUOTED_EMPTY = '""'


def is_nan(value: Any) -> bool:
    """True for any float NaN (bool is excluded by not being a float)."""
    return isinstance(value, float) and math.isnan(value)


def canonical_value(value: Any) -> Any:
    """Map any NaN to :data:`CANONICAL_NAN`; everything else passes through."""
    if isinstance(value, float) and math.isnan(value):
        return CANONICAL_NAN
    return value


def canonical_key(values: Iterable[Any]) -> tuple:
    """Tuple of :func:`canonical_value` — bucket/dedup key form."""
    return tuple(
        CANONICAL_NAN if (isinstance(v, float) and math.isnan(v)) else v
        for v in values
    )


def encode_value(value: Any) -> str:
    """Encode one value to its canonical text cell."""
    if value is None:
        return NULL_TEXT
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return repr(value)
    if isinstance(value, str):
        if value == "":
            return QUOTED_EMPTY
        if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
            # a literal "..."-shaped string would be indistinguishable
            # from the empty-string sentinel (or a previously wrapped
            # value): wrap in one more quote pair, undone on decode
            return f'"{value}"'
        return value
    if value == "":
        return QUOTED_EMPTY
    return str(value)


def decode_value(text: str, dtype: DataType) -> Any:
    """Decode one text cell back to a typed value.

    The inverse of :func:`encode_value` given the column's declared
    type; FLOAT specials come back as ``inf`` / ``-inf`` /
    :data:`CANONICAL_NAN`.
    """
    if text == NULL_TEXT:
        return None
    if text == QUOTED_EMPTY:
        return "" if dtype is DataType.STRING else coerce_value("", dtype)
    if len(text) >= 4 and text[0] == '"' and text[-1] == '"':
        return coerce_value(text[1:-1], dtype)
    value = coerce_value(text, dtype)
    if isinstance(value, float) and math.isnan(value):
        return CANONICAL_NAN
    return value


def encode_row(row: Sequence[Any], dtypes: Sequence[DataType]) -> list[str]:
    """Encode a full row (``dtypes`` is positional, from the table schema)."""
    if len(row) != len(dtypes):
        raise StorageError(
            f"cannot encode row of arity {len(row)} with {len(dtypes)} dtypes"
        )
    return [encode_value(value) for value in row]


def decode_row(cells: Sequence[str], dtypes: Sequence[DataType]) -> tuple:
    """Decode a full row; inverse of :func:`encode_row`."""
    if len(cells) != len(dtypes):
        raise StorageError(
            f"cannot decode row of arity {len(cells)} with {len(dtypes)} dtypes"
        )
    return tuple(decode_value(cell, dtype) for cell, dtype in zip(cells, dtypes))
