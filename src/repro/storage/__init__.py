"""In-memory relational storage (S2)."""

from repro.storage.table import Table
from repro.storage.database import Database
from repro.storage.csvio import load_csv, dump_csv

__all__ = ["Table", "Database", "load_csv", "dump_csv"]
