"""Relational storage (S2): in-memory tables plus the persistent engine.

``Table``/``Database`` hold rows in memory; the optional mmap engine
(:class:`~repro.storage.mmapstore.MmapStore`) persists access-index
buckets and the result cache to memory-mapped segment files with a
write-ahead maintenance log, all through the one canonical value codec
in :mod:`repro.storage.codec`.
"""

from repro.storage.table import Table
from repro.storage.database import Database
from repro.storage.csvio import load_csv, dump_csv
from repro.storage.codec import (
    CANONICAL_NAN,
    canonical_key,
    canonical_value,
    decode_value,
    encode_value,
    is_nan,
)
from repro.storage.mmapstore import MappedAccessIndex, MmapStore, StorageStats
from repro.storage.wal import WriteAheadLog

__all__ = [
    "Table",
    "Database",
    "load_csv",
    "dump_csv",
    "CANONICAL_NAN",
    "canonical_key",
    "canonical_value",
    "decode_value",
    "encode_value",
    "is_nan",
    "MappedAccessIndex",
    "MmapStore",
    "StorageStats",
    "WriteAheadLog",
]
