"""Write-ahead maintenance log for the mmap storage engine.

Every maintenance batch the host applies (insert / delete / bound
adjustment) appends one framed record *before* the store's durable
state advances past it — a warm restart replays the tail on top of the
last checkpoint instead of rebuilding access indices from the base data
(O(log replay), not O(index rebuild); see ``docs/invariants.md``,
*persistence discipline*).

Framing (shared with the result-cache log via :func:`frame_record` /
:func:`scan_frames`)::

    u32 payload_len | u32 crc32(payload) | payload

A torn tail — a partial header, a short payload, or a CRC mismatch from
a crash mid-append — is *expected* corruption: :func:`scan_frames`
stops at the first bad frame and reports how many bytes were valid, and
:meth:`WriteAheadLog.replay` truncates the file back to that point so
the next append continues from a consistent prefix.  Corruption in the
*middle* of the log (a bad frame followed by more data) is reported the
same way; everything after the first bad frame is discarded — the WAL
is an ordered history, so a later record must never be applied over a
missing earlier one.

Record payloads are JSON with all row values encoded through the
canonical codec (:mod:`repro.storage.codec`), so the WAL can never
disagree with the CSV or segment formats about what a value means.
``allow_nan=False`` is deliberate: a raw float special in a record is a
bug (values must be codec-encoded strings), and failing the append is
better than writing a payload ``json.loads`` cannot read back.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO, Optional
from zlib import crc32

from repro.errors import StorageError

_FRAME_HEADER = struct.Struct("<II")

#: refuse absurd frame lengths outright (a corrupt header would
#: otherwise make the scanner try to read gigabytes)
MAX_FRAME_BYTES = 1 << 30


#: size of the ``u32 len | u32 crc32`` frame header in bytes — consumers
#: that stream frames (the fleet's socket wire) read exactly this many
#: bytes before :func:`split_frame_header` can interpret them
FRAME_HEADER_BYTES = _FRAME_HEADER.size


def frame_record(payload: bytes) -> bytes:
    """Wrap ``payload`` in the length + CRC frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise StorageError(
            f"record of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _FRAME_HEADER.pack(len(payload), crc32(payload)) + payload


def split_frame_header(header: bytes) -> tuple[int, int]:
    """Decode one frame header into ``(payload_length, checksum)``.

    The implausible-length guard matches :func:`scan_frames`: a corrupt
    header must fail here, before a reader tries to allocate or wait for
    gigabytes that will never arrive.
    """
    if len(header) != FRAME_HEADER_BYTES:
        raise StorageError(
            f"frame header must be {FRAME_HEADER_BYTES} bytes, "
            f"got {len(header)}"
        )
    length, checksum = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise StorageError(f"implausible frame length {length}")
    return length, checksum


def frame_payload_matches(payload: bytes, checksum: int) -> bool:
    """True when ``payload`` checks out against its frame header's CRC."""
    return crc32(payload) == checksum


@dataclass
class FrameScan:
    """Result of scanning a framed log: the valid prefix and its end."""

    payloads: list[bytes] = field(default_factory=list)
    valid_bytes: int = 0
    truncated: bool = False  # trailing bytes after the valid prefix
    reason: Optional[str] = None


def scan_frames(data: bytes) -> FrameScan:
    """Decode frames from ``data``, stopping at the first bad one."""
    scan = FrameScan()
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _FRAME_HEADER.size > total:
            scan.truncated = True
            scan.reason = "partial frame header"
            return scan
        length, checksum = _FRAME_HEADER.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            scan.truncated = True
            scan.reason = f"implausible frame length {length}"
            return scan
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > total:
            scan.truncated = True
            scan.reason = "short frame payload"
            return scan
        payload = data[start:end]
        if crc32(payload) != checksum:
            scan.truncated = True
            scan.reason = "frame checksum mismatch"
            return scan
        scan.payloads.append(payload)
        scan.valid_bytes = end
        offset = end
    return scan


@dataclass
class ReplayReport:
    """What :meth:`WriteAheadLog.replay` recovered."""

    records: list[dict]
    truncated: bool
    dropped_bytes: int
    reason: Optional[str] = None


class WriteAheadLog:
    """An append-only framed JSON record log.

    ``sync=True`` fsyncs every append (the durability the crash tests
    exercise); the default leaves flushing to the OS, which is the
    right trade for the benchmark workloads.
    """

    def __init__(self, path: str | Path, *, sync: bool = False):
        self.path = Path(path)
        self._sync = sync
        self._handle: Optional[BinaryIO] = None
        self.records_appended = 0
        self.bytes_appended = 0

    # ------------------------------------------------------------------ #
    def _file(self) -> BinaryIO:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, record: dict) -> int:
        """Append one record; returns the frame's size in bytes."""
        payload = json.dumps(
            record, separators=(",", ":"), sort_keys=True, allow_nan=False
        ).encode("utf-8")
        frame = frame_record(payload)
        handle = self._file()
        handle.write(frame)
        handle.flush()
        if self._sync:
            os.fsync(handle.fileno())
        self.records_appended += 1
        self.bytes_appended += len(frame)
        return len(frame)

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    # ------------------------------------------------------------------ #
    def replay(self, *, repair: bool = True) -> ReplayReport:
        """Read every intact record; optionally truncate a torn tail.

        Never raises on corruption — a torn tail is the normal shape of
        a crash, and the caller recovers to the longest consistent
        prefix.  With ``repair=True`` (default) the file is truncated
        back to that prefix so subsequent appends extend valid history.
        """
        self.close()
        if not self.path.exists():
            return ReplayReport(records=[], truncated=False, dropped_bytes=0)
        data = self.path.read_bytes()
        scan = scan_frames(data)
        records: list[dict] = []
        valid_bytes = 0
        offset = 0
        for payload in scan.payloads:
            offset += _FRAME_HEADER.size + len(payload)
            try:
                record = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                scan.truncated = True
                scan.reason = "frame payload is not valid JSON"
                break
            if not isinstance(record, dict):
                scan.truncated = True
                scan.reason = "frame payload is not a JSON object"
                break
            records.append(record)
            valid_bytes = offset
        dropped = len(data) - valid_bytes
        if scan.truncated and repair:
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
        return ReplayReport(
            records=records,
            truncated=scan.truncated,
            dropped_bytes=dropped,
            reason=scan.reason,
        )

    def reset(self) -> None:
        """Drop all records (called right after a checkpoint rewrites
        the segments — the log's history is now baked into them)."""
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "wb"):
            pass

    def size_bytes(self) -> int:
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
        return self.path.stat().st_size if self.path.exists() else 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WriteAheadLog({self.path}, appended={self.records_appended})"
