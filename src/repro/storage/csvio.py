"""CSV import/export for tables.

The exported format writes a header with ``name:type`` per column so a table
round-trips without a separate schema file. Cell encoding is delegated to
the canonical value codec (:mod:`repro.storage.codec`) shared with the WAL
and the mmap segment format: NULL is the empty string, empty strings are
``""``, quote-shaped literals get one extra quote pair, and float specials
round-trip as ``nan`` / ``inf`` / ``-inf`` (NaN decoding to the canonical
NaN object — see the codec module for the 3VL treatment).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TextIO

from repro.catalog.schema import Column, TableSchema
from repro.catalog.types import DataType
from repro.errors import StorageError
from repro.storage.codec import decode_value, encode_value
from repro.storage.table import Table

_encode = encode_value
_decode = decode_value


def dump_csv(table: Table, destination: str | Path | TextIO) -> None:
    """Write ``table`` (schema header + rows) to ``destination``."""
    own = isinstance(destination, (str, Path))
    handle: TextIO = open(destination, "w", newline="") if own else destination  # type: ignore[arg-type]
    try:
        writer = csv.writer(handle)
        writer.writerow(
            f"{col.name}:{col.dtype.value}" for col in table.schema.columns
        )
        for row in table.rows:
            writer.writerow(_encode(v) for v in row)
    finally:
        if own:
            handle.close()


def load_csv(
    source: str | Path | TextIO,
    schema: TableSchema | None = None,
    *,
    table_name: str | None = None,
) -> Table:
    """Read a table from ``source``.

    Without an explicit ``schema`` the header must carry ``name:type`` pairs
    (the format produced by :func:`dump_csv`).
    """
    own = isinstance(source, (str, Path))
    handle: TextIO = open(source, "r", newline="") if own else source  # type: ignore[arg-type]
    try:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError("empty CSV input: missing header") from None
        if schema is None:
            columns: list[Column] = []
            for cell in header:
                if ":" not in cell:
                    raise StorageError(
                        f"CSV header cell {cell!r} lacks a ':type' suffix and "
                        "no schema was supplied"
                    )
                name, _, type_text = cell.rpartition(":")
                try:
                    dtype = DataType(type_text)
                except ValueError:
                    raise StorageError(f"unknown type {type_text!r} in CSV header") from None
                columns.append(Column(name, dtype))
            schema = TableSchema(table_name or "csv_table", columns)
        else:
            expected = [c.name for c in schema.columns]
            got = [cell.rpartition(":")[0] if ":" in cell else cell for cell in header]
            if got != expected:
                raise StorageError(
                    f"CSV header {got!r} does not match schema columns {expected!r}"
                )
        table = Table(schema)
        for row in reader:
            if len(row) != schema.arity:
                raise StorageError(
                    f"CSV row arity {len(row)} does not match schema arity {schema.arity}"
                )
            table.rows.append(
                tuple(_decode(cell, col.dtype) for cell, col in zip(row, schema.columns))
            )
        return table
    finally:
        if own:
            handle.close()


def table_to_csv_text(table: Table) -> str:
    """Render ``table`` as a CSV string (used by tests and examples)."""
    buffer = io.StringIO()
    dump_csv(table, buffer)
    return buffer.getvalue()


def table_from_csv_text(text: str, schema: TableSchema | None = None) -> Table:
    return load_csv(io.StringIO(text), schema)
