"""In-memory table: a schema plus a list of row tuples.

Rows are plain tuples ordered by the schema's columns — compact, hashable,
and cheap to project. Mutation goes through :meth:`Table.insert` /
:meth:`Table.delete` so the maintenance module can observe deltas.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.catalog.schema import TableSchema
from repro.catalog.statistics import TableStatistics, collect_statistics
from repro.catalog.types import coerce_value, is_compatible
from repro.errors import StorageError, TypeMismatchError
from repro.storage.codec import canonical_key

Row = tuple


class Table:
    """One relation instance.

    ``version`` is a monotonic mutation counter: every insert/delete bumps
    it, so caches (engine statistics, serving-layer result caches) can key
    on it instead of the row count — which misses insert+delete sequences
    that leave the cardinality unchanged.
    """

    def __init__(self, schema: TableSchema, rows: Iterable[Sequence[Any]] = ()):
        self.schema = schema
        self.rows: list[Row] = []
        self.version: int = 0
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert(self, row: Sequence[Any], *, coerce: bool = False) -> Row:
        """Append one row. With ``coerce=True`` raw values (e.g. CSV strings)
        are converted to the declared column types; otherwise they must
        already match."""
        if len(row) != self.schema.arity:
            raise StorageError(
                f"row arity {len(row)} does not match table "
                f"{self.schema.name!r} arity {self.schema.arity}"
            )
        if coerce:
            values = canonical_key(
                coerce_value(value, column.dtype)
                for value, column in zip(row, self.schema.columns)
            )
        else:
            for value, column in zip(row, self.schema.columns):
                if not is_compatible(value, column.dtype):
                    raise TypeMismatchError(
                        f"value {value!r} is not a {column.dtype.name} "
                        f"(column {self.schema.name}.{column.name})"
                    )
            # canonicalise NaN so bag-semantics deletes and DISTINCT
            # dedup stay exact (see repro.storage.codec)
            values = canonical_key(row)
        self.rows.append(values)
        self.version += 1
        return values

    def insert_many(self, rows: Iterable[Sequence[Any]], *, coerce: bool = False) -> int:
        count = 0
        for row in rows:
            self.insert(row, coerce=coerce)
            count += 1
        return count

    def delete(self, predicate: Callable[[Row], bool]) -> list[Row]:
        """Remove rows matching ``predicate``; returns the removed rows."""
        kept: list[Row] = []
        removed: list[Row] = []
        for row in self.rows:
            (removed if predicate(row) else kept).append(row)
        self.rows = kept
        if removed:
            self.version += 1
        return removed

    def delete_rows(self, rows: Iterable[Sequence[Any]]) -> list[Row]:
        """Remove one occurrence of each given row (bag semantics)."""
        from collections import Counter

        wanted = Counter(canonical_key(r) for r in rows)
        kept: list[Row] = []
        removed: list[Row] = []
        for row in self.rows:
            if wanted.get(row, 0) > 0:
                wanted[row] -= 1
                removed.append(row)
            else:
                kept.append(row)
        self.rows = kept
        if removed:
            self.version += 1
        return removed

    def clear(self) -> None:
        self.rows.clear()
        self.version += 1

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def project(self, columns: Sequence[str], *, distinct: bool = False) -> list[Row]:
        """Project onto ``columns``; with ``distinct`` deduplicate, preserving
        first-seen order (deterministic for tests)."""
        positions = self.schema.positions(columns)
        projected = [tuple(row[i] for i in positions) for row in self.rows]
        if not distinct:
            return projected
        seen: set[Row] = set()
        out: list[Row] = []
        for row in projected:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out

    def column_values(self, column: str) -> list[Any]:
        position = self.schema.position(column)
        return [row[position] for row in self.rows]

    def statistics(self) -> TableStatistics:
        return collect_statistics(self)

    def __repr__(self) -> str:
        return f"Table({self.schema.name}, rows={len(self.rows)})"
