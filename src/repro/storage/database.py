"""A database instance: named tables over a database schema."""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.catalog.schema import DatabaseSchema, TableSchema
from repro.catalog.statistics import TableStatistics
from repro.errors import StorageError, UnknownTableError
from repro.storage.table import Table


class Database:
    """Named collection of :class:`Table` instances.

    A ``Database`` owns a :class:`DatabaseSchema`; tables can be registered
    from existing :class:`Table` objects or created empty from schemas.
    """

    def __init__(self, schema: DatabaseSchema | None = None, name: str = "db"):
        self.name = name
        self.schema = schema or DatabaseSchema(name=name)
        self._tables: dict[str, Table] = {}
        for table_schema in self.schema:
            self._tables[table_schema.name] = Table(table_schema)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def create_table(self, table_schema: TableSchema) -> Table:
        if table_schema.name in self._tables:
            raise StorageError(f"table {table_schema.name!r} already exists")
        if table_schema.name not in self.schema:
            self.schema.add_table(table_schema)
        table = Table(table_schema)
        self._tables[table_schema.name] = table
        return table

    def add_table(self, table: Table) -> Table:
        if table.schema.name in self._tables:
            raise StorageError(f"table {table.schema.name!r} already exists")
        if table.schema.name not in self.schema:
            self.schema.add_table(table.schema)
        self._tables[table.schema.name] = table
        return table

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def insert(self, table: str, row: Sequence[Any], *, coerce: bool = False) -> None:
        self.table(table).insert(row, coerce=coerce)

    def total_rows(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def statistics(self) -> dict[str, TableStatistics]:
        return {name: table.statistics() for name, table in self._tables.items()}

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}:{len(t)}" for n, t in self._tables.items())
        return f"Database({self.name}; {parts})"
