"""Disk-backed, memory-mapped storage engine for access indices.

``MmapStore`` persists the AS Catalog's index buckets (one segment file
per constraint), the serving result cache, and a write-ahead
maintenance log (:mod:`repro.storage.wal`) under one directory::

    <dir>/MANIFEST.json      # format, database identity, versions
    <dir>/segments/*.seg     # one per access constraint
    <dir>/wal.log            # framed maintenance records since checkpoint
    <dir>/results.log        # framed result-cache entries

A **warm restart** (``BEAS_STORAGE=mmap`` with a populated directory)
maps the segment files instead of rebuilding indices from the base
rows, then replays the WAL tail — O(log replay), not O(index rebuild).
The same segment encoding, concatenated, is the **shared-memory
snapshot wire**: the engine pool's master exports one
``multiprocessing.shared_memory`` block per (schema generation, table
version vector) snapshot key and workers attach it zero-copy, falling
back to the pickle wire on any failure.

Every value crossing these boundaries goes through the canonical codec
(:mod:`repro.storage.codec`) — the beaslint ``storage-codec`` rule
keeps ad-hoc value coding out of this module's formats.

Segment layout (all integers little-endian u32)::

    b"BSEG0001" | header_len | blob_len | crc32(header+blob)
               | header JSON | bucket blob

The header carries the constraint, positions, dtypes, summary
statistics, and a key directory (codec-encoded key tuples with
``[offset, length]`` spans into the blob).  The blob stores each
bucket as ``n_entries`` then per entry ``support_count`` and
length-prefixed codec-encoded Y parts.  :class:`MappedAccessIndex`
decodes the directory eagerly (O(keys)) and buckets lazily on first
touch, with copy-on-write overlays for post-load maintenance.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
import struct
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Callable, Iterable, Optional, Sequence

from zlib import crc32

from repro.access.constraint import AccessConstraint
from repro.access.index import AccessIndex, Key
from repro.access.io import schema_from_dict, schema_to_dict
from repro.catalog.schema import TableSchema
from repro.catalog.types import DataType
from repro.errors import AccessSchemaError, StorageError
from repro.storage.codec import canonical_key, decode_row, encode_row, is_nan
from repro.storage.database import Database
from repro.storage.table import Table
from repro.storage.wal import ReplayReport, WriteAheadLog, frame_record, scan_frames

MAGIC_SEGMENT = b"BSEG0001"
MAGIC_SNAPSHOT = b"BSNP0001"

_U32 = struct.Struct("<I")
_SEGMENT_PREFIX = struct.Struct("<III")  # header_len, blob_len, crc32

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
RESULTS_NAME = "results.log"
SEGMENTS_DIR = "segments"

#: store format version — bumped on any incompatible layout change
STORE_FORMAT = 1


# --------------------------------------------------------------------------- #
# the mapped index: lazy buckets over a segment buffer
# --------------------------------------------------------------------------- #
class MappedAccessIndex(AccessIndex):
    """An :class:`AccessIndex` whose buckets live in a mapped buffer.

    The key directory is decoded eagerly; bucket payloads decode on
    first touch and are cached.  Mutation (WAL replay, live
    maintenance) copies the affected bucket into the overlay first, so
    the mapped bytes stay read-only and a *different* process mapping
    the same segment is unaffected.  ``snapshot()``/``entry_count``
    after mutation materialise everything and behave exactly like the
    in-memory index.
    """

    def __init__(
        self,
        constraint: AccessConstraint,
        *,
        x_positions: Sequence[int],
        y_positions: Sequence[int],
        built_from: Optional[str],
        y_dtypes: Sequence[DataType],
        buffer: Any,
        blob_base: int,
        directory: dict[Key, tuple[int, int]],
        segment_span: tuple[int, int],
        key_count: int,
        entry_count: int,
        max_bucket_size: int,
    ):
        super().__init__(constraint)
        self._x_positions = tuple(x_positions)
        self._y_positions = tuple(y_positions)
        self._built_from = built_from
        self._y_dtypes = tuple(y_dtypes)
        self._buffer = buffer
        self._blob_base = blob_base
        self._lazy: dict[Key, tuple[int, int]] = directory
        self._dead: set[Key] = set()
        self._segment_span = segment_span
        self._mutated = False
        self._hint_key_count = key_count
        self._hint_entry_count = entry_count
        self._hint_max_bucket = max_bucket_size

    # -- lazy decoding --------------------------------------------------- #
    def _decode_bucket(self, key: Key) -> dict:
        offset, _length = self._lazy[key]
        view = memoryview(self._buffer)
        pos = self._blob_base + offset
        (n_entries,) = _U32.unpack_from(view, pos)
        pos += _U32.size
        width = len(self._y_dtypes)
        bucket: dict = {}
        for _ in range(n_entries):
            (count,) = _U32.unpack_from(view, pos)
            pos += _U32.size
            parts = []
            for _ in range(width):
                (part_len,) = _U32.unpack_from(view, pos)
                pos += _U32.size
                parts.append(bytes(view[pos : pos + part_len]).decode("utf-8"))
                pos += part_len
            bucket[decode_row(parts, self._y_dtypes)] = count
        return bucket

    def _bucket_cached(self, key: Key) -> Optional[dict]:
        bucket = self._buckets.get(key)
        if bucket is not None:
            return bucket
        if key in self._dead or key not in self._lazy:
            return None
        bucket = self._decode_bucket(key)
        self._buckets[key] = bucket
        return bucket

    def _materialize_all(self) -> None:
        for key in list(self._lazy):
            if key not in self._dead and key not in self._buckets:
                self._buckets[key] = self._decode_bucket(key)
        self._lazy = {}
        self._dead = set()
        self._buffer = None

    # -- AccessIndex surface, overlay-aware ------------------------------ #
    def build(self, table: Table, *, validate: bool = True) -> "AccessIndex":
        self._lazy = {}
        self._dead = set()
        self._buffer = None
        self._mutated = True
        return super().build(table, validate=validate)

    def _add(self, row: Sequence[Any], *, validate: bool) -> None:
        key = self._key_of(row)
        if key not in self._buckets:
            existing = None
            if key not in self._dead and key in self._lazy:
                existing = self._decode_bucket(key)
            self._buckets[key] = existing if existing is not None else {}
        self._dead.discard(key)
        self._mutated = True
        super()._add(row, validate=validate)

    def delete_row(self, row: Sequence[Any]) -> None:
        key = self._key_of(row)
        if key not in self._buckets and key not in self._dead and key in self._lazy:
            self._buckets[key] = self._decode_bucket(key)
        self._mutated = True
        super().delete_row(row)
        if key not in self._buckets and key in self._lazy:
            self._dead.add(key)

    def fetch(self, key: Key) -> list:
        key = tuple(key)
        if any(part is None or is_nan(part) for part in key):
            return []
        bucket = self._bucket_cached(key)
        return [] if bucket is None else list(bucket)

    def __contains__(self, key: Key) -> bool:
        key = canonical_key(key)
        if key in self._buckets:
            return True
        return key in self._lazy and key not in self._dead

    def keys(self):
        for key in self._buckets:
            yield key
        for key in self._lazy:
            if key not in self._buckets and key not in self._dead:
                yield key

    @property
    def key_count(self) -> int:
        if not self._mutated and self._lazy:
            return self._hint_key_count
        extra = sum(
            1
            for key in self._lazy
            if key not in self._buckets and key not in self._dead
        )
        return len(self._buckets) + extra

    @property
    def entry_count(self) -> int:
        if not self._mutated and self._lazy:
            return self._hint_entry_count
        if self._lazy:
            self._materialize_all()
        return super().entry_count

    @property
    def max_bucket_size(self) -> int:
        if not self._mutated and self._lazy:
            return self._hint_max_bucket
        if self._lazy:
            self._materialize_all()
        return super().max_bucket_size

    def snapshot(self) -> dict:
        if self._lazy:
            self._materialize_all()
        return super().snapshot()

    # -- persistence hooks ------------------------------------------------ #
    def raw_segment_bytes(self) -> Optional[bytes]:
        """The original segment, byte-exact, while unmutated (fast
        re-export path); ``None`` once the overlay diverged."""
        if self._mutated or self._buffer is None:
            return None
        start, end = self._segment_span
        return bytes(memoryview(self._buffer)[start:end])

    def __reduce__(self):
        # the pickle wire (pool fallback) ships a plain materialised index
        return (
            _plain_index_from_state,
            (
                self.constraint,
                self._x_positions,
                self._y_positions,
                self._built_from,
                self.snapshot(),
            ),
        )

    def __repr__(self) -> str:
        return (
            f"MappedAccessIndex({self.constraint.name}: "
            f"{self.key_count} keys, mutated={self._mutated})"
        )


def _plain_index_from_state(
    constraint: AccessConstraint,
    x_positions: Sequence[int],
    y_positions: Sequence[int],
    built_from: Optional[str],
    buckets: dict,
) -> AccessIndex:
    index = AccessIndex(constraint)
    index._x_positions = tuple(x_positions)
    index._y_positions = tuple(y_positions)
    index._built_from = built_from
    # re-canonicalise: NaN identity does not survive the pickle wire
    index._buckets = {
        canonical_key(key): {
            canonical_key(y_value): count for y_value, count in bucket.items()
        }
        for key, bucket in buckets.items()
    }
    return index


# --------------------------------------------------------------------------- #
# segment encode/decode
# --------------------------------------------------------------------------- #
def _index_dtypes(
    constraint: AccessConstraint, table_schema: TableSchema
) -> tuple[list[DataType], list[DataType]]:
    columns = {column.name: column.dtype for column in table_schema.columns}
    try:
        x_dtypes = [columns[name] for name in constraint.x]
        y_dtypes = [columns[name] for name in constraint.y]
    except KeyError as exc:
        raise StorageError(
            f"constraint {constraint.name!r} references unknown column {exc}"
        ) from None
    return x_dtypes, y_dtypes


def encode_index_segment(index: AccessIndex, table_schema: TableSchema) -> bytes:
    """Serialise one index to its segment bytes."""
    if isinstance(index, MappedAccessIndex):
        raw = index.raw_segment_bytes()
        if raw is not None:
            return raw
    x_dtypes, y_dtypes = _index_dtypes(index.constraint, table_schema)
    if isinstance(index, MappedAccessIndex):
        index._materialize_all()
    blob = bytearray()
    keys: list[list[str]] = []
    offsets: list[list[int]] = []
    entry_count = 0
    max_bucket = 0
    for key, bucket in index._buckets.items():
        start = len(blob)
        blob += _U32.pack(len(bucket))
        for y_value, count in bucket.items():
            blob += _U32.pack(count)
            for part in encode_row(y_value, y_dtypes):
                encoded = part.encode("utf-8")
                blob += _U32.pack(len(encoded))
                blob += encoded
        keys.append(encode_row(key, x_dtypes))
        offsets.append([start, len(blob) - start])
        entry_count += len(bucket)
        max_bucket = max(max_bucket, len(bucket))
    header = {
        "constraint": {
            "name": index.constraint.name,
            "relation": index.constraint.relation,
            "x": list(index.constraint.x),
            "y": list(index.constraint.y),
            "n": index.constraint.n,
        },
        "x_positions": list(index._x_positions),
        "y_positions": list(index._y_positions),
        "built_from": index._built_from,
        "x_dtypes": [dtype.value for dtype in x_dtypes],
        "y_dtypes": [dtype.value for dtype in y_dtypes],
        "key_count": len(keys),
        "entry_count": entry_count,
        "max_bucket_size": max_bucket,
        "keys": keys,
        "offsets": offsets,
    }
    header_bytes = json.dumps(
        header, separators=(",", ":"), sort_keys=True, allow_nan=False
    ).encode("utf-8")
    body = header_bytes + bytes(blob)
    return b"".join(
        (
            MAGIC_SEGMENT,
            _SEGMENT_PREFIX.pack(len(header_bytes), len(blob), crc32(body)),
            body,
        )
    )


def decode_index_segment(
    buffer: Any, offset: int = 0
) -> tuple[MappedAccessIndex, int]:
    """Open one segment at ``offset`` in ``buffer``.

    Returns the mapped index and the offset one past the segment's end.
    Raises :class:`StorageError` on a bad magic, a truncated body, or a
    checksum mismatch — half-written segment files never load.
    """
    view = memoryview(buffer)
    # released on EVERY exit: a raised StorageError keeps this frame (and
    # the view) alive in the caller's traceback, and an un-released view
    # over an mmap makes mmap.close() raise BufferError — turning the
    # cold-rebuild fallback into a crash. The success-path index reads
    # through ``buffer`` directly, never this view.
    try:
        total = len(view)
        prefix_end = offset + len(MAGIC_SEGMENT) + _SEGMENT_PREFIX.size
        if prefix_end > total:
            raise StorageError("truncated segment: incomplete prefix")
        if bytes(view[offset : offset + len(MAGIC_SEGMENT)]) != MAGIC_SEGMENT:
            raise StorageError("bad segment magic")
        header_len, blob_len, checksum = _SEGMENT_PREFIX.unpack_from(
            view, offset + len(MAGIC_SEGMENT)
        )
        header_start = prefix_end
        blob_start = header_start + header_len
        end = blob_start + blob_len
        if end > total:
            raise StorageError("truncated segment: body shorter than declared")
        if crc32(view[header_start:end]) != checksum:
            raise StorageError("segment checksum mismatch")
        try:
            header = json.loads(
                bytes(view[header_start:blob_start]).decode("utf-8")
            )
        except (ValueError, UnicodeDecodeError) as exc:
            raise StorageError(f"unreadable segment header: {exc}") from None
    finally:
        view.release()
    try:
        spec = header["constraint"]
        constraint = AccessConstraint(
            spec["relation"],
            list(spec["x"]),
            list(spec["y"]),
            spec["n"],
            name=spec["name"],
        )
        x_dtypes = [DataType(name) for name in header["x_dtypes"]]
        y_dtypes = [DataType(name) for name in header["y_dtypes"]]
        directory: dict[Key, tuple[int, int]] = {}
        for cells, (bucket_offset, bucket_len) in zip(
            header["keys"], header["offsets"]
        ):
            directory[decode_row(cells, x_dtypes)] = (bucket_offset, bucket_len)
        index = MappedAccessIndex(
            constraint,
            x_positions=header["x_positions"],
            y_positions=header["y_positions"],
            built_from=header["built_from"],
            y_dtypes=y_dtypes,
            buffer=buffer,
            blob_base=blob_start,
            directory=directory,
            segment_span=(offset, end),
            key_count=header["key_count"],
            entry_count=header["entry_count"],
            max_bucket_size=header["max_bucket_size"],
        )
    except (KeyError, TypeError, ValueError, AccessSchemaError) as exc:
        raise StorageError(f"malformed segment header: {exc!r}") from exc
    return index, end


# --------------------------------------------------------------------------- #
# snapshot container (the shared-memory wire)
# --------------------------------------------------------------------------- #
def encode_snapshot(
    index_map: dict[str, AccessIndex],
    schema_for: Callable[[str], TableSchema],
) -> bytes:
    """Concatenate every index's segment into one snapshot blob.

    Every constraint is enumerated — **including indices whose bucket
    map is empty**.  An empty index must still install under its full
    snapshot key: dropping it would make "no matching rows" look like
    "worker snapshot has no index for this constraint" on the worker
    (the empty-bucket pickling bug this PR's sweep fixed).
    """
    parts = [MAGIC_SNAPSHOT, _U32.pack(len(index_map))]
    for name in sorted(index_map):
        index = index_map[name]
        segment = encode_index_segment(
            index, schema_for(index.constraint.relation)
        )
        parts.append(_U32.pack(len(segment)))
        parts.append(segment)
    return b"".join(parts)


def decode_snapshot(buffer: Any) -> dict[str, MappedAccessIndex]:
    """Open every segment of a snapshot blob (zero-copy, lazy buckets)."""
    view = memoryview(buffer)
    base = len(MAGIC_SNAPSHOT)
    if len(view) < base + _U32.size:
        raise StorageError("truncated snapshot container")
    if bytes(view[:base]) != MAGIC_SNAPSHOT:
        raise StorageError("bad snapshot magic")
    (count,) = _U32.unpack_from(view, base)
    position = base + _U32.size
    indexes: dict[str, MappedAccessIndex] = {}
    for _ in range(count):
        if position + _U32.size > len(view):
            raise StorageError("truncated snapshot container")
        (segment_len,) = _U32.unpack_from(view, position)
        position += _U32.size
        index, end = decode_index_segment(buffer, position)
        if end != position + segment_len:
            raise StorageError("snapshot segment length mismatch")
        indexes[index.constraint.name] = index
        position = end
    return indexes


# --------------------------------------------------------------------------- #
# manifest helpers
# --------------------------------------------------------------------------- #
def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def table_fingerprint(table: Table) -> dict:
    """A cheap O(1) identity check for the base data a checkpoint was
    taken over: schema + first/last row + row count.  Not cryptographic
    — it guards against *accidentally* warm-loading over a different
    dataset, the same way the CSV header guards column order."""
    dtypes = [column.dtype for column in table.schema.columns]
    schema_text = ",".join(
        f"{column.name}:{column.dtype.value}" for column in table.schema.columns
    )
    digest = crc32(schema_text.encode("utf-8"))
    if table.rows:
        first = "\x1f".join(encode_row(table.rows[0], dtypes))
        last = "\x1f".join(encode_row(table.rows[-1], dtypes))
        digest = crc32(first.encode("utf-8"), digest)
        digest = crc32(last.encode("utf-8"), digest)
    return {"rows": len(table.rows), "crc": digest}


def _segment_filename(name: str, taken: set[str]) -> str:
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in name
    ) or "constraint"
    candidate = f"{safe}.seg"
    serial = 1
    while candidate in taken:
        candidate = f"{safe}~{serial}.seg"
        serial += 1
    taken.add(candidate)
    return candidate


# --------------------------------------------------------------------------- #
# stats
# --------------------------------------------------------------------------- #
@dataclass
class StorageStats:
    """Point-in-time storage-engine counters (``ServingStats.storage``)."""

    mode: str
    directory: str
    warm_start: bool
    segments_loaded: int
    wal_records_replayed: int
    wal_dropped_bytes: int
    wal_records_appended: int
    wal_bytes_appended: int
    checkpoints: int
    shm_exports: int
    shm_export_bytes: int
    result_entries_saved: int
    result_entries_loaded: int

    def describe(self) -> str:
        start = "warm" if self.warm_start else "cold"
        return (
            f"storage {self.mode} at {self.directory}: {start} start, "
            f"{self.segments_loaded} segments mapped, "
            f"WAL {self.wal_records_replayed} replayed "
            f"(+{self.wal_records_appended} appended, "
            f"{self.wal_bytes_appended} B, "
            f"{self.wal_dropped_bytes} B torn-tail dropped), "
            f"{self.checkpoints} checkpoints, "
            f"{self.shm_exports} shm exports ({self.shm_export_bytes} B), "
            f"results {self.result_entries_saved} saved / "
            f"{self.result_entries_loaded} loaded"
        )


# --------------------------------------------------------------------------- #
# the store
# --------------------------------------------------------------------------- #
class MmapStore:
    """One persistent store directory (see module docstring).

    Not thread-safe by itself: callers serialise maintenance logging
    the same way they serialise the maintenance it records (the serving
    layer's shard write sections).  The shared-memory exporter has its
    own lock because pool dispatch can race across worker threads.
    """

    def __init__(self, directory: str | Path, *, sync: bool = False):
        self.directory = Path(directory)
        (self.directory / SEGMENTS_DIR).mkdir(parents=True, exist_ok=True)
        self._wal = WriteAheadLog(self.directory / WAL_NAME, sync=sync)
        self._mapped: list[tuple[BinaryIO, mmap.mmap]] = []
        self._shm: Any = None
        self._shm_key: Any = None
        self._shm_lock = threading.Lock()
        self.warm_start = False
        self.segments_loaded = 0
        self.wal_records_replayed = 0
        self.wal_dropped_bytes = 0
        self.checkpoints = 0
        self.shm_exports = 0
        self.shm_export_bytes = 0
        self.result_entries_saved = 0
        self.result_entries_loaded = 0

    # -- paths ------------------------------------------------------------ #
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def wal_path(self) -> Path:
        return self.directory / WAL_NAME

    @property
    def results_path(self) -> Path:
        return self.directory / RESULTS_NAME

    # -- manifest --------------------------------------------------------- #
    def _read_manifest(self) -> Optional[dict]:
        try:
            data = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def _write_manifest(self, manifest: dict) -> None:
        _atomic_write(
            self.manifest_path,
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
        )

    # -- checkpoint ------------------------------------------------------- #
    def checkpoint(self, catalog: Any) -> None:
        """Rewrite every segment + the manifest; reset the WAL.

        Called after a cold build and after schema-level changes
        (register/unregister), whose effects are not WAL-replayable.
        """
        segments_dir = self.directory / SEGMENTS_DIR
        segments_dir.mkdir(parents=True, exist_ok=True)
        segment_map: dict[str, str] = {}
        taken: set[str] = set()
        for constraint in catalog.schema:
            index = catalog.index_for(constraint)
            table = catalog.database.table(constraint.relation)
            data = encode_index_segment(index, table.schema)
            filename = _segment_filename(constraint.name, taken)
            _atomic_write(segments_dir / filename, data)
            segment_map[constraint.name] = f"{SEGMENTS_DIR}/{filename}"
        for stale in segments_dir.glob("*.seg"):
            if stale.name not in taken:
                stale.unlink(missing_ok=True)
        database: Database = catalog.database
        manifest = {
            "format": STORE_FORMAT,
            "database": database.name,
            "access_schema": schema_to_dict(catalog.schema),
            "schema_generation": catalog.schema_generation,
            "versions": {
                name: database.table(name).version
                for name in database.table_names
            },
            "tables": {
                name: table_fingerprint(database.table(name))
                for name in database.table_names
            },
            "segments": segment_map,
        }
        self._write_manifest(manifest)
        self._wal.reset()
        self.checkpoints += 1

    # -- warm load -------------------------------------------------------- #
    def try_load(self, catalog: Any, access_schema: Any = None) -> bool:
        """Install persisted indices into a fresh (index-less) catalog.

        Returns False — leaving the catalog untouched — when the store
        is empty, was written for a different database/access schema,
        or the base data no longer matches the checkpoint.  Segment
        corruption also returns False (the caller cold-rebuilds).  Only
        after the mapped indices are installed is the WAL tail
        replayed; per the persistence discipline, no read is served
        from the store before that replay completes.
        """
        manifest = self._read_manifest()
        if manifest is None or manifest.get("format") != STORE_FORMAT:
            return False
        if manifest.get("database") != catalog.database.name:
            return False
        stored_schema = manifest.get("access_schema")
        try:
            schema = schema_from_dict(stored_schema)
        except AccessSchemaError:
            return False
        if access_schema is not None and schema_to_dict(
            access_schema
        ) != stored_schema:
            return False
        versions = manifest.get("versions", {})
        tables = manifest.get("tables", {})
        for name, recorded in tables.items():
            if name not in catalog.database:
                return False
            table = catalog.database.table(name)
            if table_fingerprint(table) != recorded:
                return False
            if table.version != versions.get(name):
                return False
        segment_map = manifest.get("segments", {})
        opened: list[tuple[BinaryIO, mmap.mmap]] = []
        loaded: list[tuple[AccessConstraint, MappedAccessIndex]] = []
        try:
            for constraint in schema:
                relpath = segment_map.get(constraint.name)
                if relpath is None:
                    raise StorageError(
                        f"manifest lists no segment for {constraint.name!r}"
                    )
                index, handles = self._open_segment(self.directory / relpath)
                opened.append(handles)
                if index.constraint != constraint:
                    raise StorageError(
                        f"segment constraint mismatch for {constraint.name!r}"
                    )
                loaded.append((constraint, index))
        except (OSError, StorageError):
            for handle, mapping in opened:
                mapping.close()
                handle.close()
            return False
        for constraint, index in loaded:
            catalog.install_index(constraint, index)
        self._mapped.extend(opened)
        catalog.schema_generation = int(manifest.get("schema_generation", 0))
        self.replay_wal(catalog)
        self.warm_start = True
        self.segments_loaded += len(loaded)
        return True

    def _open_segment(
        self, path: Path
    ) -> tuple[MappedAccessIndex, tuple[BinaryIO, mmap.mmap]]:
        handle = open(path, "rb")
        try:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError):
            handle.close()
            raise StorageError(f"cannot map segment {path.name}") from None
        try:
            index, _end = decode_index_segment(mapping)
        except StorageError:
            mapping.close()
            handle.close()
            raise
        return index, (handle, mapping)

    # -- WAL -------------------------------------------------------------- #
    def log_insert(self, table: Table, rows: Iterable[Sequence[Any]]) -> None:
        """Append one committed insert batch (call under the same write
        section that applied it, before any reader sees the version)."""
        dtypes = [column.dtype for column in table.schema.columns]
        self._wal.append(
            {
                "op": "insert",
                "table": table.schema.name,
                "rows": [encode_row(row, dtypes) for row in rows],
                "version": table.version,
            }
        )

    def log_delete(self, table: Table, rows: Iterable[Sequence[Any]]) -> None:
        dtypes = [column.dtype for column in table.schema.columns]
        self._wal.append(
            {
                "op": "delete",
                "table": table.schema.name,
                "rows": [
                    encode_row(canonical_key(row), dtypes) for row in rows
                ],
                "version": table.version,
            }
        )

    def log_adjust(self, constraint_name: str, n: int) -> None:
        self._wal.append(
            {"op": "adjust", "constraint": constraint_name, "n": n}
        )

    def replay_wal(self, catalog: Any) -> ReplayReport:
        """Apply the WAL tail to the (just-loaded) catalog and tables.

        A torn tail is truncated and everything before it applied; the
        recovered state is the last fully-logged batch — exactly what a
        crash between apply and append should recover to.
        """
        report = self._wal.replay(repair=True)
        for record in report.records:
            self._apply_record(catalog, record)
        self.wal_records_replayed += len(report.records)
        self.wal_dropped_bytes += report.dropped_bytes
        return report

    def _apply_record(self, catalog: Any, record: dict) -> None:
        op = record.get("op")
        if op == "adjust":
            name = record["constraint"]
            current = catalog.schema.get(name)
            widened = AccessConstraint(
                current.relation,
                list(current.x),
                list(current.y),
                record["n"],
                name=name,
            )
            index = catalog.index_for(current)
            catalog.schema.remove(name)
            catalog.schema.add(widened)
            index.constraint = widened
            catalog.note_schema_change()
            return
        if op not in ("insert", "delete"):
            raise StorageError(f"unknown WAL op {op!r}")
        table = catalog.database.table(record["table"])
        dtypes = [column.dtype for column in table.schema.columns]
        rows = [decode_row(cells, dtypes) for cells in record["rows"]]
        constraints = catalog.constraints_for(record["table"])
        if op == "insert":
            for row in rows:
                stored = table.insert(row)
                for constraint in constraints:
                    catalog.index_for(constraint).insert_row(
                        stored, validate=False
                    )
        else:
            removed = table.delete_rows(rows)
            if len(removed) != len(rows):
                raise StorageError(
                    f"WAL delete for {record['table']!r} references rows "
                    "missing from the base data — store and dataset diverged"
                )
            for constraint in constraints:
                index = catalog.index_for(constraint)
                for row in removed:
                    index.delete_row(row)
        table.version = int(record["version"])

    @property
    def wal_records_appended(self) -> int:
        return self._wal.records_appended

    @property
    def wal_bytes_appended(self) -> int:
        return self._wal.bytes_appended

    # -- result-cache persistence ----------------------------------------- #
    def save_results(self, entries: list[tuple[str, Any, Any]]) -> int:
        """Persist result-cache entries as framed pickled records.

        Entries are ``(home_table, key, value)`` triples.  Pickle is the
        right wire here — values carry plan/decision objects that
        already cross the pool boundary pickled; the CRC framing (same
        as the WAL) detects torn writes, and freshness is re-validated
        against versions/generation at serve time, never assumed.
        """
        frames = bytearray()
        for home, key, value in entries:
            frames += frame_record(
                pickle.dumps((home, key, value), pickle.HIGHEST_PROTOCOL)
            )
        _atomic_write(self.results_path, bytes(frames))
        self.result_entries_saved = len(entries)
        return len(entries)

    def load_results(self) -> list[tuple[str, Any, Any]]:
        """Read back every intact persisted result entry (torn tail and
        unpicklable entries are dropped, never served)."""
        try:
            data = self.results_path.read_bytes()
        except OSError:
            return []
        scan = scan_frames(data)
        entries: list[tuple[str, Any, Any]] = []
        for payload in scan.payloads:
            try:
                home, key, value = pickle.loads(payload)
            except Exception:  # noqa: BLE001 - arbitrary pickle failure just drops the entry
                continue
            entries.append((home, key, value))
        self.result_entries_loaded = len(entries)
        return entries

    # -- shared-memory snapshot export ------------------------------------ #
    def snapshot_exporter(
        self, catalog: Any
    ) -> Callable[[Any, Callable[[], dict]], Optional[str]]:
        """A callable for ``EnginePool(snapshot_exporter=...)``.

        Returns the shared-memory block name for a snapshot key, or
        ``None`` on any failure — the pool then falls back to the
        pickle wire in the same dispatch.
        """

        def export(key: Any, payload_fn: Callable[[], dict]) -> Optional[str]:
            try:
                return self._export_snapshot(key, payload_fn, catalog)
            except Exception:  # noqa: BLE001 - any export failure must fall back to the pickle wire
                return None

        return export

    def _export_snapshot(
        self, key: Any, payload_fn: Callable[[], dict], catalog: Any
    ) -> Optional[str]:
        from multiprocessing import shared_memory

        with self._shm_lock:
            if self._shm is not None and self._shm_key == key:
                return self._shm.name
            blob = encode_snapshot(
                payload_fn(),
                lambda relation: catalog.database.table(relation).schema,
            )
            block = shared_memory.SharedMemory(
                create=True, size=max(1, len(blob))
            )
            block.buf[: len(blob)] = blob
            previous = self._shm
            self._shm = block
            self._shm_key = key
            if previous is not None:
                try:
                    previous.close()
                    previous.unlink()
                except OSError:
                    pass
            self.shm_exports += 1
            self.shm_export_bytes += len(blob)
            return block.name

    # -- stats / lifecycle ------------------------------------------------- #
    def stats(self) -> StorageStats:
        return StorageStats(
            mode="mmap",
            directory=str(self.directory),
            warm_start=self.warm_start,
            segments_loaded=self.segments_loaded,
            wal_records_replayed=self.wal_records_replayed,
            wal_dropped_bytes=self.wal_dropped_bytes,
            wal_records_appended=self.wal_records_appended,
            wal_bytes_appended=self.wal_bytes_appended,
            checkpoints=self.checkpoints,
            shm_exports=self.shm_exports,
            shm_export_bytes=self.shm_export_bytes,
            result_entries_saved=self.result_entries_saved,
            result_entries_loaded=self.result_entries_loaded,
        )

    def close(self) -> None:
        self._wal.close()
        for handle, mapping in self._mapped:
            try:
                mapping.close()
            except (BufferError, ValueError):
                pass
            handle.close()
        self._mapped = []
        with self._shm_lock:
            if self._shm is not None:
                try:
                    self._shm.close()
                    self._shm.unlink()
                except OSError:
                    pass
                self._shm = None
                self._shm_key = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MmapStore({self.directory})"
