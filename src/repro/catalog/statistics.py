"""Lightweight table statistics.

The conventional planner uses row counts and per-column distinct counts for
join ordering and selectivity estimates; the AS catalog stores index sizes
derived from the same numbers; the discovery module profiles group
cardinalities. Everything here is exact (computed over the data), which is
affordable for an in-memory engine and keeps tests deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.table import Table


@dataclass
class ColumnStatistics:
    """Statistics for one column of one table."""

    name: str
    distinct_count: int = 0
    null_count: int = 0
    min_value: Any = None
    max_value: Any = None

    def selectivity_of_equality(self, row_count: int) -> float:
        """Estimated fraction of rows matching ``col = const``.

        NULL rows never match an equality predicate (three-valued
        logic), so only the non-NULL fraction is spread across the
        distinct values: ``(1 - null_fraction) / distinct_count``.
        """
        if row_count == 0 or self.distinct_count == 0:
            return 0.0
        non_null_fraction = 1.0 - (self.null_count / row_count)
        if non_null_fraction <= 0.0:
            return 0.0
        return non_null_fraction / self.distinct_count


@dataclass
class TableStatistics:
    """Statistics for a whole table."""

    table: str
    row_count: int = 0
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        return self.columns.get(name, ColumnStatistics(name=name))

    def distinct(self, name: str) -> int:
        return self.column(name).distinct_count


def collect_statistics(table: "Table") -> TableStatistics:
    """Compute exact statistics for ``table`` in one pass per column."""
    stats = TableStatistics(table=table.schema.name, row_count=len(table))
    for position, column in enumerate(table.schema.columns):
        seen: set[Any] = set()
        nulls = 0
        min_value: Any = None
        max_value: Any = None
        for row in table.rows:
            value = row[position]
            if value is None:
                nulls += 1
                continue
            seen.add(value)
            if min_value is None or value < min_value:
                min_value = value
            if max_value is None or value > max_value:
                max_value = value
        stats.columns[column.name] = ColumnStatistics(
            name=column.name,
            distinct_count=len(seen),
            null_count=nulls,
            min_value=min_value,
            max_value=max_value,
        )
    return stats


def group_cardinality(
    table: "Table", x_attrs: Iterable[str], y_attrs: Iterable[str]
) -> int:
    """Max over X-values of the number of distinct Y-projections.

    This is exactly the smallest ``N`` for which the access constraint
    ``R(X -> Y, N)`` holds on ``table`` (0 for an empty table). The
    discovery profiler and the conformance checker both build on it.
    """
    x_positions = table.schema.positions(x_attrs)
    y_positions = table.schema.positions(y_attrs)
    groups: dict[tuple, set[tuple]] = {}
    for row in table.rows:
        key = tuple(row[i] for i in x_positions)
        groups.setdefault(key, set()).add(tuple(row[i] for i in y_positions))
    if not groups:
        return 0
    return max(len(values) for values in groups.values())
