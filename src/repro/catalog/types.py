"""Column data types and value coercion.

The engine stores values as plain Python objects. Each column declares a
:class:`DataType`; :func:`coerce_value` converts raw input (for example CSV
strings) to the declared type, and :func:`is_compatible` validates already
typed values. Dates are stored as ISO ``YYYY-MM-DD`` strings, which keeps
comparisons lexicographic and hashing cheap.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeMismatchError


class DataType(enum.Enum):
    """Supported column types."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"
    DATE = "date"  # ISO 'YYYY-MM-DD' string

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType.{self.name}"


_TRUE_LITERALS = {"true", "t", "1", "yes"}
_FALSE_LITERALS = {"false", "f", "0", "no"}


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in _TRUE_LITERALS:
            return True
        if lowered in _FALSE_LITERALS:
            return False
    raise TypeMismatchError(f"cannot interpret {value!r} as BOOL")


def _coerce_date(value: Any) -> str:
    if isinstance(value, str):
        text = value.strip()
        parts = text.split("-")
        if len(parts) == 3 and all(p.isdigit() for p in parts):
            year, month, day = (int(p) for p in parts)
            if 1 <= month <= 12 and 1 <= day <= 31:
                return f"{year:04d}-{month:02d}-{day:02d}"
    raise TypeMismatchError(f"cannot interpret {value!r} as DATE (want 'YYYY-MM-DD')")


def coerce_value(value: Any, dtype: DataType) -> Any:
    """Convert ``value`` to the Python representation of ``dtype``.

    ``None`` is passed through unchanged (SQL NULL). Raises
    :class:`~repro.errors.TypeMismatchError` when the conversion is not
    meaningful (e.g. ``"abc"`` to INT).
    """
    if value is None:
        return None
    try:
        if dtype is DataType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str) and value.strip().lstrip("+-").isdigit():
                return int(value.strip())
            raise TypeMismatchError(f"cannot interpret {value!r} as INT")
        if dtype is DataType.FLOAT:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value.strip())
            raise TypeMismatchError(f"cannot interpret {value!r} as FLOAT")
        if dtype is DataType.STRING:
            if isinstance(value, str):
                return value
            return str(value)
        if dtype is DataType.BOOL:
            return _coerce_bool(value)
        if dtype is DataType.DATE:
            return _coerce_date(value)
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(f"cannot interpret {value!r} as {dtype.name}") from exc
    raise TypeMismatchError(f"unsupported data type {dtype!r}")  # pragma: no cover


def is_compatible(value: Any, dtype: DataType) -> bool:
    """Return True when ``value`` already has the representation of ``dtype``."""
    if value is None:
        return True
    if dtype is DataType.INT:
        return isinstance(value, int) and not isinstance(value, bool)
    if dtype is DataType.FLOAT:
        return isinstance(value, float) or (
            isinstance(value, int) and not isinstance(value, bool)
        )
    if dtype is DataType.STRING:
        return isinstance(value, str)
    if dtype is DataType.BOOL:
        return isinstance(value, bool)
    if dtype is DataType.DATE:
        if not isinstance(value, str):
            return False
        try:
            _coerce_date(value)
        except TypeMismatchError:
            return False
        return True
    return False  # pragma: no cover


def infer_type(value: Any) -> DataType:
    """Best-effort type inference for a single Python value."""
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        try:
            _coerce_date(value)
        except TypeMismatchError:
            return DataType.STRING
        return DataType.DATE
    return DataType.STRING
