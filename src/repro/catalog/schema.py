"""Table and database schemas.

A :class:`TableSchema` names its columns, their types, and (optionally) one
or more candidate keys. Keys matter to the bounded-evaluation core: a fetch
whose attributes include a key of the relation returns partial tuples that
are in bijection with rows, which is what makes bag-semantics aggregates
exact under bounded plans (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.catalog.types import DataType
from repro.errors import CatalogError, UnknownColumnError, UnknownTableError


@dataclass(frozen=True)
class Column:
    """A named, typed column of a relation."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise CatalogError(f"invalid column name: {self.name!r}")


class TableSchema:
    """Schema of one relation: ordered columns plus declared candidate keys."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column | tuple[str, DataType]],
        keys: Iterable[Sequence[str]] = (),
    ):
        if not name:
            raise CatalogError("table name must be non-empty")
        normalized: list[Column] = []
        for col in columns:
            if isinstance(col, Column):
                normalized.append(col)
            else:
                col_name, dtype = col
                normalized.append(Column(col_name, dtype))
        if not normalized:
            raise CatalogError(f"table {name!r} must have at least one column")
        seen: set[str] = set()
        for col in normalized:
            if col.name in seen:
                raise CatalogError(f"duplicate column {col.name!r} in table {name!r}")
            seen.add(col.name)

        self.name = name
        self.columns: tuple[Column, ...] = tuple(normalized)
        self._positions = {col.name: i for i, col in enumerate(self.columns)}
        self.keys: tuple[frozenset[str], ...] = tuple(
            frozenset(key) for key in keys
        )
        for key in self.keys:
            for attr in key:
                if attr not in self._positions:
                    raise UnknownColumnError(attr, name)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def __contains__(self, column: str) -> bool:
        return column in self._positions

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def position(self, column: str) -> int:
        """Index of ``column`` within a row tuple."""
        try:
            return self._positions[column]
        except KeyError:
            raise UnknownColumnError(column, self.name) from None

    def positions(self, columns: Iterable[str]) -> tuple[int, ...]:
        return tuple(self.position(c) for c in columns)

    def column(self, name: str) -> Column:
        return self.columns[self.position(name)]

    def dtype(self, column: str) -> DataType:
        return self.column(column).dtype

    def has_key_within(self, attributes: Iterable[str]) -> bool:
        """True when ``attributes`` include some declared candidate key."""
        attr_set = set(attributes)
        return any(key <= attr_set for key in self.keys)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.columns == other.columns
            and set(self.keys) == set(other.keys)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.columns))

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.dtype.value}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"


class DatabaseSchema:
    """A named collection of table schemas."""

    def __init__(self, tables: Iterable[TableSchema] = (), name: str = "db"):
        self.name = name
        self._tables: dict[str, TableSchema] = {}
        for table in tables:
            self.add_table(table)

    def add_table(self, table: TableSchema) -> None:
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already declared")
        self._tables[table.name] = table

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[TableSchema]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def total_attributes(self) -> int:
        """Total number of attributes across all relations (TLC reports 285)."""
        return sum(t.arity for t in self._tables.values())

    def __repr__(self) -> str:
        return f"DatabaseSchema({self.name}: {', '.join(self._tables)})"


@dataclass(frozen=True)
class AttributeRef:
    """A (table, column) pair used throughout planning."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


def validate_attributes(schema: DatabaseSchema, refs: Iterable[AttributeRef]) -> None:
    """Raise if any reference names a missing table or column."""
    for ref in refs:
        table = schema.table(ref.table)
        if ref.column not in table:
            raise UnknownColumnError(ref.column, ref.table)


# Re-exported for convenience; discovery and bounded planning use it heavily.
__all__ = [
    "Column",
    "TableSchema",
    "DatabaseSchema",
    "AttributeRef",
    "validate_attributes",
]
