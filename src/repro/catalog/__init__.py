"""Relational catalog: column types, table schemas, and statistics (S1)."""

from repro.catalog.types import DataType, coerce_value, is_compatible
from repro.catalog.schema import Column, TableSchema, DatabaseSchema
from repro.catalog.statistics import ColumnStatistics, TableStatistics, collect_statistics

__all__ = [
    "DataType",
    "coerce_value",
    "is_compatible",
    "Column",
    "TableSchema",
    "DatabaseSchema",
    "ColumnStatistics",
    "TableStatistics",
    "collect_statistics",
]
